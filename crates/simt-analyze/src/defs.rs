//! Register/predicate dataflow: reaching definitions and liveness.
//!
//! Both passes treat general registers and predicates uniformly as [`Var`]s.
//! Reaching definitions adds one *virtual* definition per variable at kernel
//! entry (the "uninitialized" def), so a use reached **only** by virtual defs
//! is provably a read of a never-written variable.

use crate::cfgx::{BitSet, FlowGraph};
use simt_isa::{Inst, Pred, Reg};

/// A dataflow variable: a general register or a predicate register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Var {
    Reg(Reg),
    Pred(Pred),
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Var::Reg(r) => write!(f, "{r}"),
            Var::Pred(p) => write!(f, "{p}"),
        }
    }
}

/// Dense index space for [`Var`]: registers first, then predicates.
pub const NUM_VARS: usize = 256 + Pred::COUNT as usize;

impl Var {
    /// Dense index in `0..NUM_VARS`.
    pub fn index(self) -> usize {
        match self {
            Var::Reg(r) => r.0 as usize,
            Var::Pred(p) => 256 + p.0 as usize,
        }
    }

    /// Inverse of [`Var::index`].
    pub fn from_index(i: usize) -> Var {
        if i < 256 {
            Var::Reg(Reg(i as u8))
        } else {
            Var::Pred(Pred((i - 256) as u8))
        }
    }
}

/// Variables read by an instruction: source registers (including the address
/// base), predicate sources, and the guard predicate.
pub fn uses(inst: &Inst) -> Vec<Var> {
    let mut v: Vec<Var> = inst.src_regs().into_iter().map(Var::Reg).collect();
    v.extend(inst.psrcs.iter().map(|&p| Var::Pred(p)));
    if let Some((p, _)) = inst.guard {
        v.push(Var::Pred(p));
    }
    v
}

/// Variables written by an instruction (destination register / predicate).
pub fn defs(inst: &Inst) -> Vec<Var> {
    let mut v = Vec::new();
    if let Some(r) = inst.dst {
        v.push(Var::Reg(r));
    }
    if let Some(p) = inst.pdst {
        v.push(Var::Pred(p));
    }
    v
}

/// Reaching-definitions solution.
///
/// Definition ids: `0..insts.len()` are real definitions at that pc (an
/// instruction defining both a register and a predicate shares the id — the
/// variable disambiguates); `insts.len() + v` is the virtual entry def of
/// variable index `v`.
pub struct ReachingDefs {
    /// Per-block IN sets over definition ids.
    block_in: Vec<BitSet>,
    n_insts: usize,
}

impl ReachingDefs {
    /// Solve reaching definitions over the flow graph.
    pub fn solve(g: &FlowGraph, insts: &[Inst]) -> ReachingDefs {
        let n = insts.len();
        let universe = n + NUM_VARS;
        let nb = g.blocks.len();

        // Last definition of each variable inside each block (gen), and the
        // set of variables a block redefines (kill, per-variable).
        let transfer = |mut state: BitSet, b: usize, g: &FlowGraph, insts: &[Inst]| -> BitSet {
            for pc in g.blocks[b].start..g.blocks[b].end {
                for var in defs(&insts[pc]) {
                    // Kill every other def of this variable.
                    for (dpc, i) in insts.iter().enumerate() {
                        if dpc != pc && defs(i).contains(&var) {
                            state.remove(dpc);
                        }
                    }
                    state.remove(n + var.index());
                    state.insert(pc);
                }
            }
            state
        };

        let mut block_in: Vec<BitSet> = (0..nb).map(|_| BitSet::new(universe)).collect();
        let mut block_out: Vec<BitSet> = (0..nb).map(|_| BitSet::new(universe)).collect();
        // Entry: every variable carries its virtual uninitialized def.
        let mut entry = BitSet::new(universe);
        for v in 0..NUM_VARS {
            entry.insert(n + v);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut inb = if b == 0 {
                    entry.clone()
                } else {
                    BitSet::new(universe)
                };
                for &p in &g.preds[b] {
                    inb.union_with(&block_out[p]);
                }
                if inb != block_in[b] {
                    block_in[b] = inb.clone();
                    changed = true;
                }
                let outb = transfer(inb, b, g, insts);
                if outb != block_out[b] {
                    block_out[b] = outb;
                    changed = true;
                }
            }
        }
        ReachingDefs { block_in, n_insts: n }
    }

    /// The definitions of `var` reaching the *use* at `pc`: real def pcs,
    /// plus `None` standing for the virtual (uninitialized) entry def.
    pub fn reaching(
        &self,
        g: &FlowGraph,
        insts: &[Inst],
        pc: usize,
        var: Var,
    ) -> (Vec<usize>, bool) {
        let b = g.block_of(pc);
        // Walk the block prefix to get the state just before `pc`.
        let mut state = self.block_in[b].clone();
        for p in g.blocks[b].start..pc {
            for v in defs(&insts[p]) {
                if v == var {
                    for (dpc, i) in insts.iter().enumerate() {
                        if dpc != p && defs(i).contains(&var) {
                            state.remove(dpc);
                        }
                    }
                    state.remove(self.n_insts + var.index());
                    state.insert(p);
                }
            }
        }
        let mut real = Vec::new();
        for (dpc, i) in insts.iter().enumerate().take(self.n_insts) {
            if state.contains(dpc) && defs(i).contains(&var) {
                real.push(dpc);
            }
        }
        let uninit = state.contains(self.n_insts + var.index());
        (real, uninit)
    }
}

/// Liveness solution: per-block live-in variable sets.
pub struct Liveness {
    /// `live_in[b]` over [`Var::index`].
    pub live_in: Vec<BitSet>,
}

impl Liveness {
    /// Solve backward liveness over the flow graph.
    pub fn solve(g: &FlowGraph, insts: &[Inst]) -> Liveness {
        let nb = g.blocks.len();
        let mut live_in: Vec<BitSet> = (0..nb).map(|_| BitSet::new(NUM_VARS)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut live = BitSet::new(NUM_VARS);
                for &s in &g.blocks[b].succs {
                    live.union_with(&live_in[s]);
                }
                for pc in (g.blocks[b].start..g.blocks[b].end).rev() {
                    for v in defs(&insts[pc]) {
                        live.remove(v.index());
                    }
                    for v in uses(&insts[pc]) {
                        live.insert(v.index());
                    }
                }
                if live != live_in[b] {
                    live_in[b] = live;
                    changed = true;
                }
            }
        }
        Liveness { live_in }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, Op, Ty};

    #[test]
    fn var_index_roundtrip() {
        for i in [0usize, 7, 255, 256, 256 + Pred::COUNT as usize - 1] {
            assert_eq!(Var::from_index(i).index(), i);
        }
    }

    #[test]
    fn straightline_reaching() {
        // 0: mov r1, 5; 1: mov r1, 6; 2: st uses r1
        let insts = vec![
            Inst::mov(Reg(1), 5),
            Inst::mov(Reg(1), 6),
            Inst::st(simt_isa::Space::Global, simt_isa::MemAddr::abs(0), Reg(1)),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let rd = ReachingDefs::solve(&g, &insts);
        let (real, uninit) = rd.reaching(&g, &insts, 2, Var::Reg(Reg(1)));
        assert_eq!(real, vec![1], "later def kills earlier");
        assert!(!uninit);
    }

    #[test]
    fn uninitialized_read_detected() {
        let insts = vec![
            Inst::st(simt_isa::Space::Global, simt_isa::MemAddr::abs(0), Reg(3)),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let rd = ReachingDefs::solve(&g, &insts);
        let (real, uninit) = rd.reaching(&g, &insts, 0, Var::Reg(Reg(3)));
        assert!(real.is_empty());
        assert!(uninit);
    }

    #[test]
    fn loop_carried_def_reaches_header() {
        // 0: mov r1, 0; 1: add r1, r1, 1; 2: setp.lt p0, r1, 9;
        // 3: @p0 bra 1; 4: exit
        let mut back = Inst::bra(1);
        back.guard = Some((Pred(0), true));
        let insts = vec![
            Inst::mov(Reg(1), 0),
            Inst::binary(Op::Add(Ty::S32), Reg(1), Reg(1), 1),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(1), 9),
            back,
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let rd = ReachingDefs::solve(&g, &insts);
        let (real, uninit) = rd.reaching(&g, &insts, 1, Var::Reg(Reg(1)));
        assert_eq!(real, vec![0, 1], "both init and loop-carried defs reach");
        assert!(!uninit);
    }

    #[test]
    fn liveness_across_loop() {
        // Same loop: r1 is live-in at the loop head block.
        let mut back = Inst::bra(1);
        back.guard = Some((Pred(0), true));
        let insts = vec![
            Inst::mov(Reg(1), 0),
            Inst::binary(Op::Add(Ty::S32), Reg(1), Reg(1), 1),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(1), 9),
            back,
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let lv = Liveness::solve(&g, &insts);
        let head = g.block_of(1);
        assert!(lv.live_in[head].contains(Var::Reg(Reg(1)).index()));
        assert!(!lv.live_in[head].contains(Var::Pred(Pred(0)).index()));
        let exit_block = g.block_of(4);
        assert!(lv.live_in[exit_block].is_empty());
    }
}
