//! Correctness lints over raw (possibly invalid) instruction sequences.
//!
//! Each finding is a structured [`Diagnostic`] carrying a severity, the
//! offending instruction index, its basic block, and the variable involved
//! (when one is). Error-severity findings indicate kernels that are wrong or
//! will hang; warnings flag suspicious-but-runnable code, including
//! disagreements between the `!sib` ground-truth annotations and the static
//! spin oracle.

use crate::cfgx::FlowGraph;
use crate::defs::{uses, ReachingDefs, Var};
use crate::loops::natural_loops;
use crate::sib::static_sibs;
use crate::uniform::Uniformity;
use simt_isa::{Inst, Op};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious; the kernel still runs.
    Warning,
    /// The kernel is wrong: it reads garbage, cannot terminate, or deadlocks.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The lint that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A register/predicate is read but no definition reaches the read.
    UndefinedRead,
    /// A block can never execute.
    UnreachableBlock,
    /// A loop with no exit path and no memory side effects: a guaranteed
    /// hang that not even another thread can release.
    InfiniteLoop,
    /// `bar.sync` under divergent control flow: lanes of one warp can
    /// disagree on whether they reach the barrier (reconvergence-stack
    /// deadlock).
    DivergentBarrier,
    /// A branch target outside the kernel.
    BadTarget,
    /// The static spin oracle disagrees with the `!sib` annotation.
    SibMismatch,
    /// Two accesses to the same shared/global word can execute concurrently
    /// in different warps with no common lock and no separating barrier.
    RaceUnlocked,
    /// Like [`LintKind::RaceUnlocked`], but the accesses sit in different
    /// barrier intervals — a barrier exists between them on *some* path yet
    /// fails the dominance criterion, so the phases can still overlap.
    RaceCrossPhase,
    /// The only barrier between the racing accesses is under divergent
    /// control, so it does not reliably separate them.
    RaceDivergentBarrier,
    /// A lock may still be held when the kernel exits.
    MissingRelease,
    /// The lock-order graph has a cycle (ABBA deadlock), or a lock may be
    /// re-acquired while already held (self-deadlock for a spin lock).
    LockCycle,
    /// A divergent acquire spin loop whose release lies outside the loop:
    /// on a reconvergence-stack machine the winning lane parks at the
    /// reconvergence point while the losers spin — SIMT-induced deadlock.
    SimtDeadlock,
}

impl LintKind {
    /// Stable lint name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::UndefinedRead => "undefined-read",
            LintKind::UnreachableBlock => "unreachable-block",
            LintKind::InfiniteLoop => "infinite-loop",
            LintKind::DivergentBarrier => "divergent-barrier",
            LintKind::BadTarget => "bad-target",
            LintKind::SibMismatch => "sib-mismatch",
            LintKind::RaceUnlocked => "data-race",
            LintKind::RaceCrossPhase => "cross-phase-race",
            LintKind::RaceDivergentBarrier => "divergent-barrier-race",
            LintKind::MissingRelease => "missing-release",
            LintKind::LockCycle => "lock-cycle",
            LintKind::SimtDeadlock => "simt-deadlock",
        }
    }
}

/// Machine-readable evidence attached to synchronization diagnostics, for
/// tooling (the JSON lint format, the service's 422 bodies, `race_oracle`'s
/// static×dynamic join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// A racing access pair: the pcs, the word, and each side's may-held
    /// lockset and barrier-interval index.
    Race {
        a_pc: usize,
        b_pc: usize,
        location: String,
        lockset_a: Vec<String>,
        lockset_b: Vec<String>,
        phase_a: usize,
        phase_b: usize,
    },
    /// A lock held on a path from `acquire_pc` to `exit_pc`; `path` lists
    /// the entry pc of each block on one such path.
    HeldAtExit {
        lock: String,
        acquire_pc: usize,
        exit_pc: usize,
        path: Vec<usize>,
    },
    /// A cycle in the lock-order graph as `(lock, acquire_pc)` steps; a
    /// single entry is a self-cycle (re-acquire while held).
    LockCycle { cycle: Vec<(String, usize)> },
    /// An acquire spin loop that cannot release from inside itself.
    SpinHold {
        loop_branch_pc: usize,
        acquire_pc: usize,
        release_pc: Option<usize>,
    },
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub kind: LintKind,
    /// Offending instruction index.
    pub pc: usize,
    /// Basic block id containing `pc`.
    pub block: usize,
    /// The variable involved, when the finding is about one.
    pub var: Option<Var>,
    /// Human-readable explanation.
    pub message: String,
    /// Machine-readable evidence (synchronization lints only).
    pub witness: Option<Witness>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: pc {} (block {}): {}",
            self.severity,
            self.kind.name(),
            self.pc,
            self.block,
            self.message
        )
    }
}

/// Run every lint over an instruction sequence.
///
/// Tolerates invalid input (that is the point: the assembler refuses such
/// kernels, so the linter is the tool that can still explain them).
/// Diagnostics are ordered by severity (errors first), then pc.
pub fn lint(insts: &[Inst]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if insts.is_empty() {
        return out;
    }
    let g = FlowGraph::build(insts);

    // Bad branch targets.
    for (pc, inst) in insts.iter().enumerate() {
        if let Some(t) = inst.target {
            if t >= insts.len() {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    kind: LintKind::BadTarget,
                    pc,
                    block: g.block_of(pc),
                    var: None,
                    message: format!(
                        "branch target {t} is outside the kernel ({} instructions); \
                         the simulator CFG would silently treat it as fall-through",
                        insts.len()
                    ),
                witness: None,
                });
            }
        }
    }

    // Unreachable blocks.
    for (b, blk) in g.blocks.iter().enumerate() {
        if !g.reachable.contains(b) {
            out.push(Diagnostic {
                severity: Severity::Error,
                kind: LintKind::UnreachableBlock,
                pc: blk.start,
                block: b,
                var: None,
                message: format!(
                    "block at pc {}..{} is unreachable from the kernel entry",
                    blk.start, blk.end
                ),
            witness: None,
            });
        }
    }

    // Undefined reads (reachable code only; unreachable blocks are already
    // reported and have vacuous dataflow).
    let rd = ReachingDefs::solve(&g, insts);
    for (pc, inst) in insts.iter().enumerate() {
        if !g.reachable.contains(g.block_of(pc)) {
            continue;
        }
        for v in uses(inst) {
            let (real, _uninit) = rd.reaching(&g, insts, pc, v);
            if real.is_empty() {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    kind: LintKind::UndefinedRead,
                    pc,
                    block: g.block_of(pc),
                    var: Some(v),
                    message: format!("{v} is read but never written on any path to here"),
                witness: None,
                });
            }
        }
    }

    // Guaranteed infinite loops with no memory side effects. An `exit`
    // instruction inside the loop body is an escape hatch even when the CFG
    // has no exit edge.
    for l in natural_loops(&g, insts) {
        let has_escape = !l.exits.is_empty()
            || l.insts(&g).any(|pc| insts[pc].op == Op::Exit);
        let has_side_effect = l
            .insts(&g)
            .any(|pc| matches!(insts[pc].op, Op::St(..) | Op::Atom(_)));
        if !has_escape && !has_side_effect {
            out.push(Diagnostic {
                severity: Severity::Error,
                kind: LintKind::InfiniteLoop,
                pc: l.branch_pc,
                block: l.latch,
                var: None,
                message: format!(
                    "loop at pc {} has no exit path and no memory side effects: \
                     every thread entering it hangs",
                    insts[l.branch_pc].target.unwrap_or(0)
                ),
            witness: None,
            });
        }
    }

    // Barriers under divergent control flow.
    let u = Uniformity::solve(&g, insts);
    let cd = g.control_deps();
    for (pc, inst) in insts.iter().enumerate() {
        if inst.op != Op::Bar || !g.reachable.contains(g.block_of(pc)) {
            continue;
        }
        let b = g.block_of(pc);
        let divergent_guard = inst
            .guard
            .is_some_and(|(p, _)| u.is_divergent(Var::Pred(p)));
        let mut ctrl = cd[b]
            .iter()
            .copied()
            .find(|&c| u.divergent_branches.contains(c));
        if ctrl.is_none() && divergent_guard {
            ctrl = Some(b);
        }
        if let Some(c) = ctrl {
            out.push(Diagnostic {
                severity: Severity::Error,
                kind: LintKind::DivergentBarrier,
                pc,
                block: b,
                var: None,
                message: format!(
                    "bar.sync is control-dependent on the divergent branch at pc {}: \
                     lanes of one warp can disagree on reaching the barrier",
                    g.blocks[c].end - 1
                ),
            witness: None,
            });
        }
    }

    // Static oracle vs `!sib` annotations (advisory).
    let static_set: Vec<usize> = static_sibs(insts).iter().map(|s| s.branch_pc).collect();
    for (pc, inst) in insts.iter().enumerate() {
        let annotated = inst.ann.sib;
        let classified = static_set.contains(&pc);
        if annotated != classified && (annotated || inst.is_backward_branch(pc)) {
            out.push(Diagnostic {
                severity: Severity::Warning,
                kind: LintKind::SibMismatch,
                pc,
                block: g.block_of(pc),
                var: None,
                message: if annotated {
                    "annotated !sib but the static oracle does not classify it as a \
                     spin loop"
                        .to_string()
                } else {
                    "the static oracle classifies this backward branch as spin-inducing \
                     but it is not annotated !sib"
                        .to_string()
                },
            witness: None,
            });
        }
    }

    // Synchronization lints: lockset/barrier-phase races, lock-order
    // cycles, missing releases, SIMT-induced deadlock.
    let la = crate::locks::LockAnalysis::solve(&g, insts, &rd);
    let bp = crate::barrier::BarrierPhases::solve(&g, insts, &u);
    out.extend(crate::race::race_lints(&g, insts, &rd, &u, &la, &bp));
    out.extend(crate::lockgraph::lock_order_lints(&g, insts, &u, &la));

    // Stable emission order: errors first, then pc, then lint name so the
    // JSON output is byte-deterministic and cacheable.
    out.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.pc.cmp(&b.pc))
            .then(a.kind.name().cmp(b.kind.name()))
    });
    out
}

/// True when any diagnostic is error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::asm::assemble;

    fn diags_of(src: &str) -> Vec<Diagnostic> {
        lint(&assemble(src).expect("test kernel assembles").insts)
    }

    fn kinds(d: &[Diagnostic]) -> Vec<LintKind> {
        d.iter().map(|x| x.kind).collect()
    }

    #[test]
    fn clean_kernel_is_clean() {
        let d = diags_of(
            r#"
            .kernel clean
            .regs 4
                ld.param r1, [0]
                mov r2, %tid
                shl r2, r2, 2
                add r1, r1, r2
                st.global [r1], r2
                exit
            "#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn undefined_read_flagged() {
        let d = diags_of(
            r#"
            .kernel bad
            .regs 8
                add r1, r2, 1
                exit
            "#,
        );
        assert!(kinds(&d).contains(&LintKind::UndefinedRead), "{d:?}");
        let f = d.iter().find(|x| x.kind == LintKind::UndefinedRead).unwrap();
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.pc, 0);
        assert_eq!(f.var, Some(Var::Reg(simt_isa::Reg(2))));
    }

    #[test]
    fn undefined_guard_predicate_flagged() {
        let d = diags_of(
            r#"
            .kernel badp
            .regs 4
                mov r1, 0
            @p3 bra DONE
            DONE:
                exit
            "#,
        );
        let f = d.iter().find(|x| x.kind == LintKind::UndefinedRead).unwrap();
        assert_eq!(f.var, Some(Var::Pred(simt_isa::Pred(3))));
    }

    #[test]
    fn conditional_def_is_not_undefined() {
        // r2 defined on one arm only, read after the join: a *may*-uninit,
        // not flagged by the must-analysis.
        let d = diags_of(
            r#"
            .kernel cond
            .regs 4
                mov r1, %ctaid
                setp.eq.s32 p0, r1, 0
            @p0 bra SKIP
                mov r2, 5
            SKIP:
                mov r2, 6
                st.global [r1], r2
                exit
            "#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unreachable_block_flagged() {
        let d = diags_of(
            r#"
            .kernel dead
            .regs 4
                mov r1, 0
                exit
                mov r2, 1
                exit
            "#,
        );
        let f = d
            .iter()
            .find(|x| x.kind == LintKind::UnreachableBlock)
            .unwrap();
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.pc, 2);
    }

    #[test]
    fn guarded_exit_fallthrough_is_reachable() {
        let d = diags_of(
            r#"
            .kernel early
            .regs 4
                mov r1, %ctaid
                setp.ge.s32 p0, r1, 4
            @p0 exit
                st.global [r1], r1
                exit
            "#,
        );
        assert!(
            !kinds(&d).contains(&LintKind::UnreachableBlock),
            "guarded exit falls through: {d:?}"
        );
    }

    #[test]
    fn infinite_sideeffect_free_loop_flagged() {
        let d = diags_of(
            r#"
            .kernel hang
            .regs 4
            L:  mov r1, 1
                bra L
                exit          ; unreachable, satisfies the has-exit check
            "#,
        );
        let f = d.iter().find(|x| x.kind == LintKind::InfiniteLoop).unwrap();
        assert_eq!(f.severity, Severity::Error);
    }

    #[test]
    fn infinite_loop_with_store_not_flagged() {
        // Another thread can observe the stores; not provably useless.
        let d = diags_of(
            r#"
            .kernel beacon
            .regs 4
                ld.param r1, [0]
            L:  st.global [r1], r1
                bra L
                exit          ; unreachable, satisfies the has-exit check
            "#,
        );
        assert!(!kinds(&d).contains(&LintKind::InfiniteLoop), "{d:?}");
    }

    #[test]
    fn divergent_barrier_flagged() {
        let d = diags_of(
            r#"
            .kernel divbar
            .regs 4
                mov r1, %tid
                setp.eq.s32 p0, r1, 0
            @p0 bra SKIP
                bar.sync
            SKIP:
                exit
            "#,
        );
        let f = d
            .iter()
            .find(|x| x.kind == LintKind::DivergentBarrier)
            .unwrap();
        assert_eq!(f.severity, Severity::Error);
    }

    #[test]
    fn uniform_barrier_not_flagged() {
        let d = diags_of(
            r#"
            .kernel unibar
            .regs 4
                mov r1, %ctaid
                setp.eq.s32 p0, r1, 0
            @p0 bra SKIP
                bar.sync
            SKIP:
                bar.sync
                exit
            "#,
        );
        assert!(!kinds(&d).contains(&LintKind::DivergentBarrier), "{d:?}");
    }

    #[test]
    fn sib_annotation_mismatch_warns() {
        // A counted loop wrongly annotated !sib.
        let d = diags_of(
            r#"
            .kernel wrong
            .regs 4
                mov r1, 0
            L:  add r1, r1, 1
                setp.lt.s32 p0, r1, 9
            @p0 bra L !sib
                exit
            "#,
        );
        let f = d.iter().find(|x| x.kind == LintKind::SibMismatch).unwrap();
        assert_eq!(f.severity, Severity::Warning);
        assert!(!has_errors(&d));
    }
}
