//! Static analysis for `bows-sim` kernels: a dataflow framework over the
//! PTX-like IR, correctness lints, and a static spin-loop oracle.
//!
//! The oracle is the reason this crate exists: DDOS (the paper's *dynamic*
//! spin detector) claims zero false detections under XOR hashing, and until
//! now the repo had no independent ground truth to check that against beyond
//! the hand-written `!sib` annotations. [`static_sibs`] classifies spin-
//! inducing branches from first principles — loop structure, dependence
//! closure of the exit predicate, side-effect discipline, escape analysis —
//! so the `oracle` experiment can cross-validate all three sources: the
//! annotations, the static classification, and DDOS's dynamic confirmations.
//!
//! Layered passes (each usable on its own):
//!
//! * [`cfgx::FlowGraph`] — analysis CFG (guarded-`exit` fall-through edges
//!   restored), reachability, dominators, postdominator sets, control
//!   dependence;
//! * [`loops::natural_loops`] — back edges via dominance, loop bodies, exits;
//! * [`defs::ReachingDefs`] / [`defs::Liveness`] — register *and* predicate
//!   dataflow with a virtual uninitialized definition at entry;
//! * [`uniform::Uniformity`] — warp-uniformity with sync dependence;
//! * [`sib::static_sibs`] — the spin oracle;
//! * [`locks::LockAnalysis`] — lock identification and may-held locksets;
//! * [`barrier::BarrierPhases`] — barrier intervals and separation;
//! * [`race`] / [`lockgraph`] — race, lock-order, and deadlock lints;
//! * [`lint::lint`] — structured diagnostics (severity, pc, block, variable,
//!   machine-readable witness).
//!
//! # Example
//!
//! ```
//! use simt_analyze::AnalyzeExt;
//! use simt_isa::asm::assemble;
//!
//! let k = assemble(
//!     r#"
//!     .kernel wait
//!     .regs 4
//!         ld.param r1, [0]
//!     W:  ld.global.volatile r2, [r1]
//!         setp.eq.s32 p0, r2, 0
//!     @p0 bra W !sib !wait
//!         exit
//!     "#,
//! )?;
//! let a = k.analyze();
//! assert!(a.diagnostics.is_empty());
//! assert_eq!(a.sibs.len(), 1);
//! assert_eq!(a.sibs[0].branch_pc, 3);
//! # Ok::<(), simt_isa::AsmError>(())
//! ```

pub mod barrier;
pub mod cfgx;
pub mod defs;
pub mod lint;
pub mod lockgraph;
pub mod locks;
pub mod loops;
pub mod race;
pub mod sib;
pub mod uniform;

pub use barrier::BarrierPhases;
pub use cfgx::{BitSet, FlowGraph};
pub use defs::{Liveness, ReachingDefs, Var};
pub use lint::{has_errors, lint, Diagnostic, LintKind, Severity, Witness};
pub use locks::{Location, LockAnalysis};
pub use loops::{natural_loops, NaturalLoop};
pub use sib::{static_sibs, StaticSib};
pub use uniform::Uniformity;

use simt_isa::Kernel;

/// Everything the standard analysis pipeline produces for one kernel.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Backward branches the oracle classifies as spin-inducing.
    pub sibs: Vec<StaticSib>,
    /// Lint findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Spin branch pcs, for joining against `Kernel::true_sibs` or DDOS
    /// `confirmed_sibs()`.
    pub fn sib_pcs(&self) -> Vec<usize> {
        self.sibs.iter().map(|s| s.branch_pc).collect()
    }

    /// Any error-severity finding?
    pub fn has_errors(&self) -> bool {
        has_errors(&self.diagnostics)
    }
}

/// Analyze an instruction sequence (also works on kernels that fail
/// validation — the lints explain *why* they are invalid).
pub fn analyze_insts(insts: &[simt_isa::Inst]) -> Analysis {
    Analysis {
        sibs: static_sibs(insts),
        diagnostics: lint(insts),
    }
}

/// Extension trait hanging the analysis pipeline off [`Kernel`].
///
/// (An extension trait rather than an inherent method: `simt-isa` must not
/// depend on this crate.)
pub trait AnalyzeExt {
    /// Run the full static analysis pipeline.
    fn analyze(&self) -> Analysis;
}

impl AnalyzeExt for Kernel {
    fn analyze(&self) -> Analysis {
        analyze_insts(&self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::asm::assemble;

    #[test]
    fn analyze_agrees_with_annotation_on_spinlock() {
        let k = assemble(
            r#"
            .kernel spinlock
            .regs 10
                ld.param r1, [0]
                ld.param r2, [4]
                mov r9, 0
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.eq.s32 p1, r3, 0
            @!p1 bra TEST
                ld.global.volatile r4, [r2]
                add r4, r4, 1
                st.global [r2], r4
                membar
                atom.global.exch r5, [r1], 0 !release
                mov r9, 1
            TEST:
                setp.eq.s32 p2, r9, 0
            @p2 bra SPIN !sib
                exit
            "#,
        )
        .unwrap();
        let a = k.analyze();
        assert_eq!(a.sib_pcs(), k.true_sibs);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }
}
