//! The static spin-loop oracle.
//!
//! Classifies a backward branch as *spin-inducing* (paper terminology: SIB)
//! when its natural loop looks like busy-waiting rather than productive
//! iteration. The test mirrors the paper's Section II taxonomy of spin loops
//! (lock polling, flag wait-and-signal) and has four conditions:
//!
//! 1. **Natural back edge with an exit test** — the branch is conditional and
//!    its target dominates it (irreducible backward jumps are skipped).
//! 2. **Polling observer** — the *dependence closure* of the branch's guard
//!    predicate (data dependences through loop-resident definitions, plus
//!    control dependences through the guards of in-loop branches) contains a
//!    load or atomic whose address is loop-invariant. The loop's exit
//!    decision hinges on re-reading the same location: the signature of
//!    `while (!flag)` and CAS retry loops alike.
//! 3. **Store/atomic-light body** — every store/atomic in the loop either
//!    feeds the closure (the polling CAS itself) or executes conditionally
//!    (the critical section entered on lock success). A loop that writes
//!    memory on *every* iteration is doing productive work.
//! 4. **No value escapes** — no register/predicate defined by a non-memory
//!    instruction in the loop is live on a loop exit. Spin loops produce
//!    nothing but the observed value; counted loops leak their accumulator
//!    or induction variable. (Load/atomic results are exempt: a wait loop
//!    may legitimately consume the flag value it observed.)

use crate::cfgx::{BitSet, FlowGraph};
use crate::defs::{defs, uses, Liveness, Var, NUM_VARS};
use crate::loops::{natural_loops, NaturalLoop};
use simt_isa::{Inst, Op};

/// A backward branch statically classified as spin-inducing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticSib {
    /// Instruction index of the backward branch.
    pub branch_pc: usize,
    /// Instruction index of the loop header (the branch target).
    pub header_pc: usize,
    /// The polling loads/atomics (loop-invariant address, feeding the exit
    /// predicate) that justified the classification.
    pub observers: Vec<usize>,
}

/// Run the oracle over an instruction sequence.
///
/// Branch pcs are returned in program order. Invalid input (out-of-range
/// targets) yields no classification for the affected branch; the lints
/// report the defect itself.
pub fn static_sibs(insts: &[Inst]) -> Vec<StaticSib> {
    let g = FlowGraph::build(insts);
    let lv = Liveness::solve(&g, insts);
    let cd = g.control_deps();
    natural_loops(&g, insts)
        .iter()
        .filter_map(|l| classify(&g, insts, &lv, &cd, l))
        .collect()
}

fn classify(
    g: &FlowGraph,
    insts: &[Inst],
    lv: &Liveness,
    cd: &[Vec<usize>],
    l: &NaturalLoop,
) -> Option<StaticSib> {
    // C1: the back edge must carry an exit test.
    let (guard_pred, _) = insts[l.branch_pc].guard?;

    // C2: dependence closure of the guard predicate, within the loop.
    let mut closure_vars = BitSet::new(NUM_VARS);
    let mut closure_insts = BitSet::new(insts.len());
    let mut worklist = vec![Var::Pred(guard_pred)];
    closure_vars.insert(Var::Pred(guard_pred).index());
    let mut observers = Vec::new();
    while let Some(v) = worklist.pop() {
        for pc in l.insts(g) {
            if !defs(&insts[pc]).contains(&v) || !closure_insts.insert(pc) {
                continue;
            }
            let inst = &insts[pc];
            if matches!(inst.op, Op::Ld(..) | Op::Atom(_)) {
                let invariant = match inst.addr.and_then(|a| a.base) {
                    None => true,
                    Some(base) => !l
                        .insts(g)
                        .any(|dpc| defs(&insts[dpc]).contains(&Var::Reg(base))),
                };
                if invariant {
                    observers.push(pc);
                }
            }
            // Data dependences of the definition.
            for u in uses(inst) {
                if closure_vars.insert(u.index()) {
                    worklist.push(u);
                }
            }
            // Control dependences: the guards of in-loop branches the
            // defining block depends on.
            for &c in &cd[g.block_of(pc)] {
                if !l.blocks.contains(c) {
                    continue;
                }
                let term = &insts[g.blocks[c].end - 1];
                if let Some((p, _)) = term.guard {
                    let pv = Var::Pred(p);
                    if closure_vars.insert(pv.index()) {
                        worklist.push(pv);
                    }
                }
            }
        }
    }
    observers.sort_unstable();
    observers.dedup();
    if observers.is_empty() {
        return None;
    }

    // C3: every store/atomic is closure-feeding or conditionally executed.
    for pc in l.insts(g) {
        if !matches!(insts[pc].op, Op::St(..) | Op::Atom(_)) {
            continue;
        }
        let in_closure = closure_insts.contains(pc);
        let conditional =
            insts[pc].guard.is_some() || !g.dominates(g.block_of(pc), l.latch);
        if !in_closure && !conditional {
            return None;
        }
    }

    // C4: no non-memory definition escapes the loop.
    let mut alu_defs = BitSet::new(NUM_VARS);
    for pc in l.insts(g) {
        if matches!(insts[pc].op, Op::Ld(..) | Op::Atom(_)) {
            continue;
        }
        for v in defs(&insts[pc]) {
            alu_defs.insert(v.index());
        }
    }
    for &(_, to) in &l.exits {
        for v in lv.live_in[to].iter() {
            if alu_defs.contains(v) {
                return None;
            }
        }
    }

    Some(StaticSib {
        branch_pc: l.branch_pc,
        header_pc: insts[l.branch_pc].target.unwrap_or(0),
        observers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::asm::assemble;

    fn sibs_of(src: &str) -> Vec<StaticSib> {
        static_sibs(&assemble(src).expect("test kernel assembles").insts)
    }

    #[test]
    fn flag_wait_loop_is_spin() {
        let s = sibs_of(
            r#"
            .kernel wait
            .regs 4
                ld.param r1, [0]
            W:  ld.global.volatile r2, [r1]
                setp.eq.s32 p0, r2, 0
            @p0 bra W
                exit
            "#,
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].branch_pc, 3);
        assert_eq!(s[0].observers, vec![1], "the volatile poll load");
    }

    #[test]
    fn counted_loop_is_not_spin() {
        // Induction-variable exit test: no observer in the closure.
        let s = sibs_of(
            r#"
            .kernel count
            .regs 4
                mov r1, 0
            L:  add r1, r1, 1
                setp.lt.s32 p0, r1, 64
            @p0 bra L
                exit
            "#,
        );
        assert!(s.is_empty());
    }

    #[test]
    fn memory_bound_counted_loop_is_not_spin() {
        // The trip count is loaded up front, but the exit test still tracks
        // the induction variable; the accumulator also escapes the loop.
        let s = sibs_of(
            r#"
            .kernel sum
            .regs 8
                ld.param r1, [0]
                ld.param r2, [4]
                mov r3, 0
                mov r4, 0
            L:  ld.global r5, [r1]
                add r4, r4, r5
                add r1, r1, 4
                add r3, r3, 1
                setp.lt.s32 p0, r3, r2
            @p0 bra L
                st.global [r1], r4
                exit
            "#,
        );
        assert!(s.is_empty());
    }

    #[test]
    fn cas_retry_lock_is_spin() {
        let s = sibs_of(
            r#"
            .kernel lock
            .regs 6
                ld.param r1, [0]
            L:  atom.global.cas r2, [r1], 0, 1
                setp.ne.s32 p0, r2, 0
            @p0 bra L
                exit
            "#,
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].observers, vec![1]);
    }

    #[test]
    fn spin_with_conditional_critical_section_is_spin() {
        // The paper's Figure-1a shape: lock poll + guarded critical section
        // inside one loop. The stores are conditional, the exit predicate
        // traces through the acquired-flag to the CAS.
        let s = sibs_of(
            r#"
            .kernel spinlock
            .regs 10
                ld.param r1, [0]
                ld.param r2, [4]
                mov r9, 0
            SPIN:
                atom.global.cas r3, [r1], 0, 1
                setp.eq.s32 p1, r3, 0
            @!p1 bra TEST
                ld.global.volatile r4, [r2]
                add r4, r4, 1
                st.global [r2], r4
                membar
                atom.global.exch r5, [r1], 0
                mov r9, 1
            TEST:
                setp.eq.s32 p2, r9, 0
            @p2 bra SPIN
                exit
            "#,
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].observers, vec![3], "the acquire CAS");
    }

    #[test]
    fn unconditional_store_every_iteration_is_not_spin() {
        // A producer writing memory on every iteration is productive even
        // though it also polls a flag.
        let s = sibs_of(
            r#"
            .kernel producer
            .regs 6
                ld.param r1, [0]
                ld.param r2, [4]
            L:  ld.global.volatile r3, [r1]
                st.global [r2], r3
                setp.eq.s32 p0, r3, 0
            @p0 bra L
                exit
            "#,
        );
        assert!(s.is_empty());
    }

    #[test]
    fn escaping_value_blocks_classification_unless_loaded() {
        // The consumed value comes straight from the poll load: still spin
        // (ST's consumer loop shape).
        let s = sibs_of(
            r#"
            .kernel consume
            .regs 6
                ld.param r1, [0]
                ld.param r2, [4]
            W:  ld.global.volatile r3, [r1]
                setp.lt.s32 p0, r3, 0
            @p0 bra W
                add r4, r3, 1
                st.global [r2], r4
                exit
            "#,
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clock_delay_loop_is_not_spin() {
        // Software back-off: exit test follows %clock, no memory observer.
        let s = sibs_of(
            r#"
            .kernel delay
            .regs 6
                clock r1
            D:  clock r2
                sub r3, r2, r1
                setp.lt.u32 p0, r3, 100
            @p0 bra D
                exit
            "#,
        );
        assert!(s.is_empty());
    }
}
