//! The analysis view of a kernel's control flow.
//!
//! [`simt_isa::cfg::Cfg`] is built for the SIMT reconvergence stack, where a
//! block ending in `exit` has no successors — correct for reconvergence (an
//! exited thread never reconverges) but wrong for static analysis: a *guarded*
//! `@p exit` only retires the threads whose guard holds, and the rest fall
//! through. [`FlowGraph`] starts from the simulator's block structure and
//! patches those fall-through edges back in, then layers on the derived
//! structure every pass needs: predecessors, reachability from entry, forward
//! dominators, postdominator *sets* (set-based so graphs with no path to exit
//! — infinite loops — still get a defined answer), and control dependence.
//!
//! All analyses are also total on kernels that fail validation (out-of-range
//! branch targets, no `exit`): `Cfg::build` drops edges it cannot resolve and
//! the lints report those defects explicitly.

use simt_isa::cfg::{Block, Cfg};
use simt_isa::{Inst, Op};

/// A small dense bitset over `usize` indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A full set over a universe of `len` elements.
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self &= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a & b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

/// Control-flow structure of one instruction sequence, as the analyses see it.
pub struct FlowGraph {
    /// Basic blocks (same boundaries as the simulator's CFG).
    pub blocks: Vec<Block>,
    /// Per-block predecessor lists (over the patched edge set).
    pub preds: Vec<Vec<usize>>,
    /// Map from instruction index to containing block.
    block_of: Vec<usize>,
    /// Blocks reachable from the entry block.
    pub reachable: BitSet,
    /// Forward dominator sets: `dom[b]` contains every block that dominates
    /// `b` (including `b` itself). Unreachable blocks dominate-by-everything
    /// (the standard lattice top); callers should mask with [`reachable`].
    ///
    /// [`reachable`]: FlowGraph::reachable
    pub dom: Vec<BitSet>,
    /// Postdominator sets: `pdom[b]` contains every block that postdominates
    /// `b` (including `b`). Greatest-fixpoint solution, so blocks with no
    /// path to exit still get a defined (over-approximate) answer.
    pub pdom: Vec<BitSet>,
}

impl FlowGraph {
    /// Build the analysis flow graph of an instruction sequence.
    pub fn build(insts: &[Inst]) -> FlowGraph {
        let cfg = Cfg::build(insts);
        let mut blocks = cfg.blocks.clone();
        let n = insts.len();
        let block_of: Vec<usize> = (0..n).map(|pc| cfg.block_of(pc)).collect();

        // Patch: a block ending in a *guarded* exit falls through to the next
        // instruction for the threads whose guard does not hold.
        for b in 0..blocks.len() {
            let last = blocks[b].end - 1;
            let inst = &insts[last];
            if inst.op == Op::Exit && inst.guard.is_some() && blocks[b].end < n {
                let ft = block_of[blocks[b].end];
                if !blocks[b].succs.contains(&ft) {
                    blocks[b].succs.push(ft);
                }
            }
        }

        let nb = blocks.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (b, blk) in blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }

        // Reachability from the entry block.
        let mut reachable = BitSet::new(nb);
        if nb > 0 {
            let mut stack = vec![0usize];
            reachable.insert(0);
            while let Some(b) = stack.pop() {
                for &s in &blocks[b].succs {
                    if reachable.insert(s) {
                        stack.push(s);
                    }
                }
            }
        }

        // Forward dominators, iterative set intersection. Small graphs (tens
        // of blocks) make the O(n^2) sets cheaper than building a tree.
        let mut dom: Vec<BitSet> = (0..nb).map(|_| BitSet::full(nb)).collect();
        if nb > 0 {
            dom[0] = BitSet::new(nb);
            dom[0].insert(0);
            let mut changed = true;
            while changed {
                changed = false;
                for b in 1..nb {
                    let mut new = BitSet::full(nb);
                    let mut any = false;
                    for &p in &preds[b] {
                        new.intersect_with(&dom[p]);
                        any = true;
                    }
                    if !any {
                        new = BitSet::full(nb); // unreachable: lattice top
                    }
                    new.insert(b);
                    if new != dom[b] {
                        dom[b] = new;
                        changed = true;
                    }
                }
            }
        }

        // Postdominators over the same edges, greatest fixpoint backwards.
        // Blocks with no successors are their own postdominator frontier.
        let mut pdom: Vec<BitSet> = (0..nb).map(|_| BitSet::full(nb)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut new = if blocks[b].succs.is_empty() {
                    BitSet::new(nb)
                } else {
                    let mut acc = BitSet::full(nb);
                    for &s in &blocks[b].succs {
                        acc.intersect_with(&pdom[s]);
                    }
                    acc
                };
                new.insert(b);
                if new != pdom[b] {
                    pdom[b] = new;
                    changed = true;
                }
            }
        }

        FlowGraph {
            blocks,
            preds,
            block_of,
            reachable,
            dom,
            pdom,
        }
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Does block `a` dominate block `b`?
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.dom[b].contains(a)
    }

    /// Per-block control dependence: `cd[b]` lists the *branch blocks* `c`
    /// such that `b` is control-dependent on `c` (Ferrante et al.: `b`
    /// postdominates a successor of `c` but does not strictly postdominate
    /// `c`). A block can be control-dependent on itself (loop-exit tests).
    pub fn control_deps(&self) -> Vec<Vec<usize>> {
        let nb = self.blocks.len();
        let mut cd: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (c, blk) in self.blocks.iter().enumerate() {
            if blk.succs.len() < 2 {
                continue;
            }
            for &s in &blk.succs {
                for b in self.pdom[s].iter() {
                    let strictly_pdoms_c = b != c && self.pdom[c].contains(b);
                    if !strictly_pdoms_c && !cd[b].contains(&c) {
                        cd[b].push(c);
                    }
                }
            }
        }
        cd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, Pred, Reg, Ty};

    fn guarded_bra(t: usize, p: u8, want: bool) -> Inst {
        let mut b = Inst::bra(t);
        b.guard = Some((Pred(p), want));
        b
    }

    /// 0: setp p0; 1: @p0 bra 3; 2: nop; 3: exit
    fn if_then() -> Vec<Inst> {
        vec![
            Inst::setp(CmpOp::Eq, Ty::S32, Pred(0), Reg(0), 0),
            guarded_bra(3, 0, true),
            Inst::new(Op::Nop),
            Inst::new(Op::Exit),
        ]
    }

    #[test]
    fn guarded_exit_falls_through() {
        // 0: @p0 exit; 1: exit
        let mut ge = Inst::new(Op::Exit);
        ge.guard = Some((Pred(0), true));
        let insts = vec![ge, Inst::new(Op::Exit)];
        let g = FlowGraph::build(&insts);
        assert_eq!(g.blocks.len(), 2);
        assert_eq!(g.blocks[0].succs, vec![1], "guarded exit falls through");
        assert!(g.reachable.contains(1));
    }

    #[test]
    fn unguarded_exit_terminates() {
        let insts = vec![Inst::new(Op::Exit), Inst::new(Op::Nop), Inst::new(Op::Exit)];
        let g = FlowGraph::build(&insts);
        assert!(g.blocks[0].succs.is_empty());
        assert!(!g.reachable.contains(1), "code after exit is unreachable");
    }

    #[test]
    fn dominators_on_diamond() {
        let g = FlowGraph::build(&if_then());
        // Block 0 [0,2) dominates everything; the `then` block [2,3) does
        // not dominate the join [3,4).
        let join = g.block_of(3);
        let then = g.block_of(2);
        assert!(g.dominates(0, join));
        assert!(!g.dominates(then, join));
    }

    #[test]
    fn control_dependence_on_if() {
        let g = FlowGraph::build(&if_then());
        let cd = g.control_deps();
        let then = g.block_of(2);
        let join = g.block_of(3);
        assert_eq!(cd[then], vec![g.block_of(1)]);
        assert!(cd[join].is_empty(), "join is not control-dependent");
    }

    #[test]
    fn loop_exit_block_controls_itself() {
        // 0: nop; 1: setp p0; 2: @p0 bra 0; 3: exit — the block holding the
        // back edge is control-dependent on itself.
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 9),
            guarded_bra(0, 0, true),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let cd = g.control_deps();
        let head = g.block_of(0);
        assert!(cd[head].contains(&head), "loop body depends on exit test");
    }

    #[test]
    fn infinite_loop_has_total_pdom() {
        // 0: nop; 1: bra 0 — no path to exit; pdom must still be defined.
        let insts = vec![Inst::new(Op::Nop), Inst::bra(0)];
        let g = FlowGraph::build(&insts);
        assert_eq!(g.pdom.len(), g.blocks.len());
        for b in 0..g.blocks.len() {
            assert!(g.pdom[b].contains(b));
        }
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(129));
        let mut b = BitSet::full(130);
        assert!(b.intersect_with(&a) || b == a);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 129]);
        b.remove(0);
        assert!(!b.contains(0));
        assert!(!b.is_empty());
    }
}
