//! Static race detection: lockset ∩ barrier-phase may-happen-in-parallel.
//!
//! Concurrency granularity is the **warp**: every warp of the grid executes
//! the same code, so two instructions race when different warps can touch
//! the same word at overlapping times. Two accesses are ordered only when
//! (a) their may-held locksets share a lock, or (b) a non-divergent
//! `bar.sync` separates them (postdominates one, dominates the other — see
//! [`crate::barrier`]). Everything else with at least one write is a race.
//!
//! The model is deliberately biased toward false negatives so that the
//! error class stays trustworthy (the service rejects on it):
//! only *plain* (non-volatile, non-atomic) loads and stores to global or
//! shared memory whose address resolves to a warp-invariant word
//! ([`Location::comparable`]) are candidates. Volatile accesses, atomics,
//! lock words themselves, `!sync`-annotated instructions, and
//! thread-indexed addresses are all exempt — the corpus's wait-and-signal
//! and per-thread-slot idioms are intentional synchronization, not bugs.

use crate::barrier::BarrierPhases;
use crate::cfgx::FlowGraph;
use crate::defs::{ReachingDefs, Var};
use crate::lint::{Diagnostic, LintKind, Severity, Witness};
use crate::locks::{access_location, LockAnalysis, Location};
use crate::uniform::Uniformity;
use simt_isa::{Inst, Op, Operand, Space};

/// One race-candidate access.
struct Access {
    pc: usize,
    block: usize,
    space: Space,
    loc: Location,
    is_store: bool,
    /// Guarded by a divergent predicate (e.g. the `tid==0` publish idiom:
    /// a single lane executes, so the same-pc pair is not a warp-wide
    /// write-write race).
    divergent_guard: bool,
    /// For stores: the value written is warp-invariant, so concurrent
    /// same-pc writes are idempotent (benign).
    value_uniform: bool,
}

/// Collect the plain global/shared accesses the race model compares.
fn candidates(
    g: &FlowGraph,
    insts: &[Inst],
    rd: &ReachingDefs,
    u: &Uniformity,
    la: &LockAnalysis,
) -> Vec<Access> {
    let mut lock_words: Vec<Location> = la
        .acquires
        .iter()
        .map(|a| a.lock)
        .chain(la.releases.iter().map(|r| r.lock))
        .collect();
    lock_words.sort();
    lock_words.dedup();

    let mut out = Vec::new();
    for (pc, inst) in insts.iter().enumerate() {
        let (space, volatile, is_store) = match inst.op {
            Op::Ld(s, v) => (s, v, false),
            Op::St(s, v) => (s, v, true),
            _ => continue,
        };
        if volatile || !matches!(space, Space::Global | Space::Shared) {
            continue;
        }
        if inst.ann.sync {
            continue;
        }
        let b = g.block_of(pc);
        if !g.reachable.contains(b) {
            continue;
        }
        let Some(loc) = access_location(g, insts, rd, pc) else {
            continue;
        };
        if !loc.comparable() || lock_words.contains(&loc) {
            continue;
        }
        let divergent_guard = inst
            .guard
            .is_some_and(|(p, _)| u.is_divergent(Var::Pred(p)));
        let value_uniform = is_store
            && match inst.srcs.first() {
                Some(Operand::Imm(_)) => true,
                Some(&Operand::Reg(r)) => !u.is_divergent(Var::Reg(r)),
                _ => false,
            };
        out.push(Access {
            pc,
            block: b,
            space,
            loc,
            is_store,
            divergent_guard,
            value_uniform,
        });
    }
    out
}

/// Run the race lints.
pub fn race_lints(
    g: &FlowGraph,
    insts: &[Inst],
    rd: &ReachingDefs,
    u: &Uniformity,
    la: &LockAnalysis,
    bp: &BarrierPhases,
) -> Vec<Diagnostic> {
    let accs = candidates(g, insts, rd, u, la);
    let mut out = Vec::new();
    // One diagnostic per (word, lint kind, severity): the smallest racing
    // pair is the witness; further pairs on the same word add no signal.
    let mut reported: Vec<(Space, Location, LintKind, Severity)> = Vec::new();

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..accs.len() {
        for j in i..accs.len() {
            let (a, b) = (&accs[i], &accs[j]);
            if a.space != b.space || a.loc != b.loc {
                continue;
            }
            if !a.is_store && !b.is_store {
                continue; // read-read never races
            }
            if i == j && (a.divergent_guard || !a.is_store) {
                // Same instruction in two warps: only a warp-wide store
                // races with itself, and a divergently-guarded one is the
                // single-lane publish idiom.
                continue;
            }
            pairs.push((i, j));
        }
    }

    for (i, j) in pairs {
        let (a, b) = (&accs[i], &accs[j]);
        let held_a = la.held_at(g, a.pc);
        let mut common = held_a.clone();
        let held_b = la.held_at(g, b.pc);
        common.intersect_with(&held_b);
        if !common.is_empty() {
            continue; // a common lock orders the pair
        }
        if i != j && bp.separated(g, a.pc, b.pc) {
            continue; // a uniform barrier orders the pair
        }

        let (kind, severity, note) = if i == j {
            if a.value_uniform {
                (
                    LintKind::RaceUnlocked,
                    Severity::Warning,
                    "; the stored value is warp-invariant, so the writes are \
                     idempotent (benign unless timing-sensitive)",
                )
            } else {
                (LintKind::RaceUnlocked, Severity::Error, "")
            }
        } else if bp.divergent_site_between(g, a.pc, b.pc) {
            (
                LintKind::RaceDivergentBarrier,
                Severity::Error,
                "; the only barrier between them is under divergent control \
                 and does not reliably separate them",
            )
        } else if bp.phase_of(g, a.pc) != bp.phase_of(g, b.pc) {
            (
                LintKind::RaceCrossPhase,
                Severity::Error,
                "; a barrier starts a new phase on some paths but does not \
                 separate these accesses on all of them",
            )
        } else {
            (LintKind::RaceUnlocked, Severity::Error, "")
        };

        let key = (a.space, a.loc, kind, severity);
        if reported.contains(&key) {
            continue;
        }
        reported.push(key);

        let what = |x: &Access| if x.is_store { "store" } else { "load" };
        let message = if i == j {
            format!(
                "every warp may {} to {} concurrently with no common lock \
                 and no ordering{}",
                what(a),
                a.loc,
                note
            )
        } else {
            format!(
                "{} at pc {} and {} at pc {} touch {} in concurrent warps \
                 with no common lock and no separating barrier{}",
                what(a),
                a.pc,
                what(b),
                b.pc,
                a.loc,
                note
            )
        };
        out.push(Diagnostic {
            severity,
            kind,
            pc: a.pc,
            block: a.block,
            var: None,
            message,
            witness: Some(Witness::Race {
                a_pc: a.pc,
                b_pc: b.pc,
                location: a.loc.to_string(),
                lockset_a: la.names(&held_a),
                lockset_b: la.names(&held_b),
                phase_a: bp.phase_of(g, a.pc),
                phase_b: bp.phase_of(g, b.pc),
            }),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint;
    use simt_isa::asm::assemble;

    fn kinds_of(src: &str) -> Vec<(LintKind, Severity)> {
        lint(&assemble(src).expect("test kernel assembles").insts)
            .into_iter()
            .map(|d| (d.kind, d.severity))
            .collect()
    }

    #[test]
    fn unprotected_shared_counter_races() {
        let k = kinds_of(
            r#"
            .kernel racy
            .regs 6
                ld.param r1, [0]
                ld.global r2, [r1]
                add r2, r2, 1
                st.global [r1], r2
                exit
            "#,
        );
        assert!(
            k.contains(&(LintKind::RaceUnlocked, Severity::Error)),
            "{k:?}"
        );
    }

    #[test]
    fn lock_protected_counter_is_clean() {
        let k = kinds_of(
            r#"
            .kernel locked
            .regs 10
                ld.param r1, [0]
                ld.param r2, [4]
                mov r9, 0
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.eq.s32 p1, r3, 0
            @!p1 bra TEST
                ld.global r4, [r2]
                add r4, r4, 1
                st.global [r2], r4
                membar
                atom.global.exch r5, [r1], 0 !release
                mov r9, 1
            TEST:
                setp.eq.s32 p2, r9, 0
            @p2 bra SPIN !sib
                exit
            "#,
        );
        assert!(
            !k.iter().any(|(x, _)| matches!(
                x,
                LintKind::RaceUnlocked | LintKind::RaceCrossPhase | LintKind::RaceDivergentBarrier
            )),
            "{k:?}"
        );
    }

    #[test]
    fn barrier_separated_publish_is_clean() {
        // tid==0 publishes, everyone reads after the barrier.
        let k = kinds_of(
            r#"
            .kernel publish
            .regs 8
                ld.param r1, [0]
                mov r2, %tid
                setp.ne.s32 p0, r2, 0
            @!p0 st.global [r1], r2
                bar.sync
                ld.global r3, [r1]
                exit
            "#,
        );
        assert!(
            !k.iter().any(|(_, s)| *s == Severity::Error),
            "{k:?}"
        );
    }

    #[test]
    fn hoisted_load_above_barrier_races() {
        // The read happens before the barrier that orders the publish.
        let k = kinds_of(
            r#"
            .kernel hoisted
            .regs 8
                ld.param r1, [0]
                mov r2, %tid
                setp.ne.s32 p0, r2, 0
                ld.global r3, [r1]
            @!p0 st.global [r1], r2
                bar.sync
                exit
            "#,
        );
        assert!(
            k.contains(&(LintKind::RaceUnlocked, Severity::Error)),
            "{k:?}"
        );
    }

    #[test]
    fn divergent_barrier_race_classified() {
        let k = kinds_of(
            r#"
            .kernel divbar
            .regs 8
                ld.param r1, [0]
                mov r2, %tid
                setp.eq.s32 p0, r2, 0
                st.global [r1], r2
            @p0 bra SKIP
                bar.sync
            SKIP:
                ld.global r3, [r1]
                exit
            "#,
        );
        assert!(
            k.contains(&(LintKind::RaceDivergentBarrier, Severity::Error)),
            "{k:?}"
        );
    }

    #[test]
    fn thread_indexed_accesses_are_exempt() {
        let k = kinds_of(
            r#"
            .kernel slots
            .regs 8
                ld.param r1, [0]
                mov r2, %gtid
                shl r2, r2, 2
                add r1, r1, r2
                ld.global r3, [r1]
                add r3, r3, 1
                st.global [r1], r3
                exit
            "#,
        );
        assert!(k.is_empty(), "{k:?}");
    }

    #[test]
    fn uniform_broadcast_store_is_warning_only() {
        let k = kinds_of(
            r#"
            .kernel bcast
            .regs 6
                ld.param r1, [0]
                st.global [r1], 7
                exit
            "#,
        );
        assert_eq!(k, vec![(LintKind::RaceUnlocked, Severity::Warning)]);
    }
}
