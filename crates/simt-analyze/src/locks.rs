//! Lock identification and may-held lockset analysis.
//!
//! The corpus (and `kernels/spinlock.s`) implements locks with one idiom:
//! acquire by `atom.*.cas rD, [L], 0, 1` spun until `rD == 0`, release by
//! `atom.*.exch rX, [L], 0` (or a plain store of 0). This module recognizes
//! those shapes by value-tracing through reaching definitions, gives every
//! lock word an abstract identity, and runs a forward *may-held* dataflow
//! so every instruction can be asked which locks a warp might hold there.
//!
//! The acquire transfer is **edge-sensitive**: the CAS itself does not gen
//! its lock — the *success edge* of the guard that tests `rD` against 0
//! does. On the spin-fail path the lock is therefore never considered held,
//! which is what keeps the held-at-exit check (missing-release) quiet on
//! every correct retry loop in the corpus.

use crate::cfgx::{BitSet, FlowGraph};
use crate::defs::{defs, ReachingDefs, Var};
use simt_isa::{AtomOp, CmpOp, Inst, Op, Operand, Reg, Space};
use std::fmt;

/// Abstract identity of a memory word.
///
/// `Param`/`Abs` identities are functions of the launch parameters and
/// immediates alone, so two warps computing them refer to the *same* word —
/// these are the only identities the race pass compares across warps.
/// `Sym` roots the address at its single reaching definition: meaningful
/// for matching a release to its acquire inside one kernel (the corpus
/// computes both from the same register chain), but never provably the
/// same word in two different warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// `param[slot] + offset` (byte offsets).
    Param { slot: i32, offset: i32 },
    /// Absolute address.
    Abs(i64),
    /// Rooted at the unresolvable single definition at `def_pc`.
    Sym { def_pc: usize, offset: i32 },
}

impl Location {
    /// True when two warps evaluating the defining expression are
    /// guaranteed to name the same memory word.
    pub fn comparable(&self) -> bool {
        !matches!(self, Location::Sym { .. })
    }

    fn shift(self, delta: i32) -> Location {
        match self {
            Location::Param { slot, offset } => Location::Param {
                slot,
                offset: offset + delta,
            },
            Location::Abs(a) => Location::Abs(a + delta as i64),
            Location::Sym { def_pc, offset } => Location::Sym {
                def_pc,
                offset: offset + delta,
            },
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Param { slot, offset } if *offset == 0 => write!(f, "param[{slot}]"),
            Location::Param { slot, offset } => write!(f, "param[{slot}]+{offset}"),
            Location::Abs(a) => write!(f, "0x{a:x}"),
            Location::Sym { def_pc, offset } if *offset == 0 => write!(f, "addr@pc{def_pc}"),
            Location::Sym { def_pc, offset } => write!(f, "addr@pc{def_pc}+{offset}"),
        }
    }
}

/// A recognized lock-acquire site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquire {
    /// The CAS instruction.
    pub pc: usize,
    /// Identity of the lock word.
    pub lock: Location,
    /// CFG edge `(block, successor)` on which the acquire succeeds; `None`
    /// when no `rD == 0` guard shape was found, in which case the lock gens
    /// at the instruction itself (a conservative over-approximation).
    pub success_edge: Option<(usize, usize)>,
}

/// A recognized lock-release site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Release {
    pub pc: usize,
    pub lock: Location,
}

/// Resolve register `reg`, as read at `pc`, to an abstract address.
///
/// Follows single-reaching-definition chains through `mov`, `add`/`sub`
/// with a constant side, and `ld.param`. Anything else (multiple defs,
/// thread-varying math) roots a [`Location::Sym`] at the definition.
pub fn resolve_reg(
    g: &FlowGraph,
    insts: &[Inst],
    rd: &ReachingDefs,
    pc: usize,
    reg: Reg,
    depth: usize,
) -> Option<Location> {
    if depth == 0 {
        return None;
    }
    let (real, uninit) = rd.reaching(g, insts, pc, Var::Reg(reg));
    if uninit || real.len() != 1 {
        return None;
    }
    let d = real[0];
    let inst = &insts[d];
    // A guarded definition is a merge with the fall-through value; only an
    // unconditional def pins the address.
    if inst.guard.is_some() {
        return Some(Location::Sym { def_pc: d, offset: 0 });
    }
    let sym = Location::Sym { def_pc: d, offset: 0 };
    let resolved = match inst.op {
        Op::Ld(Space::Param, _) => match inst.addr {
            Some(a) if a.base.is_none() => Some(Location::Param {
                slot: a.offset,
                offset: 0,
            }),
            _ => None,
        },
        Op::Mov => match inst.srcs.first() {
            Some(&Operand::Imm(v)) => Some(Location::Abs(v as i64)),
            Some(&Operand::Reg(r)) => resolve_reg(g, insts, rd, d, r, depth - 1),
            _ => None,
        },
        Op::Add(_) | Op::Sub(_) => {
            let (x, y) = (inst.srcs.first().copied(), inst.srcs.get(1).copied());
            let sign = if matches!(inst.op, Op::Sub(_)) { -1i64 } else { 1 };
            match (x, y) {
                (Some(Operand::Reg(r)), Some(c)) => {
                    const_operand(g, insts, rd, d, c, depth - 1).and_then(|c| {
                        resolve_reg(g, insts, rd, d, r, depth - 1)
                            .map(|base| base.shift((sign * c) as i32))
                    })
                }
                (Some(c), Some(Operand::Reg(r))) if sign == 1 => {
                    const_operand(g, insts, rd, d, c, depth - 1).and_then(|c| {
                        resolve_reg(g, insts, rd, d, r, depth - 1)
                            .map(|base| base.shift(c as i32))
                    })
                }
                _ => None,
            }
        }
        _ => None,
    };
    Some(resolved.unwrap_or(sym))
}

/// Evaluate an operand to a compile-time constant, if it is one.
fn const_operand(
    g: &FlowGraph,
    insts: &[Inst],
    rd: &ReachingDefs,
    pc: usize,
    op: Operand,
    depth: usize,
) -> Option<i64> {
    match op {
        Operand::Imm(v) => Some(v as i32 as i64),
        Operand::Reg(r) => {
            if depth == 0 {
                return None;
            }
            let (real, uninit) = rd.reaching(g, insts, pc, Var::Reg(r));
            if uninit || real.len() != 1 {
                return None;
            }
            let d = real[0];
            let inst = &insts[d];
            if inst.guard.is_some() {
                return None;
            }
            match inst.op {
                Op::Mov => const_operand(g, insts, rd, d, *inst.srcs.first()?, depth - 1),
                Op::Add(_) => Some(
                    const_operand(g, insts, rd, d, *inst.srcs.first()?, depth - 1)?
                        + const_operand(g, insts, rd, d, *inst.srcs.get(1)?, depth - 1)?,
                )
                .filter(|v| v.abs() < i32::MAX as i64),
                Op::Shl => Some(
                    const_operand(g, insts, rd, d, *inst.srcs.first()?, depth - 1)?
                        << const_operand(g, insts, rd, d, *inst.srcs.get(1)?, depth - 1)?
                            .clamp(0, 31),
                ),
                _ => None,
            }
        }
        Operand::Special(_) => None,
    }
}

/// Identity of the memory operand of the access at `pc`, if resolvable.
pub fn access_location(
    g: &FlowGraph,
    insts: &[Inst],
    rd: &ReachingDefs,
    pc: usize,
) -> Option<Location> {
    let a = insts[pc].addr?;
    match a.base {
        None => Some(Location::Abs(a.offset as i64)),
        Some(base) => Some(resolve_reg(g, insts, rd, pc, base, 16)?.shift(a.offset)),
    }
}

const RESOLVE_DEPTH: usize = 16;

/// The lockset analysis result for one kernel.
pub struct LockAnalysis {
    /// Distinct lock identities, sorted (the bit index space of locksets).
    pub locks: Vec<Location>,
    pub acquires: Vec<Acquire>,
    pub releases: Vec<Release>,
    /// May-held lockset at each block entry.
    block_in: Vec<BitSet>,
}

impl LockAnalysis {
    /// Identify locks and solve the may-held dataflow.
    pub fn solve(g: &FlowGraph, insts: &[Inst], rd: &ReachingDefs) -> LockAnalysis {
        let mut acquires = Vec::new();
        for (pc, inst) in insts.iter().enumerate() {
            if !is_acquire_shape(inst) {
                continue;
            }
            let Some(lock) = lock_location(g, insts, rd, pc) else {
                continue;
            };
            acquires.push(Acquire {
                pc,
                lock,
                success_edge: success_edge(g, insts, pc),
            });
        }

        let mut locks: Vec<Location> = acquires.iter().map(|a| a.lock).collect();
        locks.sort();
        locks.dedup();

        let mut releases = Vec::new();
        for (pc, inst) in insts.iter().enumerate() {
            let annotated = inst.ann.release;
            let exch_zero = matches!(inst.op, Op::Atom(AtomOp::Exch))
                && inst.srcs.first() == Some(&Operand::Imm(0));
            let store_zero = matches!(inst.op, Op::St(..))
                && inst.srcs.first() == Some(&Operand::Imm(0));
            if !(annotated || exch_zero || store_zero) {
                continue;
            }
            let Some(lock) = lock_location(g, insts, rd, pc) else {
                continue;
            };
            // A plain store of zero only counts as a release of a word some
            // acquire names as a lock; exchanges and annotated sites always
            // count (they are unambiguous release idioms).
            if store_zero && !annotated && !locks.contains(&lock) {
                continue;
            }
            releases.push(Release { pc, lock });
        }

        let idx = |l: &Location| locks.binary_search(l).ok();
        let nb = g.blocks.len();
        let nl = locks.len();

        // Per-edge gens from edge-sensitive acquires.
        let mut edge_gens: Vec<(usize, usize, usize)> = Vec::new();
        for a in &acquires {
            if let (Some((b, s)), Some(i)) = (a.success_edge, idx(&a.lock)) {
                edge_gens.push((b, s, i));
            }
        }

        // Forward may-union fixpoint.
        let mut block_in: Vec<BitSet> = (0..nb).map(|_| BitSet::new(nl.max(1))).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                if !g.reachable.contains(b) {
                    continue;
                }
                let mut out = block_in[b].clone();
                transfer_range(
                    g.blocks[b].start..g.blocks[b].end,
                    &acquires,
                    &releases,
                    &locks,
                    &mut out,
                );
                for &s in &g.blocks[b].succs {
                    let mut contrib = out.clone();
                    for &(eb, es, l) in &edge_gens {
                        if eb == b && es == s {
                            contrib.insert(l);
                        }
                    }
                    changed |= block_in[s].union_with(&contrib);
                }
            }
        }

        LockAnalysis {
            locks,
            acquires,
            releases,
            block_in,
        }
    }

    /// May-held lockset just before executing `pc` (bit indices into
    /// [`LockAnalysis::locks`]).
    pub fn held_at(&self, g: &FlowGraph, pc: usize) -> BitSet {
        let b = g.block_of(pc);
        let mut held = self.block_in[b].clone();
        transfer_range(
            g.blocks[b].start..pc,
            &self.acquires,
            &self.releases,
            &self.locks,
            &mut held,
        );
        held
    }

    /// Render a lockset bitset as sorted lock names.
    pub fn names(&self, set: &BitSet) -> Vec<String> {
        set.iter().map(|i| self.locks[i].to_string()).collect()
    }
}

fn transfer_range(
    range: std::ops::Range<usize>,
    acquires: &[Acquire],
    releases: &[Release],
    locks: &[Location],
    held: &mut BitSet,
) {
    for pc in range {
        if let Some(a) = acquires.iter().find(|a| a.pc == pc) {
            if a.success_edge.is_none() {
                if let Ok(i) = locks.binary_search(&a.lock) {
                    held.insert(i);
                }
            }
        }
        if let Some(r) = releases.iter().find(|r| r.pc == pc) {
            if let Ok(i) = locks.binary_search(&r.lock) {
                held.remove(i);
            }
        }
    }
}

/// `atom.*.cas rD, [L], 0, new` — the corpus's only acquire idiom — or any
/// CAS explicitly annotated `!acquire`.
fn is_acquire_shape(inst: &Inst) -> bool {
    if !matches!(inst.op, Op::Atom(AtomOp::Cas)) {
        return false;
    }
    inst.ann.acquire || inst.srcs.first() == Some(&Operand::Imm(0))
}

/// Identity of the lock word at an acquire/release site. `Sym` identities
/// are allowed — within one kernel the acquire and release compute the
/// address from the same definition chain, so they still match.
fn lock_location(
    g: &FlowGraph,
    insts: &[Inst],
    rd: &ReachingDefs,
    pc: usize,
) -> Option<Location> {
    let a = insts[pc].addr?;
    match a.base {
        None => Some(Location::Abs(a.offset as i64)),
        Some(base) => {
            Some(resolve_reg(g, insts, rd, pc, base, RESOLVE_DEPTH)?.shift(a.offset))
        }
    }
}

/// Find the CFG edge on which the CAS at `pc` is known to have returned 0.
///
/// Pattern: later in the same block, `setp.eq/ne pX, rD, 0` with `rD` (the
/// CAS destination) not redefined in between, and the block terminator a
/// branch guarded on `pX` (`pX` also not redefined). The successor on the
/// `rD == 0` side is the success edge.
fn success_edge(g: &FlowGraph, insts: &[Inst], pc: usize) -> Option<(usize, usize)> {
    let dst = insts[pc].dst?;
    let b = g.block_of(pc);
    let end = g.blocks[b].end;
    // Locate the comparison against zero.
    let mut setp = None;
    for (p, i) in insts.iter().enumerate().take(end).skip(pc + 1) {
        if setp.is_none() {
            if let Op::Setp(cmp @ (CmpOp::Eq | CmpOp::Ne), _) = i.op {
                if i.srcs.first() == Some(&Operand::Reg(dst))
                    && i.srcs.get(1) == Some(&Operand::Imm(0))
                {
                    setp = Some((p, cmp, i.pdst?));
                    continue;
                }
            }
            if defs(i).contains(&Var::Reg(dst)) {
                return None; // rD clobbered before any test
            }
        }
    }
    let (setp_pc, cmp, pred) = setp?;
    // The terminator must be a branch guarded on that predicate, with the
    // predicate intact in between.
    let term = &insts[end - 1];
    if !term.op.is_branch() {
        return None;
    }
    let (gp, want) = term.guard?;
    if gp != pred {
        return None;
    }
    for i in &insts[setp_pc + 1..end - 1] {
        if defs(i).contains(&Var::Pred(pred)) {
            return None;
        }
    }
    // `success` is the CFG edge taken when rD == 0.
    let success_pred_value = cmp == CmpOp::Eq; // p <=> (rD == 0) for eq
    let target_block = term.target.filter(|&t| t < insts.len()).map(|t| g.block_of(t))?;
    let fall_block = if end < insts.len() {
        Some(g.block_of(end))
    } else {
        None
    };
    let succ = if success_pred_value == want {
        Some(target_block)
    } else {
        fall_block
    }?;
    // The patched CFG must actually have the edge (it always does for
    // valid kernels; invalid ones fall back to inst-level gen).
    if g.blocks[b].succs.contains(&succ) {
        Some((b, succ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::asm::assemble;

    fn setup(src: &str) -> (Vec<Inst>, FlowGraph) {
        let insts = assemble(src).expect("test kernel assembles").insts;
        let g = FlowGraph::build(&insts);
        (insts, g)
    }

    const SPINLOCK: &str = r#"
        .kernel spinlock
        .regs 10
            ld.param r1, [0]
            ld.param r2, [4]
            mov r9, 0
        SPIN:
            atom.global.cas r3, [r1], 0, 1 !acquire
            setp.eq.s32 p1, r3, 0
        @!p1 bra TEST
            ld.global.volatile r4, [r2]
            add r4, r4, 1
            st.global [r2], r4
            membar
            atom.global.exch r5, [r1], 0 !release
            mov r9, 1
        TEST:
            setp.eq.s32 p2, r9, 0
        @p2 bra SPIN !sib
            exit
    "#;

    #[test]
    fn spinlock_acquire_release_identified() {
        let (insts, g) = setup(SPINLOCK);
        let rd = ReachingDefs::solve(&g, &insts);
        let la = LockAnalysis::solve(&g, &insts, &rd);
        assert_eq!(la.locks, vec![Location::Param { slot: 0, offset: 0 }]);
        assert_eq!(la.acquires.len(), 1);
        assert!(la.acquires[0].success_edge.is_some(), "guard shape found");
        assert_eq!(la.releases.len(), 1);
    }

    #[test]
    fn critical_section_holds_lock_and_fail_path_does_not() {
        let (insts, g) = setup(SPINLOCK);
        let rd = ReachingDefs::solve(&g, &insts);
        let la = LockAnalysis::solve(&g, &insts, &rd);
        let store = insts
            .iter()
            .position(|i| matches!(i.op, Op::St(..)))
            .unwrap();
        assert!(
            !la.held_at(&g, store).is_empty(),
            "critical-section store is protected"
        );
        // The exit test (reached from both the fail edge and the released
        // path) holds nothing, and neither does exit.
        let exit = insts.iter().position(|i| i.op == Op::Exit).unwrap();
        assert!(la.held_at(&g, exit).is_empty(), "released at exit");
    }

    #[test]
    fn dropped_release_is_held_at_exit() {
        let (insts, g) = setup(
            r#"
            .kernel leak
            .regs 10
                ld.param r1, [0]
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.ne.s32 p1, r3, 0
            @p1 bra SPIN
                exit
            "#,
        );
        let rd = ReachingDefs::solve(&g, &insts);
        let la = LockAnalysis::solve(&g, &insts, &rd);
        let exit = insts.iter().position(|i| i.op == Op::Exit).unwrap();
        assert!(
            !la.held_at(&g, exit).is_empty(),
            "lock leaks through to exit"
        );
    }

    #[test]
    fn distinct_param_locks_are_distinct() {
        let (insts, g) = setup(
            r#"
            .kernel two
            .regs 10
                ld.param r1, [0]
                ld.param r2, [4]
                atom.global.cas r3, [r1], 0, 1 !acquire
                atom.global.cas r4, [r2], 0, 1 !acquire
                atom.global.exch r5, [r2], 0 !release
                atom.global.exch r6, [r1], 0 !release
                exit
            "#,
        );
        let rd = ReachingDefs::solve(&g, &insts);
        let la = LockAnalysis::solve(&g, &insts, &rd);
        assert_eq!(la.locks.len(), 2);
    }

    #[test]
    fn divergent_lock_addresses_are_symbolic() {
        let (insts, g) = setup(
            r#"
            .kernel perthread
            .regs 10
                ld.param r1, [0]
                mov r2, %gtid
                shl r2, r2, 2
                add r3, r1, r2
                atom.global.cas r4, [r3], 0, 1 !acquire
                atom.global.exch r5, [r3], 0 !release
                exit
            "#,
        );
        let rd = ReachingDefs::solve(&g, &insts);
        let la = LockAnalysis::solve(&g, &insts, &rd);
        assert_eq!(la.locks.len(), 1);
        assert!(!la.locks[0].comparable(), "gtid-derived address is symbolic");
        // Acquire and release still pair up: nothing held at exit.
        let exit = insts.iter().position(|i| i.op == Op::Exit).unwrap();
        assert!(la.held_at(&g, exit).is_empty());
    }
}
