//! Natural-loop detection.
//!
//! A *back edge* is a CFG edge `latch -> header` whose target dominates its
//! source; the loop body is the set of blocks that can reach the latch
//! without passing through the header (computed by reverse reachability from
//! the latch, stopping at the header). Backward branches that are not back
//! edges (irreducible entries, e.g. a jump into the middle of a loop) are
//! reported as such so the spin oracle can skip them instead of guessing.

use crate::cfgx::{BitSet, FlowGraph};
use simt_isa::Inst;

/// One natural loop, identified by its back edge.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Instruction index of the backward branch forming the back edge.
    pub branch_pc: usize,
    /// Header block id (the back edge's target).
    pub header: usize,
    /// Latch block id (the block holding the backward branch).
    pub latch: usize,
    /// Blocks in the loop body, header and latch included.
    pub blocks: BitSet,
    /// Exit edges `(from_block, to_block)` leaving the loop.
    pub exits: Vec<(usize, usize)>,
}

impl NaturalLoop {
    /// Is instruction `pc` inside the loop body?
    pub fn contains_pc(&self, g: &FlowGraph, pc: usize) -> bool {
        self.blocks.contains(g.block_of(pc))
    }

    /// Iterate the instruction indices of the loop body in program order.
    pub fn insts<'a>(&'a self, g: &'a FlowGraph) -> impl Iterator<Item = usize> + 'a {
        self.blocks
            .iter()
            .flat_map(|b| g.blocks[b].start..g.blocks[b].end)
    }
}

/// Find every natural loop formed by a backward branch.
///
/// Returns loops in program order of their backward branch. A conditional
/// backward branch whose target does *not* dominate it (irreducible control
/// flow) yields no loop here.
pub fn natural_loops(g: &FlowGraph, insts: &[Inst]) -> Vec<NaturalLoop> {
    let nb = g.blocks.len();
    let mut out = Vec::new();
    for (pc, inst) in insts.iter().enumerate() {
        if !inst.is_backward_branch(pc) {
            continue;
        }
        let Some(target) = inst.target else { continue };
        if target >= g.block_of_len() {
            continue; // out-of-range target: reported by the lints
        }
        let latch = g.block_of(pc);
        let header = g.block_of(target);
        if !g.reachable.contains(latch) || !g.dominates(header, latch) {
            continue; // unreachable or irreducible back edge
        }
        // Body: reverse reachability from the latch, stopping at the header.
        let mut blocks = BitSet::new(nb);
        blocks.insert(header);
        blocks.insert(latch);
        let mut stack = vec![latch];
        while let Some(b) = stack.pop() {
            if b == header {
                continue;
            }
            for &p in &g.preds[b] {
                if blocks.insert(p) {
                    stack.push(p);
                }
            }
        }
        let mut exits = Vec::new();
        for b in blocks.iter() {
            for &s in &g.blocks[b].succs {
                if !blocks.contains(s) {
                    exits.push((b, s));
                }
            }
        }
        out.push(NaturalLoop {
            branch_pc: pc,
            header,
            latch,
            blocks,
            exits,
        });
    }
    out
}

impl FlowGraph {
    /// Number of instructions covered by the block map (used to guard
    /// lookups against out-of-range branch targets).
    pub fn block_of_len(&self) -> usize {
        self.blocks.last().map_or(0, |b| b.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, Op, Pred, Reg, Ty};

    fn guarded_bra(t: usize, p: u8) -> Inst {
        let mut b = Inst::bra(t);
        b.guard = Some((Pred(p), true));
        b
    }

    #[test]
    fn simple_counted_loop() {
        // 0: nop (head); 1: setp; 2: @p0 bra 0; 3: exit
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 9),
            guarded_bra(0, 0),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let loops = natural_loops(&g, &insts);
        assert_eq!(loops.len(), 1);
        let l = loops[0].clone();
        assert_eq!(l.branch_pc, 2);
        assert_eq!(l.header, l.latch, "single-block loop");
        assert_eq!(l.exits.len(), 1);
        assert!(l.contains_pc(&g, 1));
        assert!(!l.contains_pc(&g, 3));
    }

    #[test]
    fn nested_loops_have_nested_bodies() {
        // 0: nop (outer head); 1: nop (inner head); 2: setp p0;
        // 3: @p0 bra 1 (inner); 4: setp p1; 5: @p1 bra 0 (outer); 6: exit
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 9),
            guarded_bra(1, 0),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(1), Reg(1), 9),
            guarded_bra(0, 1),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let loops = natural_loops(&g, &insts);
        assert_eq!(loops.len(), 2);
        let inner = &loops[0];
        let outer = &loops[1];
        assert!(!inner.contains_pc(&g, 0));
        assert!(outer.contains_pc(&g, 0));
        assert!(outer.contains_pc(&g, 3), "outer body contains inner");
    }

    #[test]
    fn irreducible_back_edge_is_skipped() {
        // Jump into the middle of a "loop": the backward branch's target
        // does not dominate it.
        // 0: bra 2; 1: nop (side entry target); 2: nop; 3: @p0 bra 1; 4: exit
        let insts = vec![
            Inst::bra(2),
            Inst::new(Op::Nop),
            Inst::new(Op::Nop),
            guarded_bra(1, 0),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let loops = natural_loops(&g, &insts);
        assert!(
            loops.iter().all(|l| l.branch_pc != 3),
            "irreducible edge must not form a natural loop"
        );
    }

    #[test]
    fn infinite_self_loop_has_no_exits() {
        let insts = vec![Inst::new(Op::Nop), Inst::bra(0)];
        let g = FlowGraph::build(&insts);
        let loops = natural_loops(&g, &insts);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].exits.is_empty());
    }
}
