//! Barrier-phase partitioning of the CFG.
//!
//! `bar.sync` splits a kernel into *phases*: two shared/global accesses in
//! different warps of a CTA cannot overlap when a barrier provably sits
//! between them on every execution. "Provably between" is the dominance
//! criterion from the race model: a barrier separates access A from access
//! B when its block postdominates A's block and dominates B's block (with
//! program-order refinement when they share a block). A barrier under
//! divergent control does **not** separate anything — lanes of a warp can
//! disagree on reaching it (that is the existing divergent-barrier lint) —
//! but the pass remembers such barriers so races they *fail* to prevent
//! can be reported as divergent-barrier races rather than plain ones.

use crate::cfgx::FlowGraph;
use crate::defs::Var;
use crate::uniform::Uniformity;
use simt_isa::{Inst, Op};

/// One `bar.sync` site.
#[derive(Debug, Clone, Copy)]
pub struct BarrierSite {
    pub pc: usize,
    pub block: usize,
    /// Control-dependent on a divergent branch (or divergently guarded):
    /// does not reliably separate accesses.
    pub divergent: bool,
}

/// The barrier structure of one kernel.
pub struct BarrierPhases {
    pub sites: Vec<BarrierSite>,
    /// Phase index per block: the number of non-divergent barrier sites
    /// whose block strictly dominates the block (barriers in the same block
    /// refine by pc at query time). Blocks with equal indices belong to the
    /// same barrier interval.
    phase: Vec<usize>,
}

impl BarrierPhases {
    pub fn solve(g: &FlowGraph, insts: &[Inst], u: &Uniformity) -> BarrierPhases {
        let cd = g.control_deps();
        let mut sites = Vec::new();
        for (pc, inst) in insts.iter().enumerate() {
            if inst.op != Op::Bar {
                continue;
            }
            let b = g.block_of(pc);
            if !g.reachable.contains(b) {
                continue;
            }
            let guard_div = inst
                .guard
                .is_some_and(|(p, _)| u.is_divergent(Var::Pred(p)));
            let ctrl_div = cd[b]
                .iter()
                .any(|&c| u.divergent_branches.contains(c));
            sites.push(BarrierSite {
                pc,
                block: b,
                divergent: guard_div || ctrl_div,
            });
        }
        let phase = (0..g.blocks.len())
            .map(|b| {
                sites
                    .iter()
                    .filter(|s| {
                        !s.divergent && s.block != b && g.dominates(s.block, b)
                    })
                    .count()
            })
            .collect();
        BarrierPhases { sites, phase }
    }

    /// Barrier-interval index of the access at `pc` (barriers earlier in
    /// the same block count toward the phase).
    pub fn phase_of(&self, g: &FlowGraph, pc: usize) -> usize {
        let b = g.block_of(pc);
        self.phase[b]
            + self
                .sites
                .iter()
                .filter(|s| !s.divergent && s.block == b && s.pc < pc)
                .count()
    }

    /// Does some *non-divergent* barrier separate the accesses at `a` and
    /// `b` (in either orientation)?
    pub fn separated(&self, g: &FlowGraph, a: usize, b: usize) -> bool {
        self.sites
            .iter()
            .any(|s| !s.divergent && (separates(g, s, a, b) || separates(g, s, b, a)))
    }

    /// Is a *divergent* barrier on some path between the accesses (in either
    /// orientation)? Used to classify a race as "a barrier was meant to
    /// order these, but divergence breaks it" rather than a plain race.
    /// Deliberately path-existential, not dominance-based: the whole failure
    /// mode is that divergence routes some lanes around the barrier.
    pub fn divergent_site_between(&self, g: &FlowGraph, a: usize, b: usize) -> bool {
        self.sites
            .iter()
            .filter(|s| s.divergent)
            .any(|s| on_some_path(g, s, a, b) || on_some_path(g, s, b, a))
    }
}

/// Can barrier `s` execute after `first` and before `second` on *some* path?
fn on_some_path(g: &FlowGraph, s: &BarrierSite, first: usize, second: usize) -> bool {
    let (fb, sb) = (g.block_of(first), g.block_of(second));
    let after_first = (s.block == fb && s.pc > first) || reaches(g, fb, s.block);
    let before_second = (s.block == sb && s.pc < second) || reaches(g, s.block, sb);
    after_first && before_second
}

/// Block-level reachability `from → to` via at least one CFG edge.
fn reaches(g: &FlowGraph, from: usize, to: usize) -> bool {
    let mut seen = vec![false; g.blocks.len()];
    let mut queue: Vec<usize> = g.blocks[from].succs.clone();
    while let Some(b) = queue.pop() {
        if b == to {
            return true;
        }
        if !seen[b] {
            seen[b] = true;
            queue.extend(&g.blocks[b].succs);
        }
    }
    false
}

/// Does barrier `s` sit between `first` and `second`: on every path after
/// `first` (postdominates) and on every path before `second` (dominates)?
fn separates(g: &FlowGraph, s: &BarrierSite, first: usize, second: usize) -> bool {
    let (fb, sb) = (g.block_of(first), g.block_of(second));
    let after_first = if s.block == fb {
        s.pc > first
    } else {
        g.pdom[fb].contains(s.block)
    };
    let before_second = if s.block == sb {
        s.pc < second
    } else {
        g.dominates(s.block, sb)
    };
    after_first && before_second
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::asm::assemble;

    fn setup(src: &str) -> (Vec<Inst>, FlowGraph, Uniformity) {
        let insts = assemble(src).expect("test kernel assembles").insts;
        let g = FlowGraph::build(&insts);
        let u = Uniformity::solve(&g, &insts);
        (insts, g, u)
    }

    #[test]
    fn straight_line_barrier_separates() {
        let (insts, g, u) = setup(
            r#"
            .kernel phases
            .regs 6
                ld.param r1, [0]
                st.global [r1], r1
                bar.sync
                ld.global r2, [r1]
                exit
            "#,
        );
        let bp = BarrierPhases::solve(&g, &insts, &u);
        assert_eq!(bp.sites.len(), 1);
        assert!(!bp.sites[0].divergent);
        let (st, ld) = (1, 3);
        assert!(bp.separated(&g, st, ld));
        assert!(bp.separated(&g, ld, st), "orientation-symmetric");
        assert_eq!(bp.phase_of(&g, st), 0);
        assert_eq!(bp.phase_of(&g, ld), 1);
    }

    #[test]
    fn divergent_barrier_does_not_separate() {
        let (insts, g, u) = setup(
            r#"
            .kernel divsep
            .regs 6
                ld.param r1, [0]
                mov r2, %tid
                setp.eq.s32 p0, r2, 0
                st.global [r1], r2
            @p0 bra SKIP
                bar.sync
            SKIP:
                ld.global r3, [r1]
                exit
            "#,
        );
        let bp = BarrierPhases::solve(&g, &insts, &u);
        assert!(bp.sites[0].divergent);
        let (st, ld) = (3, 6);
        assert!(!bp.separated(&g, st, ld));
        assert!(bp.divergent_site_between(&g, st, ld));
    }

    #[test]
    fn conditional_barrier_does_not_postdominate_store() {
        // Uniform branch around the barrier: the barrier neither
        // postdominates the store nor dominates the load.
        let (insts, g, u) = setup(
            r#"
            .kernel skipbar
            .regs 6
                ld.param r1, [0]
                mov r2, %ctaid
                setp.eq.s32 p0, r2, 0
                st.global [r1], r2
            @p0 bra SKIP
                bar.sync
            SKIP:
                ld.global r3, [r1]
                exit
            "#,
        );
        let bp = BarrierPhases::solve(&g, &insts, &u);
        assert!(!bp.sites[0].divergent, "ctaid guard is uniform");
        assert!(!bp.separated(&g, 3, 6));
    }

    #[test]
    fn same_block_order_respected() {
        let (insts, g, u) = setup(
            r#"
            .kernel inblock
            .regs 6
                ld.param r1, [0]
                ld.global r2, [r1]
                bar.sync
                st.global [r1], r2
                exit
            "#,
        );
        let bp = BarrierPhases::solve(&g, &insts, &u);
        assert!(bp.separated(&g, 1, 3));
        // Two accesses on the same side of the barrier are not separated.
        assert!(!bp.separated(&g, 3, 3));
    }
}
