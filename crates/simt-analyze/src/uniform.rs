//! Warp-uniformity (divergence) analysis.
//!
//! Classifies every variable as *uniform* (provably equal across the active
//! lanes of a warp) or *divergent*. Sources of divergence:
//!
//! * lane-varying special registers (`%tid`, `%laneid`, `%gtid`),
//! * atomic return values (each lane observes a different old value),
//! * loads whose address is divergent,
//! * any computation over divergent inputs,
//! * *sync dependence*: a definition inside a region controlled by a
//!   divergent branch executes on a lane-varying path, so its value differs
//!   across lanes after reconvergence.
//!
//! `%ctaid`, `%ntid`, `%nctaid`, `%smid`, `%warpid`, `%clock` and kernel
//! parameters are warp-uniform; a (volatile) load from a uniform address is
//! treated as uniform — all lanes issue the same address in the same cycle.
//! This is the standard GPU compiler approximation (cf. divergence analysis
//! in "Control Flow Management in Modern GPUs"), precise enough to prove the
//! corpus's CTA-wide done-counter polls uniform.

use crate::cfgx::{BitSet, FlowGraph};
use crate::defs::{defs, Var, NUM_VARS};
use simt_isa::{Inst, Op, Operand, Special};

/// Uniformity solution.
pub struct Uniformity {
    /// Divergent variables, over [`Var::index`]. A variable is divergent if
    /// *any* definition of it is divergent.
    pub divergent_vars: BitSet,
    /// Blocks ending in a divergent conditional branch.
    pub divergent_branches: BitSet,
}

fn special_is_divergent(s: Special) -> bool {
    match s {
        Special::TidX | Special::LaneId | Special::GlobalTid => true,
        Special::CtaIdX
        | Special::NTidX
        | Special::NCtaIdX
        | Special::WarpId
        | Special::SmId
        | Special::Clock => false,
    }
}

impl Uniformity {
    /// Solve to fixpoint.
    pub fn solve(g: &FlowGraph, insts: &[Inst]) -> Uniformity {
        let cd = g.control_deps();
        let nb = g.blocks.len();
        let mut divergent_vars = BitSet::new(NUM_VARS);
        let mut divergent_branches = BitSet::new(nb);

        let mut changed = true;
        while changed {
            changed = false;
            for (pc, inst) in insts.iter().enumerate() {
                let dsts = defs(inst);
                if dsts.is_empty() {
                    continue;
                }
                let mut div = match inst.op {
                    // Atomics: each lane receives a distinct old value.
                    Op::Atom(_) => true,
                    // Loads: divergent iff the address is divergent.
                    Op::Ld(..) => inst
                        .addr
                        .and_then(|a| a.base)
                        .is_some_and(|r| divergent_vars.contains(Var::Reg(r).index())),
                    _ => false,
                };
                if !matches!(inst.op, Op::Ld(..)) {
                    for s in &inst.srcs {
                        div |= match *s {
                            Operand::Reg(r) => divergent_vars.contains(Var::Reg(r).index()),
                            Operand::Special(sp) => special_is_divergent(sp),
                            Operand::Imm(_) => false,
                        };
                    }
                }
                div |= inst
                    .psrcs
                    .iter()
                    .any(|&p| divergent_vars.contains(Var::Pred(p).index()));
                if let Some((p, _)) = inst.guard {
                    div |= divergent_vars.contains(Var::Pred(p).index());
                }
                // Sync dependence: the defining block executes under a
                // divergent branch.
                let b = g.block_of(pc);
                div |= cd[b].iter().any(|&c| divergent_branches.contains(c));
                if div {
                    for v in dsts {
                        changed |= divergent_vars.insert(v.index());
                    }
                }
            }
            // Re-derive divergent branches from guard uniformity.
            for (b, blk) in g.blocks.iter().enumerate() {
                if blk.succs.len() < 2 {
                    continue;
                }
                let last = &insts[blk.end - 1];
                let div = last
                    .guard
                    .is_some_and(|(p, _)| divergent_vars.contains(Var::Pred(p).index()));
                if div {
                    changed |= divergent_branches.insert(b);
                }
            }
        }
        Uniformity {
            divergent_vars,
            divergent_branches,
        }
    }

    /// Is the variable divergent?
    pub fn is_divergent(&self, v: Var) -> bool {
        self.divergent_vars.contains(v.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, MemAddr, Pred, Reg, Space, Ty};

    #[test]
    fn tid_is_divergent_ctaid_uniform() {
        let insts = vec![
            Inst::mov(Reg(1), Special::TidX),
            Inst::mov(Reg(2), Special::CtaIdX),
            Inst::binary(Op::Add(Ty::S32), Reg(3), Reg(1), Reg(2)),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let u = Uniformity::solve(&g, &insts);
        assert!(u.is_divergent(Var::Reg(Reg(1))));
        assert!(!u.is_divergent(Var::Reg(Reg(2))));
        assert!(u.is_divergent(Var::Reg(Reg(3))), "taint propagates");
    }

    #[test]
    fn load_from_uniform_address_is_uniform() {
        let insts = vec![
            Inst::mov(Reg(1), Special::CtaIdX),
            Inst::ld(Space::Global, Reg(2), MemAddr::new(Reg(1), 0)),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let u = Uniformity::solve(&g, &insts);
        assert!(!u.is_divergent(Var::Reg(Reg(2))));
    }

    #[test]
    fn atomic_result_is_divergent() {
        let insts = vec![
            Inst::mov(Reg(1), Special::CtaIdX),
            Inst::atom(
                simt_isa::AtomOp::Add,
                Reg(2),
                MemAddr::new(Reg(1), 0),
                vec![Operand::Imm(1)],
            ),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let u = Uniformity::solve(&g, &insts);
        assert!(u.is_divergent(Var::Reg(Reg(2))));
    }

    #[test]
    fn sync_dependence_taints_defs_under_divergent_branch() {
        // 0: mov r1, %tid; 1: setp.eq p0, r1, 0; 2: @p0 bra 4;
        // 3: mov r2, 7 (under divergent branch); 4: exit
        let mut b = Inst::bra(4);
        b.guard = Some((Pred(0), true));
        let insts = vec![
            Inst::mov(Reg(1), Special::TidX),
            Inst::setp(CmpOp::Eq, Ty::S32, Pred(0), Reg(1), 0),
            b,
            Inst::mov(Reg(2), 7),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let u = Uniformity::solve(&g, &insts);
        assert!(u.is_divergent(Var::Pred(Pred(0))));
        assert!(u.is_divergent(Var::Reg(Reg(2))), "sync dependence");
        assert!(u.divergent_branches.contains(g.block_of(2)));
    }

    #[test]
    fn uniform_branch_stays_uniform() {
        let mut b = Inst::bra(4);
        b.guard = Some((Pred(0), true));
        let insts = vec![
            Inst::mov(Reg(1), Special::CtaIdX),
            Inst::setp(CmpOp::Eq, Ty::S32, Pred(0), Reg(1), 0),
            b,
            Inst::mov(Reg(2), 7),
            Inst::new(Op::Exit),
        ];
        let g = FlowGraph::build(&insts);
        let u = Uniformity::solve(&g, &insts);
        assert!(!u.is_divergent(Var::Reg(Reg(2))));
        assert!(u.divergent_branches.is_empty());
    }
}
