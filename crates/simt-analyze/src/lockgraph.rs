//! Lock-order graph and deadlock lints.
//!
//! Three checks built on the lockset analysis:
//!
//! 1. **Lock cycles.** Every acquire adds edges `held → acquired` for each
//!    lock in the may-held set at the acquire site. A cycle in that graph
//!    is a potential ABBA deadlock: one warp can hold A wanting B while
//!    another holds B wanting A. Barrier phases deliberately do not prune
//!    edges — barriers are CTA-scoped, so warps of *different* CTAs contend
//!    on global locks across phases. A self-edge is a re-acquire of a held
//!    spin lock, which deadlocks on its own.
//! 2. **Missing release.** A lock may-held at an `exit` escaped its
//!    critical section on some path; for a spin lock that means every later
//!    contender hangs.
//! 3. **SIMT-induced deadlock.** An acquire inside a natural loop with no
//!    release of that lock inside the loop, where the latch branch is
//!    divergent: on a reconvergence-stack machine the winning lane parks at
//!    the reconvergence point while its siblings spin for a lock only the
//!    parked lane can release (the paper's Fig. 1 hazard). Loops whose
//!    header is control-dependent on a divergent branch *outside* the loop
//!    are exempt — that is the lane-serialization idiom (each lane runs the
//!    loop alone, so no sibling can be parked holding the lock).

use crate::cfgx::FlowGraph;
use crate::lint::{Diagnostic, LintKind, Severity, Witness};
use crate::locks::LockAnalysis;
use crate::loops::natural_loops;
use crate::uniform::Uniformity;
use simt_isa::{Inst, Op};

/// Run the lock-order and deadlock lints.
pub fn lock_order_lints(
    g: &FlowGraph,
    insts: &[Inst],
    u: &Uniformity,
    la: &LockAnalysis,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(cycle_lints(g, la));
    out.extend(missing_release_lints(g, insts, la));
    out.extend(simt_deadlock_lints(g, insts, u, la));
    out
}

/// Lock-order graph construction + cycle detection.
fn cycle_lints(g: &FlowGraph, la: &LockAnalysis) -> Vec<Diagnostic> {
    let n = la.locks.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    // edge[a][b] = Some(acquire pc of b while a held), smallest pc wins.
    let mut edge: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];
    for a in &la.acquires {
        let Ok(to) = la.locks.binary_search(&a.lock) else {
            continue;
        };
        if !g.reachable.contains(g.block_of(a.pc)) {
            continue;
        }
        let held = la.held_at(g, a.pc);
        for from in held.iter() {
            let slot = &mut edge[from][to];
            match *slot {
                Some(pc) if pc <= a.pc => {}
                _ => *slot = Some(a.pc),
            }
        }
    }

    // Self-edges: re-acquiring a held spin lock never succeeds.
    for (l, row) in edge.iter().enumerate() {
        if let Some(pc) = row[l] {
            let name = la.locks[l].to_string();
            out.push(Diagnostic {
                severity: Severity::Error,
                kind: LintKind::LockCycle,
                pc,
                block: g.block_of(pc),
                var: None,
                message: format!(
                    "lock {name} may already be held when re-acquired here; \
                     a spin lock can never be taken twice"
                ),
                witness: Some(Witness::LockCycle {
                    cycle: vec![(name, pc)],
                }),
            });
        }
    }

    // Proper cycles: DFS from each lock in sorted order; report each cycle
    // once, keyed by its smallest member, walking smallest-successor-first
    // so the witness is deterministic.
    let mut reported: Vec<usize> = Vec::new();
    for start in 0..n {
        if reported.contains(&start) {
            continue;
        }
        if let Some(cycle) = find_cycle(&edge, start) {
            let min = *cycle.iter().min().expect("cycle is non-empty");
            if cycle.len() < 2 || reported.contains(&min) {
                continue;
            }
            reported.extend(&cycle);
            let steps: Vec<(String, usize)> = cycle
                .iter()
                .zip(cycle.iter().cycle().skip(1))
                .map(|(&from, &to)| {
                    let pc = edge[from][to].expect("cycle edge exists");
                    (la.locks[to].to_string(), pc)
                })
                .collect();
            let order: Vec<String> = cycle.iter().map(|&l| la.locks[l].to_string()).collect();
            let pc = steps.iter().map(|s| s.1).min().expect("non-empty");
            out.push(Diagnostic {
                severity: Severity::Error,
                kind: LintKind::LockCycle,
                pc,
                block: g.block_of(pc),
                var: None,
                message: format!(
                    "lock-order cycle {}: two warps taking these locks in \
                     opposite orders deadlock (ABBA)",
                    order.join(" -> ")
                ),
                witness: Some(Witness::LockCycle { cycle: steps }),
            });
        }
    }
    out
}

/// Find a cycle through `start` in the lock-order graph, as the list of
/// lock indices on the cycle (rotated so the smallest index is first).
fn find_cycle(edge: &[Vec<Option<usize>>], start: usize) -> Option<Vec<usize>> {
    let n = edge.len();
    let mut path = vec![start];
    let mut on_path = vec![false; n];
    on_path[start] = true;
    // Iterative DFS with an explicit next-successor cursor per path entry.
    let mut cursor = vec![0usize];
    while let Some(&node) = path.last() {
        let c = cursor.last_mut().expect("cursor tracks path");
        let mut advanced = false;
        while *c < n {
            let succ = *c;
            *c += 1;
            if edge[node][succ].is_none() || succ == node {
                continue;
            }
            if succ == start {
                return Some(path.clone());
            }
            if !on_path[succ] {
                on_path[succ] = true;
                path.push(succ);
                cursor.push(0);
                advanced = true;
                break;
            }
        }
        if !advanced && !path.is_empty() {
            let popped = path.pop().expect("non-empty");
            on_path[popped] = false;
            cursor.pop();
        }
    }
    None
}

/// Locks may-held at a kernel exit.
fn missing_release_lints(g: &FlowGraph, insts: &[Inst], la: &LockAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (pc, inst) in insts.iter().enumerate() {
        if inst.op != Op::Exit || !g.reachable.contains(g.block_of(pc)) {
            continue;
        }
        let held = la.held_at(g, pc);
        for l in held.iter() {
            let lock = la.locks[l];
            let acquire_pc = la
                .acquires
                .iter()
                .filter(|a| a.lock == lock)
                .map(|a| a.pc)
                .min()
                .unwrap_or(0);
            out.push(Diagnostic {
                severity: Severity::Error,
                kind: LintKind::MissingRelease,
                pc,
                block: g.block_of(pc),
                var: None,
                message: format!(
                    "lock {lock} acquired at pc {acquire_pc} may still be held \
                     at this exit; every later contender spins forever"
                ),
                witness: Some(Witness::HeldAtExit {
                    lock: lock.to_string(),
                    acquire_pc,
                    exit_pc: pc,
                    path: block_path(g, g.block_of(acquire_pc), g.block_of(pc)),
                }),
            });
        }
    }
    out
}

/// Entry pcs of the blocks on one shortest CFG path `from → to`.
fn block_path(g: &FlowGraph, from: usize, to: usize) -> Vec<usize> {
    let n = g.blocks.len();
    let mut prev = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::from([from]);
    prev[from] = from;
    while let Some(b) = queue.pop_front() {
        if b == to {
            break;
        }
        for &s in &g.blocks[b].succs {
            if prev[s] == usize::MAX {
                prev[s] = b;
                queue.push_back(s);
            }
        }
    }
    if prev[to] == usize::MAX {
        return Vec::new();
    }
    let mut path = vec![to];
    while *path.last().expect("non-empty") != from {
        path.push(prev[*path.last().expect("non-empty")]);
    }
    path.reverse();
    path.into_iter().map(|b| g.blocks[b].start).collect()
}

/// Acquire spin loops that cannot release from inside themselves.
fn simt_deadlock_lints(
    g: &FlowGraph,
    insts: &[Inst],
    u: &Uniformity,
    la: &LockAnalysis,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if la.acquires.is_empty() {
        return out;
    }
    let cd = g.control_deps();
    for l in natural_loops(g, insts) {
        if !u.divergent_branches.contains(l.latch) {
            continue;
        }
        // Lane-serialization exemption: the whole loop runs under a
        // divergent branch outside it, one lane at a time.
        if cd[l.header]
            .iter()
            .any(|&c| u.divergent_branches.contains(c) && !l.blocks.contains(c))
        {
            continue;
        }
        for a in &la.acquires {
            if !l.blocks.contains(g.block_of(a.pc)) {
                continue;
            }
            let released_inside = la
                .releases
                .iter()
                .any(|r| r.lock == a.lock && l.blocks.contains(g.block_of(r.pc)));
            if released_inside {
                continue;
            }
            let release_pc = la
                .releases
                .iter()
                .filter(|r| r.lock == a.lock)
                .map(|r| r.pc)
                .min();
            let where_release = match release_pc {
                Some(pc) => format!("the release at pc {pc} is outside the loop"),
                None => "no release of it exists".to_string(),
            };
            out.push(Diagnostic {
                severity: Severity::Error,
                kind: LintKind::SimtDeadlock,
                pc: a.pc,
                block: g.block_of(a.pc),
                var: None,
                message: format!(
                    "SIMT-induced deadlock: the divergent spin loop at pc {} \
                     acquires lock {} but {}; the winning lane parks at the \
                     reconvergence point while its siblings spin",
                    l.branch_pc, a.lock, where_release
                ),
                witness: Some(Witness::SpinHold {
                    loop_branch_pc: l.branch_pc,
                    acquire_pc: a.pc,
                    release_pc,
                }),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint;

    fn kinds_of(src: &str) -> Vec<LintKind> {
        lint(&simt_isa::asm::assemble(src).expect("test kernel assembles").insts)
            .into_iter()
            .map(|d| d.kind)
            .collect()
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let k = kinds_of(
            r#"
            .kernel nested
            .regs 10
                ld.param r1, [0]
                ld.param r2, [4]
                atom.global.cas r3, [r1], 0, 1 !acquire
                atom.global.cas r4, [r2], 0, 1 !acquire
                atom.global.exch r5, [r2], 0 !release
                atom.global.exch r6, [r1], 0 !release
                exit
            "#,
        );
        assert!(!k.contains(&LintKind::LockCycle), "{k:?}");
        assert!(!k.contains(&LintKind::MissingRelease), "{k:?}");
    }

    #[test]
    fn abba_cycle_detected() {
        let k = kinds_of(
            r#"
            .kernel abba
            .regs 12
                ld.param r1, [0]
                ld.param r2, [4]
                mov r7, %ctaid
                setp.eq.s32 p0, r7, 0
            @p0 bra OTHER
                atom.global.cas r3, [r1], 0, 1 !acquire
                atom.global.cas r4, [r2], 0, 1 !acquire
                atom.global.exch r5, [r2], 0 !release
                atom.global.exch r6, [r1], 0 !release
                exit
            OTHER:
                atom.global.cas r3, [r2], 0, 1 !acquire
                atom.global.cas r4, [r1], 0, 1 !acquire
                atom.global.exch r5, [r1], 0 !release
                atom.global.exch r6, [r2], 0 !release
                exit
            "#,
        );
        assert!(k.contains(&LintKind::LockCycle), "{k:?}");
    }

    #[test]
    fn dropped_release_reported_at_exit() {
        let k = kinds_of(
            r#"
            .kernel leak
            .regs 10
                ld.param r1, [0]
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.ne.s32 p1, r3, 0
            @p1 bra SPIN !sib
                exit
            "#,
        );
        assert!(k.contains(&LintKind::MissingRelease), "{k:?}");
        assert!(k.contains(&LintKind::SimtDeadlock), "{k:?}");
    }

    #[test]
    fn single_block_spin_with_outside_release_is_simt_deadlock() {
        let k = kinds_of(
            r#"
            .kernel fig1
            .regs 10
                ld.param r1, [0]
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.ne.s32 p1, r3, 0
            @p1 bra SPIN !sib
                atom.global.exch r5, [r1], 0 !release
                exit
            "#,
        );
        assert!(k.contains(&LintKind::SimtDeadlock), "{k:?}");
        assert!(!k.contains(&LintKind::MissingRelease), "released: {k:?}");
    }

    #[test]
    fn branch_to_reconvergence_spinlock_is_clean() {
        // The corpus idiom: release inside the retry loop.
        let k = kinds_of(
            r#"
            .kernel good
            .regs 10
                ld.param r1, [0]
                mov r9, 0
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.eq.s32 p1, r3, 0
            @!p1 bra TEST
                atom.global.exch r5, [r1], 0 !release
                mov r9, 1
            TEST:
                setp.eq.s32 p2, r9, 0
            @p2 bra SPIN !sib
                exit
            "#,
        );
        assert!(!k.contains(&LintKind::SimtDeadlock), "{k:?}");
        assert!(!k.contains(&LintKind::MissingRelease), "{k:?}");
        assert!(!k.contains(&LintKind::LockCycle), "{k:?}");
    }

    #[test]
    fn lane_serialized_global_lock_is_exempt() {
        // The paper's TSP idiom: the spin loop runs under a divergent
        // lane-serialization branch, so the parked lane cannot hold the
        // lock. The release is outside the loop but inside the lane guard.
        let k = kinds_of(
            r#"
            .kernel lane
            .regs 12
                ld.param r1, [0]
                mov r6, 0
            LANE:
                mov r7, %laneid
                setp.ne.s32 p5, r7, r6
            @p5 bra NEXT
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.ne.s32 p1, r3, 0
            @p1 bra SPIN !sib
                atom.global.exch r5, [r1], 0 !release
            NEXT:
                add r6, r6, 1
                setp.lt.s32 p6, r6, 32
            @p6 bra LANE
                exit
            "#,
        );
        assert!(!k.contains(&LintKind::SimtDeadlock), "{k:?}");
    }
}
