//! Robustness of CFG construction and post-dominator analysis on hostile
//! shapes: irreducible graphs, infinite loops with no exit, single-block
//! kernels, and an exhaustive enumeration of small programs. `Cfg::build`
//! and `ipdom_blocks` must stay total (no panics, no missing entries), and
//! every branch's reconvergence PC must be a real block start or the
//! `RECONV_EXIT` sentinel.

use simt_isa::cfg::Cfg;
use simt_isa::{Inst, Op, Pred, RECONV_EXIT};

fn guarded_bra(t: usize) -> Inst {
    let mut b = Inst::bra(t);
    b.guard = Some((Pred(0), true));
    b
}

/// Check the invariants every CFG must satisfy, whatever the input shape.
fn check_total(insts: &[Inst]) {
    let cfg = Cfg::build(insts);
    let n_blocks = cfg.blocks.len();
    let ipdom = cfg.ipdom_blocks();
    assert_eq!(ipdom.len(), n_blocks, "ipdom entry per block");
    for d in ipdom.iter().flatten() {
        assert!(*d < n_blocks, "ipdom points at a real block");
    }
    let starts: Vec<usize> = cfg.blocks.iter().map(|b| b.start).collect();
    for (bid, b) in cfg.blocks.iter().enumerate() {
        assert!(b.start < b.end && b.end <= insts.len(), "well-formed range");
        for pc in b.start..b.end {
            assert_eq!(cfg.block_of(pc), bid, "block_of is consistent");
        }
        for &s in &b.succs {
            assert!(s < n_blocks, "successor in range");
        }
    }
    let reconv = cfg.reconv_points(insts);
    assert_eq!(reconv.len(), insts.len());
    for (pc, inst) in insts.iter().enumerate() {
        if inst.op.is_branch() {
            assert!(
                reconv[pc] == RECONV_EXIT || starts.contains(&reconv[pc]),
                "reconvergence PC {} of branch {pc} is a block start",
                reconv[pc]
            );
        }
    }
}

#[test]
fn irreducible_two_entry_loop() {
    // 0: @p0 bra 3     ; jump into the middle of the "loop"
    // 1: nop           ; loop entry A
    // 2: @p0 bra 4
    // 3: bra 1         ; loop entry B -> A (second entry edge)
    // 4: exit
    let insts = vec![
        guarded_bra(3),
        Inst::new(Op::Nop),
        guarded_bra(4),
        Inst::bra(1),
        Inst::new(Op::Exit),
    ];
    check_total(&insts);
}

#[test]
fn infinite_loop_with_no_exit() {
    // 0: nop
    // 1: bra 0         ; no path to any exit
    let insts = vec![Inst::new(Op::Nop), Inst::bra(0)];
    check_total(&insts);
    let cfg = Cfg::build(&insts);
    // Nothing post-dominates a non-terminating program except the virtual
    // exit, which reconv_points reports as the sentinel.
    assert_eq!(cfg.reconv_points(&insts)[1], RECONV_EXIT);
}

#[test]
fn self_loop_single_instruction() {
    let insts = vec![Inst::bra(0)];
    check_total(&insts);
}

#[test]
fn single_block_kernel() {
    let insts = vec![Inst::new(Op::Nop), Inst::new(Op::Exit)];
    check_total(&insts);
    assert_eq!(Cfg::build(&insts).blocks.len(), 1);
}

#[test]
fn empty_program() {
    let insts: Vec<Inst> = Vec::new();
    let cfg = Cfg::build(&insts);
    assert!(cfg.blocks.is_empty());
    assert!(cfg.ipdom_blocks().is_empty());
    assert!(cfg.reconv_points(&insts).is_empty());
}

#[test]
fn guarded_branch_past_the_end_drops_the_edge() {
    // Cfg::build tolerates an out-of-range target by dropping the edge
    // (Kernel::from_insts rejects it long before; simt-analyze's lints
    // rely on build staying total).
    let insts = vec![guarded_bra(9), Inst::new(Op::Exit)];
    check_total(&insts);
    let cfg = Cfg::build(&insts);
    assert_eq!(cfg.blocks[0].succs, vec![1], "only the fall-through edge");
}

/// Exhaustively enumerate every program of length up to 4 over
/// {nop, exit, bra t, @p0 bra t | t in 0..n}: all 11k+ shapes — including
/// irreducible graphs, unreachable code, and infinite loops — must keep
/// the analyses total.
#[test]
fn exhaustive_small_programs() {
    for n in 1..=4usize {
        let choices = 2 + 2 * n;
        let program_count = choices.pow(n as u32);
        for code in 0..program_count {
            let mut c = code;
            let insts: Vec<Inst> = (0..n)
                .map(|_| {
                    let k = c % choices;
                    c /= choices;
                    match k {
                        0 => Inst::new(Op::Nop),
                        1 => Inst::new(Op::Exit),
                        k if k < 2 + n => Inst::bra(k - 2),
                        k => guarded_bra(k - 2 - n),
                    }
                })
                .collect();
            check_total(&insts);
        }
    }
}

/// Deterministically sampled longer programs (no RNG seed drift: a fixed
/// LCG), with targets occasionally out of range.
#[test]
fn sampled_larger_programs() {
    let mut state: u64 = 0x243F_6A88_85A3_08D3; // fixed seed
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..2000 {
        let n = 5 + next() % 12;
        let insts: Vec<Inst> = (0..n)
            .map(|_| match next() % 4 {
                0 => Inst::new(Op::Nop),
                1 => Inst::new(Op::Exit),
                2 => Inst::bra(next() % (n + 2)), // may be out of range
                _ => guarded_bra(next() % (n + 2)),
            })
            .collect();
        check_total(&insts);
    }
}
