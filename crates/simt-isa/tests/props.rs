//! Property-based tests for the ISA crate: assembler/disassembler round
//! trips and CFG invariants over arbitrary (structured) programs.

use proptest::prelude::*;
use simt_isa::asm::assemble;
use simt_isa::builder::KernelBuilder;
use simt_isa::{CmpOp, Inst, Op, Pred, Reg, Ty, RECONV_EXIT};

/// Generate a structured random kernel: a sequence of blocks, each with a
/// few ALU ops and ending in a (possibly guarded) branch to a random label
/// or a fall-through; always ends with exit.
fn arb_kernel() -> impl Strategy<Value = simt_isa::Kernel> {
    // (block count, per-block (op choices, branch target choice, guarded))
    (2usize..8)
        .prop_flat_map(|nblocks| {
            let block = (
                proptest::collection::vec(0u8..5, 1..4),
                0usize..nblocks,
                any::<bool>(),
            );
            proptest::collection::vec(block, nblocks)
        })
        .prop_map(|blocks| {
            let mut b = KernelBuilder::new("prop");
            b.regs(8);
            let n = blocks.len();
            for (i, (ops, target, guarded)) in blocks.iter().enumerate() {
                b.label(format!("L{i}"));
                for (j, &op) in ops.iter().enumerate() {
                    let dst = Reg((j % 4) as u8);
                    let inst = match op {
                        0 => Inst::mov(dst, 1),
                        1 => Inst::binary(Op::Add(Ty::S32), dst, Reg(1), 2),
                        2 => Inst::binary(Op::Xor, dst, Reg(2), Reg(3)),
                        3 => Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 5),
                        _ => Inst::binary(Op::Shl, dst, Reg(0), 1),
                    };
                    b.push(inst);
                }
                // Branch to a random block; guarded branches fall through.
                let r = b.bra_to(format!("L{}", target % n));
                if *guarded {
                    r.guard(Pred(0), true);
                }
            }
            b.label(format!("L{n}"));
            b.push(Inst::new(Op::Exit));
            // Note: blocks may branch anywhere, including skipping the
            // exit; the final exit keeps validation happy.
            b.build().expect("structured kernel builds")
        })
}

proptest! {
    /// Disassembling and reassembling preserves the instruction stream.
    #[test]
    fn disasm_reassembles_identically(k in arb_kernel()) {
        let text = k.disasm();
        let k2 = assemble(&text).expect("disassembly reassembles");
        prop_assert_eq!(k.insts.len(), k2.insts.len());
        for (a, b) in k.insts.iter().zip(&k2.insts) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(&a.srcs, &b.srcs);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.pdst, b.pdst);
            prop_assert_eq!(a.target, b.target);
            prop_assert_eq!(a.guard, b.guard);
            prop_assert_eq!(a.ann, b.ann);
        }
    }

    /// Reconvergence points are strictly after their branch for forward
    /// control flow, or the exit sentinel; and they are block leaders.
    #[test]
    fn reconvergence_points_are_valid_pcs(k in arb_kernel()) {
        for (pc, inst) in k.insts.iter().enumerate() {
            let r = k.reconv[pc];
            if inst.op.is_branch() {
                prop_assert!(r == RECONV_EXIT || r < k.insts.len());
                if r != RECONV_EXIT {
                    // A reconvergence point post-dominates: executing from
                    // the branch the warp must be able to reach it, so it
                    // can never be the branch itself.
                    prop_assert_ne!(r, pc);
                }
            } else {
                prop_assert_eq!(r, RECONV_EXIT);
            }
        }
    }

    /// `backward_branches` finds exactly the branches with target <= pc.
    #[test]
    fn backward_branch_listing_is_exact(k in arb_kernel()) {
        let expect: Vec<usize> = k
            .insts
            .iter()
            .enumerate()
            .filter(|(pc, i)| i.op.is_branch() && i.target.unwrap() <= *pc)
            .map(|(pc, _)| pc)
            .collect();
        prop_assert_eq!(k.backward_branches(), expect);
    }

    /// The assembler rejects garbage without panicking.
    #[test]
    fn assembler_never_panics(text in "\\PC{0,200}") {
        let _ = assemble(&text);
    }

    /// Immediate parsing round-trips through Display for plain integers.
    #[test]
    fn imm_display_roundtrip(v in -4096i32..=4096) {
        let src = format!(".kernel t\n.regs 4\n mov r1, {v}\n exit\n");
        let k = assemble(&src).expect("assembles");
        prop_assert_eq!(k.insts[0].srcs[0], simt_isa::Operand::imm_i32(v));
        let text = k.disasm();
        let k2 = assemble(&text).expect("reassembles");
        prop_assert_eq!(k2.insts[0].srcs[0], simt_isa::Operand::imm_i32(v));
    }
}
