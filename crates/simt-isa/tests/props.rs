//! Property-style tests for the ISA crate: assembler/disassembler round
//! trips and CFG invariants over randomly generated (structured) programs.
//!
//! Uses a local deterministic PRNG rather than an external property-test
//! framework so the suite builds and runs fully offline.

use simt_isa::asm::assemble;
use simt_isa::builder::KernelBuilder;
use simt_isa::{CmpOp, Inst, Op, Pred, Reg, Ty, RECONV_EXIT};

/// Deterministic splitmix64 generator for test-case construction.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Generate a structured random kernel: a sequence of blocks, each with a
/// few ALU ops and ending in a (possibly guarded) branch to a random label
/// or a fall-through; always ends with exit.
fn arb_kernel(rng: &mut Rng) -> simt_isa::Kernel {
    let nblocks = rng.range(2, 8);
    let mut b = KernelBuilder::new("prop");
    b.regs(8);
    for i in 0..nblocks {
        b.label(format!("L{i}"));
        let nops = rng.range(1, 4);
        for j in 0..nops {
            let dst = Reg((j % 4) as u8);
            let inst = match rng.range(0, 5) {
                0 => Inst::mov(dst, 1),
                1 => Inst::binary(Op::Add(Ty::S32), dst, Reg(1), 2),
                2 => Inst::binary(Op::Xor, dst, Reg(2), Reg(3)),
                3 => Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 5),
                _ => Inst::binary(Op::Shl, dst, Reg(0), 1),
            };
            b.push(inst);
        }
        // Branch to a random block; guarded branches fall through.
        let target = rng.range(0, nblocks);
        let r = b.bra_to(format!("L{target}"));
        if rng.flag() {
            r.guard(Pred(0), true);
        }
    }
    b.label(format!("L{nblocks}"));
    b.push(Inst::new(Op::Exit));
    // Note: blocks may branch anywhere, including skipping the exit; the
    // final exit keeps validation happy.
    b.build().expect("structured kernel builds")
}

/// Disassembling and reassembling preserves the instruction stream.
#[test]
fn disasm_reassembles_identically() {
    for seed in 0..64 {
        let k = arb_kernel(&mut Rng::new(seed));
        let text = k.disasm();
        let k2 = assemble(&text).expect("disassembly reassembles");
        assert_eq!(k.insts.len(), k2.insts.len(), "seed {seed}");
        for (a, b) in k.insts.iter().zip(&k2.insts) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.srcs, b.srcs);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.pdst, b.pdst);
            assert_eq!(a.target, b.target);
            assert_eq!(a.guard, b.guard);
            assert_eq!(a.ann, b.ann);
        }
    }
}

/// Reconvergence points are strictly after their branch for forward
/// control flow, or the exit sentinel; and they are block leaders.
#[test]
fn reconvergence_points_are_valid_pcs() {
    for seed in 0..64 {
        let k = arb_kernel(&mut Rng::new(seed));
        for (pc, inst) in k.insts.iter().enumerate() {
            let r = k.reconv[pc];
            if inst.op.is_branch() {
                assert!(r == RECONV_EXIT || r < k.insts.len(), "seed {seed} pc {pc}");
                if r != RECONV_EXIT {
                    // A reconvergence point post-dominates: executing from
                    // the branch the warp must be able to reach it, so it
                    // can never be the branch itself.
                    assert_ne!(r, pc, "seed {seed}");
                }
            } else {
                assert_eq!(r, RECONV_EXIT, "seed {seed} pc {pc}");
            }
        }
    }
}

/// `backward_branches` finds exactly the branches with target <= pc.
#[test]
fn backward_branch_listing_is_exact() {
    for seed in 0..64 {
        let k = arb_kernel(&mut Rng::new(seed));
        let expect: Vec<usize> = k
            .insts
            .iter()
            .enumerate()
            .filter(|(pc, i)| i.op.is_branch() && i.target.unwrap() <= *pc)
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(k.backward_branches(), expect, "seed {seed}");
    }
}

/// The assembler rejects garbage without panicking.
#[test]
fn assembler_never_panics() {
    // A character pool biased toward assembler syntax so fuzz inputs reach
    // deep into the parser, plus some non-ASCII noise.
    const POOL: &[char] = &[
        'a', 'b', 'k', 'r', 'x', '0', '1', '9', ' ', '\n', '\t', ',', '[', ']', '.', '%', '@',
        '!', '-', '_', ':', ';', '#', 'µ', 'λ', '□',
    ];
    for seed in 0..256 {
        let mut rng = Rng::new(seed);
        let len = rng.range(0, 201);
        let text: String = (0..len).map(|_| POOL[rng.range(0, POOL.len())]).collect();
        let _ = assemble(&text);
    }
}

/// Immediate parsing round-trips through Display for plain integers.
#[test]
fn imm_display_roundtrip() {
    for v in (-4096i32..=4096).step_by(17) {
        let src = format!(".kernel t\n.regs 4\n mov r1, {v}\n exit\n");
        let k = assemble(&src).expect("assembles");
        assert_eq!(k.insts[0].srcs[0], simt_isa::Operand::imm_i32(v));
        let text = k.disasm();
        let k2 = assemble(&text).expect("reassembles");
        assert_eq!(k2.insts[0].srcs[0], simt_isa::Operand::imm_i32(v));
    }
    // Boundary values regardless of step alignment.
    for v in [-4096, -1, 0, 1, 4096] {
        let src = format!(".kernel t\n.regs 4\n mov r1, {v}\n exit\n");
        let k = assemble(&src).expect("assembles");
        assert_eq!(k.insts[0].srcs[0], simt_isa::Operand::imm_i32(v));
    }
}
