//! Assembled kernels.

use crate::cfg::Cfg;
use crate::{Inst, Op, Pred, INST_BYTES};
use std::collections::HashMap;
use std::fmt;

/// Reconvergence-PC sentinel meaning "reconverge only at thread exit".
pub const RECONV_EXIT: usize = usize::MAX;

/// Errors produced by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A register index is out of the declared range.
    RegOutOfRange { pc: usize, reg: u8, regs: u8 },
    /// A predicate index is out of range.
    PredOutOfRange { pc: usize, pred: u8 },
    /// A branch target does not point inside the kernel.
    BadTarget { pc: usize, target: usize },
    /// The kernel contains no `exit` instruction.
    NoExit,
    /// The kernel is empty.
    Empty,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::RegOutOfRange { pc, reg, regs } => {
                write!(f, "pc {pc}: register r{reg} out of declared range {regs}")
            }
            KernelError::PredOutOfRange { pc, pred } => {
                write!(f, "pc {pc}: predicate p{pred} out of range")
            }
            KernelError::BadTarget { pc, target } => {
                write!(f, "pc {pc}: branch target {target} outside kernel")
            }
            KernelError::NoExit => write!(f, "kernel has no exit instruction"),
            KernelError::Empty => write!(f, "kernel is empty"),
        }
    }
}

impl std::error::Error for KernelError {}

/// An assembled, validated kernel ready to launch on the simulator.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name from the `.kernel` directive.
    pub name: String,
    /// The instruction stream; the program counter is an index here.
    pub insts: Vec<Inst>,
    /// Label name → instruction index.
    pub labels: HashMap<String, usize>,
    /// Per-thread general registers required (`.regs`).
    pub num_regs: u8,
    /// Number of 32-bit kernel parameters (`.params` or inferred).
    pub num_params: u32,
    /// Shared-memory words per CTA (`.shared`).
    pub shared_words: u32,
    /// Per-instruction reconvergence PC: for branches, the IPDOM start;
    /// [`RECONV_EXIT`] otherwise.
    pub reconv: Vec<usize>,
    /// Ground-truth spin-inducing branches (from `!sib` annotations): the
    /// oracle that Table I's detection-accuracy metrics compare DDOS against.
    pub true_sibs: Vec<usize>,
}

impl Kernel {
    /// Assemble a kernel from parts: resolves nothing (targets must already
    /// be instruction indices), computes reconvergence points, validates.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError`] found by [`Kernel::validate`].
    pub fn from_insts(
        name: impl Into<String>,
        insts: Vec<Inst>,
        labels: HashMap<String, usize>,
        num_regs: u8,
        num_params: u32,
        shared_words: u32,
    ) -> Result<Kernel, KernelError> {
        // Branch targets must be validated *before* CFG construction:
        // `Cfg::build` tolerates out-of-range targets by dropping the edge
        // (so the linter can analyze invalid input), which would silently
        // turn the branch into a fall-through here.
        for (pc, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.target {
                if t >= insts.len() {
                    return Err(KernelError::BadTarget { pc, target: t });
                }
            }
        }
        let cfg = Cfg::build(&insts);
        let reconv = cfg.reconv_points(&insts);
        let true_sibs = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.ann.sib)
            .map(|(pc, _)| pc)
            .collect();
        let k = Kernel {
            name: name.into(),
            insts,
            labels,
            num_regs,
            num_params,
            shared_words,
            reconv,
            true_sibs,
        };
        k.validate()?;
        Ok(k)
    }

    /// Check internal consistency (register ranges, branch targets, an exit).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.insts.is_empty() {
            return Err(KernelError::Empty);
        }
        let mut has_exit = false;
        for (pc, inst) in self.insts.iter().enumerate() {
            if inst.op == Op::Exit {
                has_exit = true;
            }
            for r in inst.src_regs().into_iter().chain(inst.dst_reg()) {
                if r.0 >= self.num_regs {
                    return Err(KernelError::RegOutOfRange {
                        pc,
                        reg: r.0,
                        regs: self.num_regs,
                    });
                }
            }
            let preds = inst
                .pdst
                .into_iter()
                .chain(inst.psrcs.iter().copied())
                .chain(inst.guard.map(|(p, _)| p));
            for p in preds {
                if p.0 >= Pred::COUNT {
                    return Err(KernelError::PredOutOfRange { pc, pred: p.0 });
                }
            }
            if let Some(t) = inst.target {
                if t >= self.insts.len() {
                    return Err(KernelError::BadTarget { pc, target: t });
                }
            }
        }
        if !has_exit {
            return Err(KernelError::NoExit);
        }
        Ok(())
    }

    /// Byte program counter of an instruction index, as hardware (and DDOS's
    /// path hashing) sees it.
    pub fn byte_pc(&self, pc: usize) -> u64 {
        pc as u64 * INST_BYTES
    }

    /// All backward branches — the candidate set DDOS classifies.
    pub fn backward_branches(&self) -> Vec<usize> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(pc, i)| i.is_backward_branch(*pc))
            .map(|(pc, _)| pc)
            .collect()
    }

    /// Static instruction count (used by CAWA's initial `nInst` estimate).
    pub fn static_len(&self) -> usize {
        self.insts.len()
    }

    /// Render a human-readable disassembly with synthesized labels.
    pub fn disasm(&self) -> String {
        use std::collections::BTreeSet;
        let targets: BTreeSet<usize> = self.insts.iter().filter_map(|i| i.target).collect();
        let mut out = format!(
            ".kernel {}\n.regs {}\n.params {}\n.shared {}\n",
            self.name, self.num_regs, self.num_params, self.shared_words
        );
        for (pc, inst) in self.insts.iter().enumerate() {
            if targets.contains(&pc) {
                out.push_str(&format!("L{pc}:\n"));
            }
            let mut line = format!("    {inst}");
            if let Some(t) = inst.target {
                line = line.replace(&format!("@{t}"), &format!("L{t}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Reg, Ty};

    fn tiny() -> Vec<Inst> {
        vec![Inst::mov(Reg(0), 1), Inst::new(Op::Exit)]
    }

    #[test]
    fn from_insts_validates() {
        let k = Kernel::from_insts("t", tiny(), HashMap::new(), 4, 0, 0).unwrap();
        assert_eq!(k.static_len(), 2);
        assert_eq!(k.byte_pc(1), 8);
    }

    #[test]
    fn rejects_reg_out_of_range() {
        let insts = vec![Inst::mov(Reg(9), 1), Inst::new(Op::Exit)];
        let err = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap_err();
        assert!(matches!(err, KernelError::RegOutOfRange { reg: 9, .. }));
    }

    #[test]
    fn rejects_missing_exit() {
        let insts = vec![Inst::mov(Reg(0), 1)];
        let err = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap_err();
        assert_eq!(err, KernelError::NoExit);
    }

    #[test]
    fn rejects_empty() {
        let err = Kernel::from_insts("t", vec![], HashMap::new(), 4, 0, 0).unwrap_err();
        assert_eq!(err, KernelError::Empty);
    }

    #[test]
    fn rejects_bad_target() {
        let insts = vec![Inst::bra(17), Inst::new(Op::Exit)];
        let err = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap_err();
        assert!(matches!(err, KernelError::BadTarget { target: 17, .. }));
    }

    #[test]
    fn backward_branch_and_sib_listing() {
        // 0: nop
        // 1: setp
        // 2: @p0 bra 0 (!sib)
        // 3: exit
        let mut back = Inst::bra(0);
        back.guard = Some((Pred(0), true));
        back.ann.sib = true;
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 3),
            back,
            Inst::new(Op::Exit),
        ];
        let k = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap();
        assert_eq!(k.backward_branches(), vec![2]);
        assert_eq!(k.true_sibs, vec![2]);
    }

    #[test]
    fn disasm_roundtrip_smoke() {
        let mut back = Inst::bra(0);
        back.guard = Some((Pred(0), true));
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 3),
            back,
            Inst::new(Op::Exit),
        ];
        let k = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap();
        let d = k.disasm();
        assert!(d.contains("L0:"), "{d}");
        assert!(d.contains("bra L0"), "{d}");
    }
}
