//! Assembled kernels.

use crate::cfg::Cfg;
use crate::{Inst, Op, Pred, INST_BYTES};
use std::collections::HashMap;
use std::fmt;

/// Reconvergence-PC sentinel meaning "reconverge only at thread exit".
pub const RECONV_EXIT: usize = usize::MAX;

/// Errors produced by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A register index is out of the declared range.
    RegOutOfRange { pc: usize, reg: u8, regs: u8 },
    /// A predicate index is out of range.
    PredOutOfRange { pc: usize, pred: u8 },
    /// A branch target does not point inside the kernel.
    BadTarget { pc: usize, target: usize },
    /// The kernel contains no `exit` instruction.
    NoExit,
    /// The kernel is empty.
    Empty,
    /// An instruction is missing an operand its opcode requires (a
    /// destination, address, branch target, or source). The assembler
    /// never emits such instructions; this guards kernels built
    /// programmatically (the builder API, fuzzers, service clients) so
    /// the execution pipelines can rely on operand presence without
    /// panicking.
    MalformedOperands {
        /// Instruction index.
        pc: usize,
        /// What is missing.
        what: &'static str,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::RegOutOfRange { pc, reg, regs } => {
                write!(f, "pc {pc}: register r{reg} out of declared range {regs}")
            }
            KernelError::PredOutOfRange { pc, pred } => {
                write!(f, "pc {pc}: predicate p{pred} out of range")
            }
            KernelError::BadTarget { pc, target } => {
                write!(f, "pc {pc}: branch target {target} outside kernel")
            }
            KernelError::NoExit => write!(f, "kernel has no exit instruction"),
            KernelError::Empty => write!(f, "kernel is empty"),
            KernelError::MalformedOperands { pc, what } => {
                write!(f, "pc {pc}: {what}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// An assembled, validated kernel ready to launch on the simulator.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name from the `.kernel` directive.
    pub name: String,
    /// The instruction stream; the program counter is an index here.
    pub insts: Vec<Inst>,
    /// Label name → instruction index.
    pub labels: HashMap<String, usize>,
    /// Per-thread general registers required (`.regs`).
    pub num_regs: u8,
    /// Number of 32-bit kernel parameters (`.params` or inferred).
    pub num_params: u32,
    /// Shared-memory words per CTA (`.shared`).
    pub shared_words: u32,
    /// Per-instruction reconvergence PC: for branches, the IPDOM start;
    /// [`RECONV_EXIT`] otherwise.
    pub reconv: Vec<usize>,
    /// Ground-truth spin-inducing branches (from `!sib` annotations): the
    /// oracle that Table I's detection-accuracy metrics compare DDOS against.
    pub true_sibs: Vec<usize>,
}

impl Kernel {
    /// Assemble a kernel from parts: resolves nothing (targets must already
    /// be instruction indices), computes reconvergence points, validates.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError`] found by [`Kernel::validate`].
    pub fn from_insts(
        name: impl Into<String>,
        insts: Vec<Inst>,
        labels: HashMap<String, usize>,
        num_regs: u8,
        num_params: u32,
        shared_words: u32,
    ) -> Result<Kernel, KernelError> {
        // Branch targets must be validated *before* CFG construction:
        // `Cfg::build` tolerates out-of-range targets by dropping the edge
        // (so the linter can analyze invalid input), which would silently
        // turn the branch into a fall-through here.
        // Operand shape likewise: `Cfg::build` expects every branch to carry
        // a resolved target.
        for (pc, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.target {
                if t >= insts.len() {
                    return Err(KernelError::BadTarget { pc, target: t });
                }
            }
            check_operand_shape(pc, inst)?;
        }
        let cfg = Cfg::build(&insts);
        let reconv = cfg.reconv_points(&insts);
        let true_sibs = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.ann.sib)
            .map(|(pc, _)| pc)
            .collect();
        let k = Kernel {
            name: name.into(),
            insts,
            labels,
            num_regs,
            num_params,
            shared_words,
            reconv,
            true_sibs,
        };
        k.validate()?;
        Ok(k)
    }

    /// Check internal consistency (register ranges, branch targets, an exit).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.insts.is_empty() {
            return Err(KernelError::Empty);
        }
        let mut has_exit = false;
        for (pc, inst) in self.insts.iter().enumerate() {
            if inst.op == Op::Exit {
                has_exit = true;
            }
            for r in inst.src_regs().into_iter().chain(inst.dst_reg()) {
                if r.0 >= self.num_regs {
                    return Err(KernelError::RegOutOfRange {
                        pc,
                        reg: r.0,
                        regs: self.num_regs,
                    });
                }
            }
            let preds = inst
                .pdst
                .into_iter()
                .chain(inst.psrcs.iter().copied())
                .chain(inst.guard.map(|(p, _)| p));
            for p in preds {
                if p.0 >= Pred::COUNT {
                    return Err(KernelError::PredOutOfRange { pc, pred: p.0 });
                }
            }
            if let Some(t) = inst.target {
                if t >= self.insts.len() {
                    return Err(KernelError::BadTarget { pc, target: t });
                }
            }
            check_operand_shape(pc, inst)?;
        }
        if !has_exit {
            return Err(KernelError::NoExit);
        }
        Ok(())
    }

    /// Byte program counter of an instruction index, as hardware (and DDOS's
    /// path hashing) sees it.
    pub fn byte_pc(&self, pc: usize) -> u64 {
        pc as u64 * INST_BYTES
    }

    /// All backward branches — the candidate set DDOS classifies.
    pub fn backward_branches(&self) -> Vec<usize> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(pc, i)| i.is_backward_branch(*pc))
            .map(|(pc, _)| pc)
            .collect()
    }

    /// Static instruction count (used by CAWA's initial `nInst` estimate).
    pub fn static_len(&self) -> usize {
        self.insts.len()
    }

    /// Render a human-readable disassembly with synthesized labels.
    pub fn disasm(&self) -> String {
        use std::collections::BTreeSet;
        let targets: BTreeSet<usize> = self.insts.iter().filter_map(|i| i.target).collect();
        let mut out = format!(
            ".kernel {}\n.regs {}\n.params {}\n.shared {}\n",
            self.name, self.num_regs, self.num_params, self.shared_words
        );
        for (pc, inst) in self.insts.iter().enumerate() {
            if targets.contains(&pc) {
                out.push_str(&format!("L{pc}:\n"));
            }
            let mut line = format!("    {inst}");
            if let Some(t) = inst.target {
                line = line.replace(&format!("@{t}"), &format!("L{t}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Operand-shape check: every opcode's required operands (destination,
/// address, branch target, source/predicate counts) must be present.
///
/// The execution pipelines (`simt-core`'s SM and `simt-ref`'s interpreter)
/// rely on these invariants with `expect`/indexing; enforcing them here —
/// on the [`Kernel::validate`] path that every launch runs through — means
/// a malformed kernel built through the programmatic APIs surfaces as a
/// typed [`KernelError`] instead of panicking a simulation thread.
fn check_operand_shape(pc: usize, inst: &Inst) -> Result<(), KernelError> {
    use Op::*;
    let err = |what: &'static str| Err(KernelError::MalformedOperands { pc, what });
    let need_dst = |what: &'static str| {
        if inst.dst.is_none() {
            return Err(KernelError::MalformedOperands { pc, what });
        }
        Ok(())
    };
    let need_srcs = |n: usize, what: &'static str| {
        if inst.srcs.len() < n {
            return Err(KernelError::MalformedOperands { pc, what });
        }
        Ok(())
    };
    let need_pdst = |what: &'static str| {
        if inst.pdst.is_none() {
            return Err(KernelError::MalformedOperands { pc, what });
        }
        Ok(())
    };
    let need_psrcs = |n: usize, what: &'static str| {
        if inst.psrcs.len() < n {
            return Err(KernelError::MalformedOperands { pc, what });
        }
        Ok(())
    };
    match inst.op {
        Mov | Not | Neg(_) | Sqrt | CvtI2F | CvtF2I => {
            need_dst("unary ALU op missing destination register")?;
            need_srcs(1, "unary ALU op missing its source operand")?;
        }
        Add(_) | Sub(_) | Mul(_) | Div(_) | Rem(_) | Min(_) | Max(_) | And | Or | Xor
        | Shl | Shr | Sra => {
            need_dst("binary ALU op missing destination register")?;
            need_srcs(2, "binary ALU op missing a source operand")?;
        }
        Mad(_) => {
            need_dst("mad missing destination register")?;
            need_srcs(3, "mad requires three source operands")?;
        }
        Selp => {
            need_dst("selp missing destination register")?;
            need_srcs(2, "selp requires two source operands")?;
            need_psrcs(1, "selp missing its select predicate")?;
        }
        Setp(..) => {
            need_pdst("setp missing destination predicate")?;
            need_srcs(2, "setp requires two source operands")?;
        }
        PAnd | POr => {
            need_pdst("predicate op missing destination predicate")?;
            need_psrcs(2, "binary predicate op missing a source predicate")?;
        }
        PNot => {
            need_pdst("pnot missing destination predicate")?;
            need_psrcs(1, "pnot missing its source predicate")?;
        }
        Bra => {
            if inst.target.is_none() {
                return err("branch has no resolved target");
            }
        }
        Ld(..) => {
            need_dst("load missing destination register")?;
            if inst.addr.is_none() {
                return err("load missing its address operand");
            }
        }
        St(..) => {
            if inst.addr.is_none() {
                return err("store missing its address operand");
            }
            need_srcs(1, "store missing its value operand")?;
        }
        Atom(a) => {
            need_dst("atomic missing destination register")?;
            if inst.addr.is_none() {
                return err("atomic missing its address operand");
            }
            if inst.srcs.len() < a.src_count() {
                return err("atomic missing a source operand");
            }
        }
        Clock => need_dst("clock missing destination register")?,
        Bar | Membar | Exit | Nop => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Reg, Ty};

    fn tiny() -> Vec<Inst> {
        vec![Inst::mov(Reg(0), 1), Inst::new(Op::Exit)]
    }

    #[test]
    fn from_insts_validates() {
        let k = Kernel::from_insts("t", tiny(), HashMap::new(), 4, 0, 0).unwrap();
        assert_eq!(k.static_len(), 2);
        assert_eq!(k.byte_pc(1), 8);
    }

    #[test]
    fn rejects_reg_out_of_range() {
        let insts = vec![Inst::mov(Reg(9), 1), Inst::new(Op::Exit)];
        let err = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap_err();
        assert!(matches!(err, KernelError::RegOutOfRange { reg: 9, .. }));
    }

    #[test]
    fn rejects_missing_exit() {
        let insts = vec![Inst::mov(Reg(0), 1)];
        let err = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap_err();
        assert_eq!(err, KernelError::NoExit);
    }

    #[test]
    fn rejects_empty() {
        let err = Kernel::from_insts("t", vec![], HashMap::new(), 4, 0, 0).unwrap_err();
        assert_eq!(err, KernelError::Empty);
    }

    #[test]
    fn rejects_bad_target() {
        let insts = vec![Inst::bra(17), Inst::new(Op::Exit)];
        let err = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap_err();
        assert!(matches!(err, KernelError::BadTarget { target: 17, .. }));
    }

    #[test]
    fn backward_branch_and_sib_listing() {
        // 0: nop
        // 1: setp
        // 2: @p0 bra 0 (!sib)
        // 3: exit
        let mut back = Inst::bra(0);
        back.guard = Some((Pred(0), true));
        back.ann.sib = true;
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 3),
            back,
            Inst::new(Op::Exit),
        ];
        let k = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap();
        assert_eq!(k.backward_branches(), vec![2]);
        assert_eq!(k.true_sibs, vec![2]);
    }

    #[test]
    fn rejects_malformed_operands() {
        // Each case: a hand-broken instruction that the assembler can never
        // emit but the programmatic APIs could.
        let cases: Vec<(Inst, &str)> = vec![
            (Inst::new(Op::Mov), "mov with no operands"),
            (
                {
                    let mut i = Inst::new(Op::Add(Ty::S32));
                    i.dst = Some(Reg(0));
                    i.srcs.push(1.into());
                    i
                },
                "add with one source",
            ),
            (
                {
                    let mut i = Inst::new(Op::Setp(CmpOp::Eq, Ty::S32));
                    i.srcs.push(1.into());
                    i.srcs.push(2.into());
                    i
                },
                "setp without pdst",
            ),
            (Inst::new(Op::Bra), "bra without target"),
            (
                {
                    let mut i = Inst::new(Op::Ld(crate::Space::Global, false));
                    i.dst = Some(Reg(0));
                    i
                },
                "load without address",
            ),
            (
                {
                    let mut i = Inst::new(Op::St(crate::Space::Global, false));
                    i.addr = Some(crate::MemAddr::new(Reg(0), 0));
                    i
                },
                "store without value",
            ),
            (
                {
                    let mut i = Inst::new(Op::Atom(crate::AtomOp::Cas));
                    i.dst = Some(Reg(0));
                    i.addr = Some(crate::MemAddr::new(Reg(1), 0));
                    i.srcs.push(0.into()); // CAS needs two sources
                    i
                },
                "cas with one source",
            ),
            (Inst::new(Op::Clock), "clock without dst"),
        ];
        for (bad, label) in cases {
            let insts = vec![bad, Inst::new(Op::Exit)];
            let err = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap_err();
            assert!(
                matches!(err, KernelError::MalformedOperands { pc: 0, .. }),
                "{label}: expected MalformedOperands, got {err:?}"
            );
        }
    }

    #[test]
    fn well_formed_constructors_pass_shape_check() {
        let insts = vec![
            Inst::ld(crate::Space::Param, Reg(1), crate::MemAddr::abs(0)),
            Inst::atom(
                crate::AtomOp::Cas,
                Reg(2),
                crate::MemAddr::new(Reg(1), 0),
                vec![0.into(), 1.into()],
            ),
            Inst::st(crate::Space::Global, crate::MemAddr::new(Reg(1), 4), Reg(2)),
            Inst::new(Op::Exit),
        ];
        Kernel::from_insts("t", insts, HashMap::new(), 4, 1, 0).unwrap();
    }

    #[test]
    fn disasm_roundtrip_smoke() {
        let mut back = Inst::bra(0);
        back.guard = Some((Pred(0), true));
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 3),
            back,
            Inst::new(Op::Exit),
        ];
        let k = Kernel::from_insts("t", insts, HashMap::new(), 4, 0, 0).unwrap();
        let d = k.disasm();
        assert!(d.contains("L0:"), "{d}");
        assert!(d.contains("bra L0"), "{d}");
    }
}
