//! Programmatic kernel construction, an alternative to the text assembler.
//!
//! Useful for parameterized kernels (e.g. unrolled loops) where generating
//! text would be awkward.
//!
//! ```
//! use simt_isa::builder::KernelBuilder;
//! use simt_isa::{CmpOp, Op, Pred, Reg, Ty};
//!
//! let mut b = KernelBuilder::new("count");
//! b.regs(4);
//! b.push(simt_isa::Inst::mov(Reg(0), 0));
//! b.label("loop");
//! b.push(simt_isa::Inst::binary(Op::Add(Ty::S32), Reg(0), Reg(0), 1));
//! b.push(simt_isa::Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 10));
//! b.bra_to("loop").guard(Pred(0), true);
//! b.push(simt_isa::Inst::new(Op::Exit));
//! let k = b.build()?;
//! assert_eq!(k.backward_branches().len(), 1);
//! # Ok::<(), simt_isa::AsmError>(())
//! ```

use crate::{AsmError, Inst, Kernel, Op, Pred};
use std::collections::HashMap;

/// Incremental builder for a [`Kernel`].
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    /// (inst index, label) pending resolution.
    fixups: Vec<(usize, String)>,
    num_regs: u8,
    num_params: u32,
    shared_words: u32,
}

/// Handle to the most recently pushed instruction, for chained modifiers.
#[derive(Debug)]
pub struct InstRef<'a> {
    inst: &'a mut Inst,
}

impl InstRef<'_> {
    /// Attach a `@p` / `@!p` guard.
    pub fn guard(self, p: Pred, expect: bool) -> Self {
        self.inst.guard = Some((p, expect));
        self
    }

    /// Mark as a lock-acquire atomic.
    pub fn acquire(self) -> Self {
        self.inst.ann.acquire = true;
        self
    }

    /// Mark as a lock-release atomic.
    pub fn release(self) -> Self {
        self.inst.ann.release = true;
        self
    }

    /// Mark as a wait-loop exit test.
    pub fn wait(self) -> Self {
        self.inst.ann.wait = true;
        self
    }

    /// Mark as a ground-truth spin-inducing branch.
    pub fn sib(self) -> Self {
        self.inst.ann.sib = true;
        self
    }

    /// Mark as synchronization-overhead code.
    pub fn sync(self) -> Self {
        self.inst.ann.sync = true;
        self
    }
}

impl KernelBuilder {
    /// Start building a kernel with 32 registers, 8 params, no shared memory.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            num_regs: 32,
            num_params: 8,
            shared_words: 0,
        }
    }

    /// Set the per-thread register count.
    pub fn regs(&mut self, n: u8) -> &mut Self {
        self.num_regs = n;
        self
    }

    /// Set the parameter-slot count.
    pub fn params(&mut self, n: u32) -> &mut Self {
        self.num_params = n;
        self
    }

    /// Set the shared-memory words per CTA.
    pub fn shared(&mut self, words: u32) -> &mut Self {
        self.shared_words = words;
        self
    }

    /// Define a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate label names (a programming error in the caller).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.insts.len());
        assert!(prev.is_none(), "duplicate label {name}");
        self
    }

    /// Append an instruction; returns a handle for chained modifiers.
    pub fn push(&mut self, inst: Inst) -> InstRef<'_> {
        self.insts.push(inst);
        InstRef {
            inst: self.insts.last_mut().expect("just pushed"),
        }
    }

    /// Append a branch to a (possibly not-yet-defined) label.
    pub fn bra_to(&mut self, label: impl Into<String>) -> InstRef<'_> {
        let idx = self.insts.len();
        self.fixups.push((idx, label.into()));
        self.push(Inst::new(Op::Bra))
    }

    /// Current instruction count (the PC the next `push` will get).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Resolve labels and build the kernel.
    ///
    /// # Errors
    ///
    /// Returns an error for unresolved labels or kernel validation failures.
    pub fn build(mut self) -> Result<Kernel, AsmError> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let t = *self.labels.get(&label).ok_or_else(|| AsmError {
                line: 0,
                msg: format!("unresolved label {label}"),
            })?;
            self.insts[idx].target = Some(t);
        }
        Kernel::from_insts(
            self.name,
            self.insts,
            self.labels,
            self.num_regs,
            self.num_params,
            self.shared_words,
        )
        .map_err(AsmError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Reg, Ty};

    #[test]
    fn forward_and_backward_labels() {
        let mut b = KernelBuilder::new("t");
        b.regs(4);
        b.bra_to("end"); // forward reference
        b.label("top");
        b.push(Inst::mov(Reg(0), 1));
        b.bra_to("top");
        b.label("end");
        b.push(Inst::new(Op::Exit));
        let k = b.build().unwrap();
        assert_eq!(k.insts[0].target, Some(3));
        assert_eq!(k.insts[2].target, Some(1));
        assert_eq!(k.backward_branches(), vec![2]);
    }

    #[test]
    fn unresolved_label_errors() {
        let mut b = KernelBuilder::new("t");
        b.bra_to("nowhere");
        b.push(Inst::new(Op::Exit));
        assert!(b.build().is_err());
    }

    #[test]
    fn chained_modifiers() {
        let mut b = KernelBuilder::new("t");
        b.regs(4);
        b.label("top");
        b.push(Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 3));
        b.bra_to("top").guard(Pred(0), true).sib().sync();
        b.push(Inst::new(Op::Exit));
        let k = b.build().unwrap();
        assert_eq!(k.insts[1].guard, Some((Pred(0), true)));
        assert!(k.insts[1].ann.sib);
        assert!(k.insts[1].ann.sync);
        assert_eq!(k.true_sibs, vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = KernelBuilder::new("t");
        b.label("a");
        b.label("a");
    }
}
