//! Instruction encoding: operands, memory addresses, annotations.

use crate::{AtomOp, CmpOp, Op, Pred, Reg, Space, Special, Ty};
use std::fmt;

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A 32-bit immediate (bit pattern; may encode a float).
    Imm(u32),
    /// A read-only special register.
    Special(Special),
}

impl Operand {
    /// Immediate from a signed value.
    pub fn imm_i32(v: i32) -> Operand {
        Operand::Imm(v as u32)
    }

    /// Immediate carrying an `f32` bit pattern.
    pub fn imm_f32(v: f32) -> Operand {
        Operand::Imm(v.to_bits())
    }

    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Special> for Operand {
    fn from(s: Special) -> Self {
        Operand::Special(s)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::imm_i32(v)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                // Print small values as signed decimal, large as hex.
                let s = *v as i32;
                if (-4096..=4096).contains(&s) {
                    write!(f, "{s}")
                } else {
                    write!(f, "0x{v:x}")
                }
            }
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// A `[base + offset]` memory address operand. Param loads may use a bare
/// immediate (`[0]`), in which case `base` is `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAddr {
    /// Base address register (byte address), if any.
    pub base: Option<Reg>,
    /// Constant byte offset.
    pub offset: i32,
}

impl MemAddr {
    /// Register-relative address.
    pub fn new(base: Reg, offset: i32) -> MemAddr {
        MemAddr {
            base: Some(base),
            offset,
        }
    }

    /// Absolute (immediate-only) address, mainly for param slots.
    pub fn abs(offset: i32) -> MemAddr {
        MemAddr { base: None, offset }
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Some(b) if self.offset == 0 => write!(f, "[{b}]"),
            Some(b) if self.offset > 0 => write!(f, "[{}+{}]", b, self.offset),
            Some(b) => write!(f, "[{}{}]", b, self.offset),
            None => write!(f, "[{}]", self.offset),
        }
    }
}

/// Static annotations used by the reproduction's instrumentation, written as
/// trailing `!name` tokens in assembly.
///
/// These do not alter execution semantics; they feed the statistics that the
/// paper's figures are built from (lock-acquire outcome classification,
/// synchronization-overhead instruction counts, DDOS ground truth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Annot {
    /// `!acquire` — this atomic CAS is a lock-acquire attempt.
    pub acquire: bool,
    /// `!release` — this atomic releases a lock.
    pub release: bool,
    /// `!wait` — this branch is the exit test of a wait-and-signal loop
    /// (taken = still waiting).
    pub wait: bool,
    /// `!sib` — ground truth: this backward branch is a spin-inducing branch.
    pub sib: bool,
    /// `!sync` — this instruction is part of synchronization code (overhead
    /// accounting for Figure 1c).
    pub sync: bool,
}

impl Annot {
    /// True if no annotation is set.
    pub fn is_empty(self) -> bool {
        self == Annot::default()
    }
}

impl fmt::Display for Annot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if wrote {
                f.write_str(" ")?;
            }
            wrote = true;
            write!(f, "!{s}")
        };
        if self.acquire {
            put(f, "acquire")?;
        }
        if self.release {
            put(f, "release")?;
        }
        if self.wait {
            put(f, "wait")?;
        }
        if self.sib {
            put(f, "sib")?;
        }
        if self.sync {
            put(f, "sync")?;
        }
        Ok(())
    }
}

/// One decoded instruction.
///
/// Operand layout:
/// * ALU ops: `dst`, then `srcs` in assembler order.
/// * `setp`: `pdst`, two `srcs`.
/// * `selp`: `dst`, `srcs[0]`, `srcs[1]`, guard predicate in `psrc`.
/// * predicate logic (`pand` etc.): `pdst` and predicate sources in `psrcs`.
/// * `bra`: `target` holds the resolved instruction index.
/// * loads: `dst` and `addr`; stores: `addr` and `srcs[0]` (the value).
/// * atomics: `dst` (old value), `addr`, then 1–2 `srcs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Destination predicate (for `setp` / predicate logic).
    pub pdst: Option<Pred>,
    /// Register/immediate/special sources.
    pub srcs: Vec<Operand>,
    /// Predicate sources (for `selp` and predicate logic).
    pub psrcs: Vec<Pred>,
    /// Memory address operand for loads/stores/atomics.
    pub addr: Option<MemAddr>,
    /// Resolved branch target (instruction index).
    pub target: Option<usize>,
    /// Optional `@p` / `@!p` guard: (predicate, expected value).
    pub guard: Option<(Pred, bool)>,
    /// Instrumentation annotations.
    pub ann: Annot,
    /// Source line in the assembly text (for diagnostics), 1-based; 0 when
    /// built programmatically.
    pub line: u32,
}

impl Inst {
    /// A bare instruction with the given opcode and no operands.
    pub fn new(op: Op) -> Inst {
        Inst {
            op,
            dst: None,
            pdst: None,
            srcs: Vec::new(),
            psrcs: Vec::new(),
            addr: None,
            target: None,
            guard: None,
            ann: Annot::default(),
            line: 0,
        }
    }

    /// Registers read by this instruction (including address base).
    pub fn src_regs(&self) -> Vec<Reg> {
        let mut v: Vec<Reg> = self.srcs.iter().filter_map(|o| o.as_reg()).collect();
        if let Some(b) = self.addr.and_then(|a| a.base) {
            v.push(b);
        }
        v
    }

    /// Register written by this instruction, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        self.dst
    }

    /// True if this is a backward branch relative to its own position —
    /// the candidate population for spin-inducing branches.
    pub fn is_backward_branch(&self, pc: usize) -> bool {
        self.op.is_branch() && self.target.is_some_and(|t| t <= pc)
    }

    fn mnemonic(&self) -> String {
        use Op::*;
        fn ty_sfx(t: Ty) -> String {
            if t == Ty::S32 {
                String::new()
            } else {
                format!(".{t}")
            }
        }
        match self.op {
            Mov => "mov".into(),
            Add(t) => format!("add{}", ty_sfx(t)),
            Sub(t) => format!("sub{}", ty_sfx(t)),
            Mul(t) => format!("mul{}", ty_sfx(t)),
            Mad(t) => format!("mad{}", ty_sfx(t)),
            Div(t) => format!("div{}", ty_sfx(t)),
            Rem(t) => format!("rem{}", ty_sfx(t)),
            Min(t) => format!("min{}", ty_sfx(t)),
            Max(t) => format!("max{}", ty_sfx(t)),
            And => "and".into(),
            Or => "or".into(),
            Xor => "xor".into(),
            Not => "not".into(),
            Neg(t) => format!("neg{}", ty_sfx(t)),
            Shl => "shl".into(),
            Shr => "shr".into(),
            Sra => "sra".into(),
            Sqrt => "sqrt.f32".into(),
            CvtI2F => "cvt.f32.s32".into(),
            CvtF2I => "cvt.s32.f32".into(),
            Selp => "selp".into(),
            Setp(c, t) => format!("setp.{c}{}", ty_sfx(t)),
            PAnd => "pand".into(),
            POr => "por".into(),
            PNot => "pnot".into(),
            Bra => "bra".into(),
            Ld(s, v) => format!("ld.{s}{}", if v { ".volatile" } else { "" }),
            St(s, v) => format!("st.{s}{}", if v { ".volatile" } else { "" }),
            Atom(a) => format!("atom.global.{a}"),
            Bar => "bar.sync".into(),
            Membar => "membar".into(),
            Clock => "clock".into(),
            Exit => "exit".into(),
            Nop => "nop".into(),
        }
    }
}

impl fmt::Display for Inst {
    /// Disassembly, parseable back by the assembler (branch targets print as
    /// `@<index>` pseudo-labels only here; `Kernel::disasm` emits real ones).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((p, v)) = self.guard {
            write!(f, "@{}{} ", if v { "" } else { "!" }, p)?;
        }
        write!(f, "{}", self.mnemonic())?;
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = self.pdst {
            parts.push(p.to_string());
        }
        if let Some(d) = self.dst {
            parts.push(d.to_string());
        }
        match self.op {
            Op::St(..) => {
                if let Some(a) = self.addr {
                    parts.push(a.to_string());
                }
                for s in &self.srcs {
                    parts.push(s.to_string());
                }
            }
            _ => {
                if let Some(a) = self.addr {
                    parts.push(a.to_string());
                }
                for s in &self.srcs {
                    parts.push(s.to_string());
                }
            }
        }
        for p in &self.psrcs {
            parts.push(p.to_string());
        }
        if let Some(t) = self.target {
            parts.push(format!("@{t}"));
        }
        if !parts.is_empty() {
            write!(f, " {}", parts.join(", "))?;
        }
        if !self.ann.is_empty() {
            write!(f, " {}", self.ann)?;
        }
        Ok(())
    }
}

/// Convenience constructors used by tests and the builder.
impl Inst {
    pub fn mov(dst: Reg, src: impl Into<Operand>) -> Inst {
        let mut i = Inst::new(Op::Mov);
        i.dst = Some(dst);
        i.srcs.push(src.into());
        i
    }

    pub fn binary(op: Op, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Inst {
        let mut i = Inst::new(op);
        i.dst = Some(dst);
        i.srcs.push(a.into());
        i.srcs.push(b.into());
        i
    }

    pub fn setp(
        cmp: CmpOp,
        ty: Ty,
        p: Pred,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Inst {
        let mut i = Inst::new(Op::Setp(cmp, ty));
        i.pdst = Some(p);
        i.srcs.push(a.into());
        i.srcs.push(b.into());
        i
    }

    pub fn bra(target: usize) -> Inst {
        let mut i = Inst::new(Op::Bra);
        i.target = Some(target);
        i
    }

    pub fn ld(space: Space, dst: Reg, addr: MemAddr) -> Inst {
        let mut i = Inst::new(Op::Ld(space, false));
        i.dst = Some(dst);
        i.addr = Some(addr);
        i
    }

    pub fn st(space: Space, addr: MemAddr, val: impl Into<Operand>) -> Inst {
        let mut i = Inst::new(Op::St(space, false));
        i.addr = Some(addr);
        i.srcs.push(val.into());
        i
    }

    pub fn atom(op: AtomOp, dst: Reg, addr: MemAddr, srcs: Vec<Operand>) -> Inst {
        let mut i = Inst::new(Op::Atom(op));
        i.dst = Some(dst);
        i.addr = Some(addr);
        i.srcs = srcs;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branch_detection() {
        let b = Inst::bra(3);
        assert!(b.is_backward_branch(5));
        assert!(b.is_backward_branch(3));
        assert!(!b.is_backward_branch(2));
        let nop = Inst::new(Op::Nop);
        assert!(!nop.is_backward_branch(5));
    }

    #[test]
    fn src_regs_include_addr_base() {
        let st = Inst::st(Space::Global, MemAddr::new(Reg(2), 4), Reg(3));
        let regs = st.src_regs();
        assert!(regs.contains(&Reg(2)));
        assert!(regs.contains(&Reg(3)));
    }

    #[test]
    fn display_smoke() {
        let mut i = Inst::setp(CmpOp::Eq, Ty::S32, Pred(2), Reg(15), 0);
        i.guard = Some((Pred(1), false));
        let s = i.to_string();
        assert!(s.starts_with("@!p1 setp.eq"), "{s}");
        assert!(s.contains("p2, r15, 0"), "{s}");
    }

    #[test]
    fn annot_display() {
        let a = Annot {
            acquire: true,
            sync: true,
            ..Annot::default()
        };
        assert_eq!(a.to_string(), "!acquire !sync");
        assert!(Annot::default().is_empty());
    }
}
