//! PTX-like instruction set architecture for the `bows-sim` SIMT GPU simulator.
//!
//! This crate defines everything the simulator core needs to describe a GPU
//! kernel:
//!
//! * [`Op`]/[`Inst`] — the instruction set (a RISC-style subset of NVIDIA PTX:
//!   integer/float ALU ops, `setp` predicate generation, predicated branches,
//!   global/shared/param memory accesses, atomics, barriers and fences),
//! * [`Kernel`] — an assembled kernel, with labels resolved and reconvergence
//!   points (immediate post-dominators) precomputed for the SIMT stack,
//! * [`asm::assemble`] — a line-oriented assembler for a PTX-flavoured text
//!   syntax (this is how the workloads in the reproduction are written),
//! * [`builder::KernelBuilder`] — a programmatic alternative to the assembler,
//! * [`cfg`] — basic-block construction and immediate-post-dominator analysis.
//!
//! # Example
//!
//! ```
//! use simt_isa::asm::assemble;
//!
//! let k = assemble(
//!     r#"
//!     .kernel add_one
//!     .regs 4
//!     entry:
//!         mov      r1, %tid
//!         shl      r2, r1, 2
//!         ld.param r3, [0]
//!         add      r2, r2, r3
//!         ld.global r1, [r2]
//!         add      r1, r1, 1
//!         st.global [r2], r1
//!         exit
//!     "#,
//! )?;
//! assert_eq!(k.name, "add_one");
//! assert_eq!(k.insts.len(), 8);
//! # Ok::<(), simt_isa::AsmError>(())
//! ```

pub mod asm;
pub mod builder;
pub mod cfg;
mod decoded;
mod inst;
mod kernel;
mod op;
mod reg;

pub use asm::{AsmError, RawKernel};
pub use decoded::{alu_fn, AluFn, DecodedInst, DecodedKernel, ExecClass};
pub use inst::{Annot, Inst, MemAddr, Operand};
pub use kernel::{Kernel, KernelError, RECONV_EXIT};
pub use op::{AtomOp, CmpOp, Op, OpClass, Space, Ty};
pub use reg::{Pred, Reg, Special};

/// Architectural byte size of one instruction, used when converting an
/// instruction index into a byte program counter (as DDOS hashing does).
pub const INST_BYTES: u64 = 8;
