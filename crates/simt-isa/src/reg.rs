//! Register, predicate and special-register names.

use std::fmt;

/// A general-purpose per-thread 32-bit register, `r0`..`r254`.
///
/// Registers hold untyped 32-bit words; floating-point operations reinterpret
/// the bits as IEEE-754 `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Index into a per-thread register file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A per-thread 1-bit predicate register, `p0`..`p7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(pub u8);

impl Pred {
    /// Number of predicate registers per thread.
    pub const COUNT: u8 = 8;

    /// Index into a per-thread predicate file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Read-only special registers, the `%`-prefixed names of PTX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Thread index within the CTA (x dimension).
    TidX,
    /// CTA index within the grid (x dimension).
    CtaIdX,
    /// Threads per CTA.
    NTidX,
    /// CTAs in the grid.
    NCtaIdX,
    /// Lane index within the warp (0..32).
    LaneId,
    /// Warp index within the CTA.
    WarpId,
    /// Global thread id, `ctaid.x * ntid.x + tid.x` (a convenience PTX lacks
    /// but every kernel computes).
    GlobalTid,
    /// Core cycle counter (low 32 bits), the `%clock` register. Used by the
    /// software back-off delay code of Figure 3a.
    Clock,
    /// The SM this thread is running on.
    SmId,
}

impl Special {
    /// The assembler spelling, without the leading `%`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Special::TidX => "tid",
            Special::CtaIdX => "ctaid",
            Special::NTidX => "ntid",
            Special::NCtaIdX => "nctaid",
            Special::LaneId => "laneid",
            Special::WarpId => "warpid",
            Special::GlobalTid => "gtid",
            Special::Clock => "clock",
            Special::SmId => "smid",
        }
    }

    /// Parse an assembler spelling (without the `%`).
    pub fn from_mnemonic(s: &str) -> Option<Special> {
        Some(match s {
            "tid" | "tid.x" => Special::TidX,
            "ctaid" | "ctaid.x" => Special::CtaIdX,
            "ntid" | "ntid.x" => Special::NTidX,
            "nctaid" | "nctaid.x" => Special::NCtaIdX,
            "laneid" => Special::LaneId,
            "warpid" => Special::WarpId,
            "gtid" => Special::GlobalTid,
            "clock" => Special::Clock,
            "smid" => Special::SmId,
            _ => return None,
        })
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_mnemonic_roundtrip() {
        for s in [
            Special::TidX,
            Special::CtaIdX,
            Special::NTidX,
            Special::NCtaIdX,
            Special::LaneId,
            Special::WarpId,
            Special::GlobalTid,
            Special::Clock,
            Special::SmId,
        ] {
            assert_eq!(Special::from_mnemonic(s.mnemonic()), Some(s));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Pred(1).to_string(), "p1");
        assert_eq!(Special::TidX.to_string(), "%tid");
    }

    #[test]
    fn unknown_special_rejected() {
        assert_eq!(Special::from_mnemonic("nonsense"), None);
    }
}
