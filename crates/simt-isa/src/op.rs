//! Opcodes, comparison operators, types, atomic operations and address spaces.

use std::fmt;

/// Operand/result interpretation for ALU and `setp` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ty {
    /// Signed 32-bit integer (the default).
    #[default]
    S32,
    /// Unsigned 32-bit integer.
    U32,
    /// IEEE-754 single precision, stored bit-exact in the 32-bit register.
    F32,
}

impl Ty {
    /// Assembler suffix (`.s32` etc.); the default `s32` may be omitted.
    pub fn suffix(self) -> &'static str {
        match self {
            Ty::S32 => "s32",
            Ty::U32 => "u32",
            Ty::F32 => "f32",
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Comparison operator of a `setp` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }

    /// Evaluate over two 32-bit words under the given type interpretation.
    pub fn eval(self, ty: Ty, a: u32, b: u32) -> bool {
        match ty {
            Ty::S32 => {
                let (a, b) = (a as i32, b as i32);
                match self {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                }
            }
            Ty::U32 => match self {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            },
            Ty::F32 => {
                let (a, b) = (f32::from_bits(a), f32::from_bits(b));
                match self {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                }
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Read-modify-write operation of an `atom` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Compare-and-swap: `atom.cas d, [a], cmp, new`.
    Cas,
    /// Exchange: `atom.exch d, [a], new`.
    Exch,
    /// Fetch-and-add.
    Add,
    /// Fetch-and-max (signed).
    Max,
    /// Fetch-and-min (signed).
    Min,
    /// Fetch-and-and.
    And,
    /// Fetch-and-or.
    Or,
}

impl AtomOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            AtomOp::Cas => "cas",
            AtomOp::Exch => "exch",
            AtomOp::Add => "add",
            AtomOp::Max => "max",
            AtomOp::Min => "min",
            AtomOp::And => "and",
            AtomOp::Or => "or",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<AtomOp> {
        Some(match s {
            "cas" => AtomOp::Cas,
            "exch" => AtomOp::Exch,
            "add" => AtomOp::Add,
            "max" => AtomOp::Max,
            "min" => AtomOp::Min,
            "and" => AtomOp::And,
            "or" => AtomOp::Or,
            _ => return None,
        })
    }

    /// Number of non-address source operands the instruction carries.
    pub fn src_count(self) -> usize {
        match self {
            AtomOp::Cas => 2,
            _ => 1,
        }
    }

    /// Apply the read-modify-write: returns the new memory value given the
    /// old value and the operands. CAS takes `(compare, new)`.
    pub fn apply(self, old: u32, a: u32, b: u32) -> u32 {
        match self {
            AtomOp::Cas => {
                if old == a {
                    b
                } else {
                    old
                }
            }
            AtomOp::Exch => a,
            AtomOp::Add => old.wrapping_add(a),
            AtomOp::Max => (old as i32).max(a as i32) as u32,
            AtomOp::Min => (old as i32).min(a as i32) as u32,
            AtomOp::And => old & a,
            AtomOp::Or => old | a,
        }
    }
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Memory address space of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device global memory, cached in L1/L2.
    Global,
    /// CTA-private scratchpad.
    Shared,
    /// Read-only kernel parameters.
    Param,
}

impl Space {
    pub fn mnemonic(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Param => "param",
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The instruction set.
///
/// Type-parameterized arithmetic carries a [`Ty`]; everything defaults to
/// `s32`. The operand layout per opcode is documented on [`crate::Inst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `mov d, a`.
    Mov,
    /// `add[.ty] d, a, b`.
    Add(Ty),
    /// `sub[.ty] d, a, b`.
    Sub(Ty),
    /// `mul[.ty] d, a, b` (low 32 bits for integers).
    Mul(Ty),
    /// `mad[.ty] d, a, b, c` — `d = a * b + c`.
    Mad(Ty),
    /// `div[.ty] d, a, b`. Integer division by zero yields all-ones.
    Div(Ty),
    /// `rem d, a, b` (integer only). Remainder by zero yields `a`.
    Rem(Ty),
    /// `min[.ty] d, a, b`.
    Min(Ty),
    /// `max[.ty] d, a, b`.
    Max(Ty),
    /// `and d, a, b` (bitwise).
    And,
    /// `or d, a, b`.
    Or,
    /// `xor d, a, b`.
    Xor,
    /// `not d, a`.
    Not,
    /// `neg[.ty] d, a`.
    Neg(Ty),
    /// `shl d, a, b` — logical shift left by `b & 31`.
    Shl,
    /// `shr d, a, b` — logical shift right.
    Shr,
    /// `sra d, a, b` — arithmetic shift right.
    Sra,
    /// `sqrt.f32 d, a`.
    Sqrt,
    /// `cvt.f32.s32 d, a` — int to float.
    CvtI2F,
    /// `cvt.s32.f32 d, a` — float to int (round toward zero).
    CvtF2I,
    /// `selp d, a, b, p` — `d = p ? a : b`.
    Selp,
    /// `setp.<cmp>[.ty] p, a, b` — the predicate-setting instruction DDOS
    /// observes (path hash of its PC, value hashes of its two sources).
    Setp(CmpOp, Ty),
    /// `pand d, a, b` on predicates.
    PAnd,
    /// `por d, a, b` on predicates.
    POr,
    /// `pnot d, a` on predicates.
    PNot,
    /// `bra target` — branch, usually guarded `@p bra target`.
    Bra,
    /// `ld.<space>[.volatile] d, [a+imm]`. Volatile global loads bypass L1.
    Ld(Space, bool),
    /// `st.<space>[.volatile] [a+imm], b`.
    St(Space, bool),
    /// `atom.global.<op> d, [a+imm], b[, c]` — performed at the L2 partition.
    Atom(AtomOp),
    /// `bar.sync` — CTA-wide barrier.
    Bar,
    /// `membar` — wait until all of this warp's outstanding memory operations
    /// have completed (conservative `__threadfence`).
    Membar,
    /// `clock d` — read the SM cycle counter (low 32 bits).
    Clock,
    /// `exit` — thread termination.
    Exit,
    /// `nop`.
    Nop,
}

/// Coarse functional-unit class, used for issue latency and energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer / logic / predicate ALU.
    IntAlu,
    /// Floating point unit.
    FpAlu,
    /// Special function unit (div, sqrt).
    Sfu,
    /// Control (branch, exit, nop, clock).
    Control,
    /// Global/param memory access.
    GlobalMem,
    /// Shared memory access.
    SharedMem,
    /// Atomic operation.
    Atomic,
    /// Barrier / fence.
    Sync,
}

impl Op {
    /// Functional-unit class of this opcode.
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Mov | And | Or | Xor | Not | Shl | Shr | Sra | Selp | PAnd | POr | PNot => {
                OpClass::IntAlu
            }
            Add(t) | Sub(t) | Mul(t) | Mad(t) | Min(t) | Max(t) | Neg(t) => match t {
                Ty::F32 => OpClass::FpAlu,
                _ => OpClass::IntAlu,
            },
            Div(_) | Rem(_) | Sqrt => OpClass::Sfu,
            CvtI2F | CvtF2I => OpClass::FpAlu,
            Setp(_, t) => match t {
                Ty::F32 => OpClass::FpAlu,
                _ => OpClass::IntAlu,
            },
            Bra | Exit | Nop | Clock => OpClass::Control,
            Ld(Space::Shared, _) | St(Space::Shared, _) => OpClass::SharedMem,
            Ld(_, _) | St(_, _) => OpClass::GlobalMem,
            Atom(_) => OpClass::Atomic,
            Bar | Membar => OpClass::Sync,
        }
    }

    /// True for instructions that access the memory pipeline.
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Ld(..) | Op::St(..) | Op::Atom(..))
    }

    /// True for `setp` — the instruction DDOS profiles.
    pub fn is_setp(self) -> bool {
        matches!(self, Op::Setp(..))
    }

    /// True for control-transfer instructions.
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Bra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_signed_vs_unsigned() {
        // 0xffff_ffff is -1 signed, u32::MAX unsigned.
        assert!(CmpOp::Lt.eval(Ty::S32, 0xffff_ffff, 0));
        assert!(!CmpOp::Lt.eval(Ty::U32, 0xffff_ffff, 0));
        assert!(CmpOp::Ge.eval(Ty::U32, 0xffff_ffff, 0));
    }

    #[test]
    fn cmp_eval_float() {
        let a = 1.5f32.to_bits();
        let b = 2.5f32.to_bits();
        assert!(CmpOp::Lt.eval(Ty::F32, a, b));
        assert!(CmpOp::Ne.eval(Ty::F32, a, b));
        assert!(CmpOp::Eq.eval(Ty::F32, a, a));
    }

    #[test]
    fn atom_cas_semantics() {
        // Successful CAS: old == compare, memory becomes new.
        assert_eq!(AtomOp::Cas.apply(0, 0, 1), 1);
        // Failed CAS: memory unchanged.
        assert_eq!(AtomOp::Cas.apply(7, 0, 1), 7);
    }

    #[test]
    fn atom_arith() {
        assert_eq!(AtomOp::Add.apply(5, 3, 0), 8);
        assert_eq!(AtomOp::Exch.apply(5, 3, 0), 3);
        assert_eq!(AtomOp::Max.apply(5, (-3i32) as u32, 0), 5);
        assert_eq!(AtomOp::Min.apply(5, (-3i32) as u32, 0), (-3i32) as u32);
        assert_eq!(AtomOp::And.apply(0b1100, 0b1010, 0), 0b1000);
        assert_eq!(AtomOp::Or.apply(0b1100, 0b1010, 0), 0b1110);
    }

    #[test]
    fn op_classes() {
        assert_eq!(Op::Add(Ty::S32).class(), OpClass::IntAlu);
        assert_eq!(Op::Add(Ty::F32).class(), OpClass::FpAlu);
        assert_eq!(Op::Div(Ty::S32).class(), OpClass::Sfu);
        assert_eq!(Op::Ld(Space::Global, false).class(), OpClass::GlobalMem);
        assert_eq!(Op::Ld(Space::Shared, false).class(), OpClass::SharedMem);
        assert_eq!(Op::Atom(AtomOp::Cas).class(), OpClass::Atomic);
        assert!(Op::Atom(AtomOp::Cas).is_mem());
        assert!(Op::Setp(CmpOp::Eq, Ty::S32).is_setp());
        assert!(Op::Bra.is_branch());
    }

    #[test]
    fn wrapping_add_applies() {
        assert_eq!(AtomOp::Add.apply(u32::MAX, 1, 0), 0);
    }
}
