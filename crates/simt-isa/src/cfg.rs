//! Control-flow graph construction and immediate post-dominator analysis.
//!
//! The SIMT reconvergence stack needs, for every (potentially divergent)
//! branch, the program counter at which diverged threads reconverge. Following
//! GPGPU-Sim and the stack-based architectures the paper targets, that point
//! is the *immediate post-dominator* (IPDOM) of the branch's basic block.

use crate::{Inst, Op, RECONV_EXIT};
use std::collections::BTreeMap;

/// A basic block: instruction index range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pub start: usize,
    pub end: usize,
    /// Successor block ids. Empty when the block ends in `exit` or falls off
    /// the end of the kernel.
    pub succs: Vec<usize>,
}

/// The control-flow graph of a kernel.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Map from instruction index to containing block id.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Build the CFG of an instruction sequence with resolved branch targets.
    ///
    /// Out-of-range targets are tolerated by dropping the edge, so analyses
    /// (the `simt-analyze` lints) stay total on invalid input. Valid kernels
    /// can never contain one: [`crate::Kernel::from_insts`] rejects
    /// out-of-range targets *before* building the CFG, precisely because the
    /// dropped edge would otherwise silently become a fall-through.
    ///
    /// # Panics
    ///
    /// Panics if a branch has no resolved target (assembler bugs only; the
    /// assembler resolves all labels before calling this).
    pub fn build(insts: &[Inst]) -> Cfg {
        let n = insts.len();
        // Leaders: instruction 0, branch targets, instructions after branches
        // and after exits.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, inst) in insts.iter().enumerate() {
            match inst.op {
                Op::Bra => {
                    let t = inst.target.expect("unresolved branch target");
                    if t < n {
                        leader[t] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Op::Exit
                    if pc + 1 < n => {
                        leader[pc + 1] = true;
                    }
                _ => {}
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &lead) in leader.iter().enumerate() {
            if pc > start && lead {
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: Vec::new(),
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                succs: Vec::new(),
            });
        }
        for (bid, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(bid);
        }
        // Successors.
        let by_start: BTreeMap<usize, usize> =
            blocks.iter().enumerate().map(|(i, b)| (b.start, i)).collect();
        for b in blocks.iter_mut() {
            let last = b.end - 1;
            let inst = &insts[last];
            let mut succs = Vec::new();
            match inst.op {
                Op::Exit => {}
                Op::Bra => {
                    let t = inst.target.expect("unresolved branch target");
                    if t < n {
                        succs.push(by_start[&t]);
                    }
                    // A guarded branch falls through when the guard is false;
                    // an unguarded `bra` is unconditional.
                    if inst.guard.is_some() && last + 1 < n {
                        let ft = by_start[&(last + 1)];
                        if !succs.contains(&ft) {
                            succs.push(ft);
                        }
                    }
                }
                _ => {
                    if last + 1 < n {
                        succs.push(by_start[&(last + 1)]);
                    }
                }
            }
            b.succs = succs;
        }
        Cfg { blocks, block_of }
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Immediate post-dominator block of each block, or `None` when the only
    /// post-dominator is the (virtual) exit.
    ///
    /// Computed with the Cooper–Harvey–Kennedy iterative algorithm on the
    /// reverse CFG, with a virtual exit node post-dominating every block that
    /// has no successors (and, for robustness, every block — so infinite
    /// loops don't leave the analysis undefined).
    pub fn ipdom_blocks(&self) -> Vec<Option<usize>> {
        let nb = self.blocks.len();
        if nb == 0 {
            return Vec::new();
        }
        let exit = nb; // virtual exit node id
        let total = nb + 1;
        // Reverse CFG: preds in reverse graph = succs in forward graph.
        let mut rev_succs: Vec<Vec<usize>> = vec![Vec::new(); total]; // forward preds
        for (bid, b) in self.blocks.iter().enumerate() {
            if b.succs.is_empty() {
                rev_succs[exit].push(bid);
            }
            for &s in &b.succs {
                rev_succs[s].push(bid);
            }
        }
        // Reverse postorder of the *reverse* graph starting at exit.
        let mut order = Vec::with_capacity(total);
        let mut visited = vec![false; total];
        // Iterative DFS computing postorder.
        let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
        visited[exit] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < rev_succs[node].len() {
                let next = rev_succs[node][*idx];
                *idx += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        // order is postorder over reverse graph; reverse postorder index:
        let mut rpo_num = vec![usize::MAX; total];
        for (i, &node) in order.iter().rev().enumerate() {
            rpo_num[node] = i;
        }
        let rpo: Vec<usize> = order.iter().rev().copied().collect();

        let mut idom = vec![usize::MAX; total]; // in reverse graph = ipdom
        idom[exit] = exit;
        let intersect = |idom: &[usize], rpo_num: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_num[a] > rpo_num[b] {
                    a = idom[a];
                }
                while rpo_num[b] > rpo_num[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &rpo {
                if node == exit {
                    continue;
                }
                // Predecessors in reverse graph = forward successors, plus the
                // virtual exit edge for blocks without successors.
                let mut preds: Vec<usize> = self.blocks[node].succs.clone();
                if self.blocks[node].succs.is_empty() {
                    preds.push(exit);
                }
                let mut new_idom = usize::MAX;
                for &p in &preds {
                    if idom[p] != usize::MAX || p == exit {
                        new_idom = if new_idom == usize::MAX {
                            p
                        } else {
                            intersect(&idom, &rpo_num, new_idom, p)
                        };
                    }
                }
                if new_idom != usize::MAX && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }
        (0..nb)
            .map(|b| {
                let d = idom[b];
                if d == exit || d == usize::MAX {
                    None
                } else {
                    Some(d)
                }
            })
            .collect()
    }

    /// Per-instruction reconvergence PC for branches: the start of the
    /// branch's block's immediate post-dominator, or [`RECONV_EXIT`] when
    /// threads reconverge only at kernel exit.
    pub fn reconv_points(&self, insts: &[Inst]) -> Vec<usize> {
        let ipdom = self.ipdom_blocks();
        insts
            .iter()
            .enumerate()
            .map(|(pc, inst)| {
                if inst.op.is_branch() {
                    match ipdom[self.block_of(pc)] {
                        Some(b) => self.blocks[b].start,
                        None => RECONV_EXIT,
                    }
                } else {
                    RECONV_EXIT
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Pred, Reg, Ty};

    /// Build: if/else diamond.
    ///
    /// ```text
    /// 0: setp.eq p0, r0, 0
    /// 1: @p0 bra THEN(3)
    /// 2: bra JOIN(4)
    /// 3: nop            ; THEN
    /// 4: exit           ; JOIN
    /// ```
    fn diamond() -> Vec<Inst> {
        let mut b1 = Inst::bra(3);
        b1.guard = Some((Pred(0), true));
        vec![
            Inst::setp(CmpOp::Eq, Ty::S32, Pred(0), Reg(0), 0),
            b1,
            Inst::bra(4),
            Inst::new(Op::Nop),
            Inst::new(Op::Exit),
        ]
    }

    #[test]
    fn diamond_blocks_and_reconv() {
        let insts = diamond();
        let cfg = Cfg::build(&insts);
        // Blocks: [0,2) [2,3) [3,4) [4,5)
        assert_eq!(cfg.blocks.len(), 4);
        let reconv = cfg.reconv_points(&insts);
        // The conditional branch at 1 reconverges at the join (pc 4).
        assert_eq!(reconv[1], 4);
    }

    #[test]
    fn loop_reconverges_after_exit_test() {
        // 0: nop            ; HEAD
        // 1: setp.lt p0,...
        // 2: @p0 bra 0      ; back edge
        // 3: exit
        let mut back = Inst::bra(0);
        back.guard = Some((Pred(0), true));
        let insts = vec![
            Inst::new(Op::Nop),
            Inst::setp(CmpOp::Lt, Ty::S32, Pred(0), Reg(0), 10),
            back,
            Inst::new(Op::Exit),
        ];
        let cfg = Cfg::build(&insts);
        let reconv = cfg.reconv_points(&insts);
        // Loop-exit branch reconverges at the loop exit, pc 3.
        assert_eq!(reconv[2], 3);
    }

    #[test]
    fn branch_to_exit_block_reconverges_at_exit_sentinel() {
        // 0: @p0 bra 2
        // 1: exit
        // 2: exit
        let mut b = Inst::bra(2);
        b.guard = Some((Pred(0), true));
        let insts = vec![b, Inst::new(Op::Exit), Inst::new(Op::Exit)];
        let cfg = Cfg::build(&insts);
        let reconv = cfg.reconv_points(&insts);
        assert_eq!(reconv[0], RECONV_EXIT);
    }

    #[test]
    fn straightline_single_block() {
        let insts = vec![
            Inst::mov(Reg(1), 5),
            Inst::mov(Reg(2), 6),
            Inst::new(Op::Exit),
        ];
        let cfg = Cfg::build(&insts);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert_eq!(cfg.block_of(2), 0);
    }

    #[test]
    fn nested_diamonds_reconverge_innermost_first() {
        // 0: @p0 bra 6        ; outer
        // 1: @p1 bra 4        ; inner
        // 2: nop
        // 3: bra 5
        // 4: nop              ; inner then
        // 5: nop              ; inner join
        // 6: exit             ; outer join (also outer then target)
        let mut b0 = Inst::bra(6);
        b0.guard = Some((Pred(0), true));
        let mut b1 = Inst::bra(4);
        b1.guard = Some((Pred(1), true));
        let insts = vec![
            b0,
            b1,
            Inst::new(Op::Nop),
            Inst::bra(5),
            Inst::new(Op::Nop),
            Inst::new(Op::Nop),
            Inst::new(Op::Exit),
        ];
        let cfg = Cfg::build(&insts);
        let reconv = cfg.reconv_points(&insts);
        assert_eq!(reconv[0], 6, "outer reconverges at outer join");
        assert_eq!(reconv[1], 5, "inner reconverges at inner join");
    }
}
