//! A line-oriented assembler for the PTX-flavoured text syntax.
//!
//! Syntax overview (see the crate docs for a complete example):
//!
//! ```text
//! .kernel name          ; required, first directive
//! .regs 24              ; per-thread registers used
//! .params 4             ; 32-bit parameter slots
//! .shared 128           ; shared-memory words per CTA
//! label:
//!     mov r1, %tid
//! @p2 bra label         ; guarded branch (@!p2 for negated guard)
//!     atom.global.cas r5, [r2], 0, 1 !acquire !sync
//!     st.global [r2+4], r5
//!     exit
//! ```
//!
//! Comments start with `;`, `//` or `#`. Trailing `!name` tokens attach
//! [`Annot`] instrumentation flags. Immediates may be decimal, `0x` hex, or
//! `f32` literals (`1.5`, `2f`).

use crate::{
    Annot, AtomOp, CmpOp, Inst, Kernel, KernelError, MemAddr, Op, Operand, Pred, Reg, Space,
    Special, Ty,
};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    pub line: u32,
    pub msg: String,
}

impl AsmError {
    fn new(line: u32, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

impl From<KernelError> for AsmError {
    fn from(e: KernelError) -> AsmError {
        AsmError::new(0, e.to_string())
    }
}

/// A parsed-but-unvalidated kernel: labels are resolved, instruction lines
/// recorded, but none of [`Kernel::validate`]'s checks have run. This is the
/// input the `simt-analyze` lints operate on — a kernel the assembler would
/// *reject* (say, a branch past the end of the program) can still be
/// analyzed and explained.
#[derive(Debug, Clone)]
pub struct RawKernel {
    /// Kernel name from the `.kernel` directive.
    pub name: String,
    /// The instruction stream with targets resolved to indices.
    pub insts: Vec<Inst>,
    /// Label name → instruction index.
    pub labels: HashMap<String, usize>,
    /// Declared per-thread register count.
    pub num_regs: u8,
    /// Declared parameter slots.
    pub num_params: u32,
    /// Declared shared-memory words.
    pub shared_words: u32,
}

impl RawKernel {
    /// Validate and finish into a launchable [`Kernel`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] carrying the *source line* of the offending
    /// instruction for pc-specific [`KernelError`]s (file-level errors such
    /// as a missing `exit` report line 0).
    pub fn finish(self) -> Result<Kernel, AsmError> {
        let lines: Vec<u32> = self.insts.iter().map(|i| i.line).collect();
        Kernel::from_insts(
            self.name,
            self.insts,
            self.labels,
            self.num_regs,
            self.num_params,
            self.shared_words,
        )
        .map_err(|e| {
            let pc = match e {
                KernelError::RegOutOfRange { pc, .. }
                | KernelError::PredOutOfRange { pc, .. }
                | KernelError::BadTarget { pc, .. }
                | KernelError::MalformedOperands { pc, .. } => Some(pc),
                KernelError::NoExit | KernelError::Empty => None,
            };
            let line = pc.and_then(|pc| lines.get(pc).copied()).unwrap_or(0);
            AsmError::new(line, e.to_string())
        })
    }
}

/// Assemble a kernel from text.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, unresolved labels, or kernel-level validation failures.
pub fn assemble(text: &str) -> Result<Kernel, AsmError> {
    assemble_raw(text)?.finish()
}

/// Assemble without validating: the entry point for the linter, which must
/// accept kernels [`assemble`] rejects.
///
/// # Errors
///
/// Returns an [`AsmError`] for syntax errors, unknown mnemonics, duplicate
/// or unresolved labels — defects that prevent even *parsing* the kernel.
pub fn assemble_raw(text: &str) -> Result<RawKernel, AsmError> {
    let mut name: Option<String> = None;
    let mut num_regs: u8 = 32;
    let mut num_params: u32 = 8;
    let mut shared_words: u32 = 0;
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut pending: Vec<(u32, RawInst)> = Vec::new();

    for (ln0, raw_line) in text.lines().enumerate() {
        let line_no = ln0 as u32 + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let dir = it.next().unwrap_or("");
            let arg = it.next();
            match dir {
                "kernel" => {
                    let n = arg.ok_or_else(|| AsmError::new(line_no, ".kernel needs a name"))?;
                    name = Some(n.to_string());
                }
                "regs" => num_regs = parse_u32(arg, line_no, ".regs")? as u8,
                "params" => num_params = parse_u32(arg, line_no, ".params")?,
                "shared" => shared_words = parse_u32(arg, line_no, ".shared")?,
                other => {
                    return Err(AsmError::new(line_no, format!("unknown directive .{other}")))
                }
            }
            continue;
        }
        // One or more labels may prefix an instruction on the same line.
        let mut rest = line;
        loop {
            if let Some(colon) = rest.find(':') {
                let head = &rest[..colon];
                if !head.is_empty()
                    && head
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
                    && !head.chars().next().unwrap().is_ascii_digit()
                {
                    if labels.insert(head.to_string(), pending.len()).is_some() {
                        return Err(AsmError::new(line_no, format!("duplicate label {head}")));
                    }
                    rest = rest[colon + 1..].trim_start();
                    continue;
                }
            }
            break;
        }
        if rest.is_empty() {
            continue;
        }
        let raw = parse_inst_line(rest, line_no)?;
        pending.push((line_no, raw));
    }

    let name = name.ok_or_else(|| AsmError::new(1, "missing .kernel directive"))?;
    let n = pending.len();
    let mut insts = Vec::with_capacity(n);
    for (line_no, raw) in pending {
        let mut inst = raw.inst;
        if let Some(lbl) = raw.target_label {
            let t = *labels
                .get(&lbl)
                .ok_or_else(|| AsmError::new(line_no, format!("unknown label {lbl}")))?;
            inst.target = Some(t);
        }
        inst.line = line_no;
        insts.push(inst);
    }
    Ok(RawKernel {
        name,
        insts,
        labels,
        num_regs,
        num_params,
        shared_words,
    })
}

struct RawInst {
    inst: Inst,
    target_label: Option<String>,
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in [";", "//", "#"] {
        if let Some(p) = line.find(marker) {
            end = end.min(p);
        }
    }
    &line[..end]
}

fn parse_u32(arg: Option<&str>, line: u32, what: &str) -> Result<u32, AsmError> {
    arg.and_then(|a| a.parse().ok())
        .ok_or_else(|| AsmError::new(line, format!("{what} needs an integer argument")))
}

/// Split the operand field on commas that are not inside brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_inst_line(rest: &str, line: u32) -> Result<RawInst, AsmError> {
    let mut rest = rest.trim();
    // Guard.
    let mut guard = None;
    if let Some(g) = rest.strip_prefix('@') {
        let end = g
            .find(char::is_whitespace)
            .ok_or_else(|| AsmError::new(line, "guard without instruction"))?;
        let (gtok, tail) = g.split_at(end);
        let (neg, ptok) = match gtok.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, gtok),
        };
        let p = parse_pred(ptok, line)?;
        guard = Some((p, !neg));
        rest = tail.trim_start();
    }
    // Annotations at the end.
    let mut ann = Annot::default();
    while let Some(pos) = rest.rfind('!') {
        let tok = rest[pos + 1..].trim();
        if tok.contains(char::is_whitespace) || tok.is_empty() {
            break;
        }
        match tok {
            "acquire" => ann.acquire = true,
            "release" => ann.release = true,
            "wait" => ann.wait = true,
            "sib" => ann.sib = true,
            "sync" => ann.sync = true,
            other => return Err(AsmError::new(line, format!("unknown annotation !{other}"))),
        }
        rest = rest[..pos].trim_end();
    }
    // Mnemonic and operands.
    let (mnem, ops_str) = match rest.find(char::is_whitespace) {
        Some(p) => (&rest[..p], rest[p..].trim()),
        None => (rest, ""),
    };
    let ops = split_operands(ops_str);
    let mut raw = decode(mnem, &ops, line)?;
    raw.inst.guard = guard;
    raw.inst.ann = ann;
    Ok(raw)
}

fn parse_reg(tok: &str, line: u32) -> Result<Reg, AsmError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Reg)
        .ok_or_else(|| AsmError::new(line, format!("expected register, got `{tok}`")))
}

fn parse_pred(tok: &str, line: u32) -> Result<Pred, AsmError> {
    tok.strip_prefix('p')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Pred)
        .ok_or_else(|| AsmError::new(line, format!("expected predicate, got `{tok}`")))
}

fn parse_operand(tok: &str, line: u32) -> Result<Operand, AsmError> {
    if let Some(sp) = tok.strip_prefix('%') {
        return Special::from_mnemonic(sp)
            .map(Operand::Special)
            .ok_or_else(|| AsmError::new(line, format!("unknown special register %{sp}")));
    }
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) && tok.len() > 1 {
        return Ok(Operand::Reg(parse_reg(tok, line)?));
    }
    parse_imm(tok, line)
}

fn parse_imm(tok: &str, line: u32) -> Result<Operand, AsmError> {
    let t = tok.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16)
            .map(Operand::Imm)
            .map_err(|_| AsmError::new(line, format!("bad hex immediate `{tok}`")));
    }
    if let Some(hex) = t.strip_prefix("-0x") {
        return u32::from_str_radix(hex, 16)
            .map(|v| Operand::Imm((v as i64).wrapping_neg() as u32))
            .map_err(|_| AsmError::new(line, format!("bad hex immediate `{tok}`")));
    }
    if t.ends_with('f') || t.contains('.') {
        let ft = t.trim_end_matches('f');
        return ft
            .parse::<f32>()
            .map(Operand::imm_f32)
            .map_err(|_| AsmError::new(line, format!("bad float immediate `{tok}`")));
    }
    t.parse::<i64>()
        .map(|v| Operand::Imm(v as u32))
        .map_err(|_| AsmError::new(line, format!("bad immediate `{tok}`")))
}

fn parse_addr(tok: &str, line: u32) -> Result<MemAddr, AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError::new(line, format!("expected [addr], got `{tok}`")))?
        .trim();
    // Forms: imm, rN, rN+imm, rN-imm.
    if let Ok(abs) = inner.parse::<i32>() {
        return Ok(MemAddr::abs(abs));
    }
    if let Some(plus) = inner.find('+') {
        let base = parse_reg(inner[..plus].trim(), line)?;
        let off: i32 = inner[plus + 1..]
            .trim()
            .parse()
            .map_err(|_| AsmError::new(line, format!("bad address offset in `{tok}`")))?;
        return Ok(MemAddr::new(base, off));
    }
    if let Some(minus) = inner[1..].find('-') {
        let minus = minus + 1;
        let base = parse_reg(inner[..minus].trim(), line)?;
        let off: i32 = inner[minus + 1..]
            .trim()
            .parse()
            .map_err(|_| AsmError::new(line, format!("bad address offset in `{tok}`")))?;
        return Ok(MemAddr::new(base, -off));
    }
    Ok(MemAddr::new(parse_reg(inner, line)?, 0))
}

fn parse_ty(parts: &[&str], line: u32) -> Result<Ty, AsmError> {
    match parts {
        [] => Ok(Ty::S32),
        ["s32"] => Ok(Ty::S32),
        ["u32"] => Ok(Ty::U32),
        ["f32"] => Ok(Ty::F32),
        other => Err(AsmError::new(
            line,
            format!("unknown type suffix .{}", other.join(".")),
        )),
    }
}

fn need(ops: &[String], n: usize, mnem: &str, line: u32) -> Result<(), AsmError> {
    if ops.len() != n {
        Err(AsmError::new(
            line,
            format!("{mnem} expects {n} operands, got {}", ops.len()),
        ))
    } else {
        Ok(())
    }
}

fn decode(mnem: &str, ops: &[String], line: u32) -> Result<RawInst, AsmError> {
    let parts: Vec<&str> = mnem.split('.').collect();
    let base = parts[0];
    let sfx = &parts[1..];
    let mut target_label = None;

    let inst = match base {
        "mov" => {
            need(ops, 2, mnem, line)?;
            let mut i = Inst::new(Op::Mov);
            i.dst = Some(parse_reg(&ops[0], line)?);
            i.srcs.push(parse_operand(&ops[1], line)?);
            i
        }
        "add" | "sub" | "mul" | "min" | "max" | "div" | "rem" => {
            need(ops, 3, mnem, line)?;
            let ty = parse_ty(sfx, line)?;
            let op = match base {
                "add" => Op::Add(ty),
                "sub" => Op::Sub(ty),
                "mul" => Op::Mul(ty),
                "min" => Op::Min(ty),
                "max" => Op::Max(ty),
                "div" => Op::Div(ty),
                _ => Op::Rem(ty),
            };
            three(op, ops, line)?
        }
        "mad" => {
            need(ops, 4, mnem, line)?;
            let ty = parse_ty(sfx, line)?;
            let mut i = Inst::new(Op::Mad(ty));
            i.dst = Some(parse_reg(&ops[0], line)?);
            for o in &ops[1..] {
                i.srcs.push(parse_operand(o, line)?);
            }
            i
        }
        "and" | "or" | "xor" | "shl" | "shr" | "sra" => {
            need(ops, 3, mnem, line)?;
            let op = match base {
                "and" => Op::And,
                "or" => Op::Or,
                "xor" => Op::Xor,
                "shl" => Op::Shl,
                "shr" => Op::Shr,
                _ => Op::Sra,
            };
            three(op, ops, line)?
        }
        "not" | "neg" | "sqrt" => {
            need(ops, 2, mnem, line)?;
            let op = match base {
                "not" => Op::Not,
                "neg" => Op::Neg(parse_ty(sfx, line)?),
                _ => Op::Sqrt,
            };
            let mut i = Inst::new(op);
            i.dst = Some(parse_reg(&ops[0], line)?);
            i.srcs.push(parse_operand(&ops[1], line)?);
            i
        }
        "cvt" => {
            need(ops, 2, mnem, line)?;
            let op = match sfx {
                ["f32", "s32"] => Op::CvtI2F,
                ["s32", "f32"] => Op::CvtF2I,
                _ => return Err(AsmError::new(line, format!("unknown cvt form {mnem}"))),
            };
            let mut i = Inst::new(op);
            i.dst = Some(parse_reg(&ops[0], line)?);
            i.srcs.push(parse_operand(&ops[1], line)?);
            i
        }
        "selp" => {
            need(ops, 4, mnem, line)?;
            let mut i = Inst::new(Op::Selp);
            i.dst = Some(parse_reg(&ops[0], line)?);
            i.srcs.push(parse_operand(&ops[1], line)?);
            i.srcs.push(parse_operand(&ops[2], line)?);
            i.psrcs.push(parse_pred(&ops[3], line)?);
            i
        }
        "setp" => {
            need(ops, 3, mnem, line)?;
            if sfx.is_empty() {
                return Err(AsmError::new(line, "setp needs a comparison suffix"));
            }
            let cmp = CmpOp::from_mnemonic(sfx[0])
                .ok_or_else(|| AsmError::new(line, format!("unknown comparison .{}", sfx[0])))?;
            let ty = parse_ty(&sfx[1..], line)?;
            let mut i = Inst::new(Op::Setp(cmp, ty));
            i.pdst = Some(parse_pred(&ops[0], line)?);
            i.srcs.push(parse_operand(&ops[1], line)?);
            i.srcs.push(parse_operand(&ops[2], line)?);
            i
        }
        "pand" | "por" => {
            need(ops, 3, mnem, line)?;
            let mut i = Inst::new(if base == "pand" { Op::PAnd } else { Op::POr });
            i.pdst = Some(parse_pred(&ops[0], line)?);
            i.psrcs.push(parse_pred(&ops[1], line)?);
            i.psrcs.push(parse_pred(&ops[2], line)?);
            i
        }
        "pnot" => {
            need(ops, 2, mnem, line)?;
            let mut i = Inst::new(Op::PNot);
            i.pdst = Some(parse_pred(&ops[0], line)?);
            i.psrcs.push(parse_pred(&ops[1], line)?);
            i
        }
        "bra" => {
            need(ops, 1, mnem, line)?;
            target_label = Some(ops[0].clone());
            Inst::new(Op::Bra)
        }
        "ld" => {
            need(ops, 2, mnem, line)?;
            let (space, vol) = parse_space(sfx, line)?;
            let mut i = Inst::new(Op::Ld(space, vol));
            i.dst = Some(parse_reg(&ops[0], line)?);
            i.addr = Some(parse_addr(&ops[1], line)?);
            i
        }
        "st" => {
            need(ops, 2, mnem, line)?;
            let (space, vol) = parse_space(sfx, line)?;
            let mut i = Inst::new(Op::St(space, vol));
            i.addr = Some(parse_addr(&ops[0], line)?);
            i.srcs.push(parse_operand(&ops[1], line)?);
            i
        }
        "atom" => {
            // atom.global.<op>
            let aop = match sfx {
                ["global", rest] => AtomOp::from_mnemonic(rest)
                    .ok_or_else(|| AsmError::new(line, format!("unknown atomic .{rest}")))?,
                _ => {
                    return Err(AsmError::new(
                        line,
                        "atomics must be atom.global.<op>".to_string(),
                    ))
                }
            };
            need(ops, 2 + aop.src_count(), mnem, line)?;
            let mut i = Inst::new(Op::Atom(aop));
            i.dst = Some(parse_reg(&ops[0], line)?);
            i.addr = Some(parse_addr(&ops[1], line)?);
            for o in &ops[2..] {
                i.srcs.push(parse_operand(o, line)?);
            }
            i
        }
        "bar" => Inst::new(Op::Bar),
        "membar" => Inst::new(Op::Membar),
        "clock" => {
            need(ops, 1, mnem, line)?;
            let mut i = Inst::new(Op::Clock);
            i.dst = Some(parse_reg(&ops[0], line)?);
            i
        }
        "exit" => Inst::new(Op::Exit),
        "nop" => Inst::new(Op::Nop),
        other => return Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    };
    Ok(RawInst { inst, target_label })
}

fn three(op: Op, ops: &[String], line: u32) -> Result<Inst, AsmError> {
    let mut i = Inst::new(op);
    i.dst = Some(parse_reg(&ops[0], line)?);
    i.srcs.push(parse_operand(&ops[1], line)?);
    i.srcs.push(parse_operand(&ops[2], line)?);
    Ok(i)
}

fn parse_space(sfx: &[&str], line: u32) -> Result<(Space, bool), AsmError> {
    let (space_tok, rest) = sfx
        .split_first()
        .ok_or_else(|| AsmError::new(line, "memory op needs a space suffix"))?;
    let space = match *space_tok {
        "global" => Space::Global,
        "shared" => Space::Shared,
        "param" => Space::Param,
        other => return Err(AsmError::new(line, format!("unknown space .{other}"))),
    };
    let vol = match rest {
        [] => false,
        ["volatile"] => true,
        other => {
            return Err(AsmError::new(
                line,
                format!("unknown memory suffix .{}", other.join(".")),
            ))
        }
    };
    Ok((space, vol))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPIN: &str = r#"
        ; Figure 7a busy-wait loop, in our syntax.
        .kernel spin
        .regs 30
        .params 1
            ld.param r29, [0]
            mov r21, 0
        BB2:
            atom.global.cas r15, [r29], 0, 1 !acquire !sync
            setp.eq.s32 p2, r15, 0
        @p2 bra BB3
            bra BB4
        BB3:
            mov r21, 1          ; critical section
        BB4:
            setp.eq.s16 p3, r21, 0
        @p3 bra BB2 !sib !sync
            exit
    "#;

    // Note: .s16 is not in our ISA; keep sources 32-bit.
    const SPIN_FIXED: &str = r#"
        .kernel spin
        .regs 30
        .params 1
            ld.param r29, [0]
            mov r21, 0
        BB2:
            atom.global.cas r15, [r29], 0, 1 !acquire !sync
            setp.eq.s32 p2, r15, 0
        @p2 bra BB3
            bra BB4
        BB3:
            mov r21, 1
        BB4:
            setp.eq.s32 p3, r21, 0
        @p3 bra BB2 !sib !sync
            exit
    "#;

    #[test]
    fn rejects_unknown_type_suffix() {
        assert!(assemble(SPIN).is_err());
    }

    #[test]
    fn assembles_figure7a_loop() {
        let k = assemble(SPIN_FIXED).unwrap();
        assert_eq!(k.name, "spin");
        assert_eq!(k.insts.len(), 10);
        assert_eq!(k.labels["BB2"], 2);
        // The !sib branch is the backward branch at index 8.
        assert_eq!(k.true_sibs, vec![8]);
        assert_eq!(k.backward_branches(), vec![8]);
        // CAS annotation.
        assert!(k.insts[2].ann.acquire);
        assert!(k.insts[2].ann.sync);
        // Guarded branch at 4 targets BB3 (index 6).
        assert_eq!(k.insts[4].target, Some(6));
        assert_eq!(k.insts[4].guard, Some((Pred(2), true)));
        // Reconvergence of the if/else at the BB4 setp (index 7).
        assert_eq!(k.reconv[4], 7);
    }

    #[test]
    fn parses_all_operand_kinds() {
        let k = assemble(
            r#"
            .kernel ops
            .regs 8
                mov r1, %tid
                mov r2, -5
                mov r3, 0x10
                mov r4, 1.5
                mov r5, 2f
                add.u32 r1, r1, r2
                ld.global.volatile r2, [r1+8]
                st.shared [r1-4], r3
                selp r1, r2, r3, p0
                clock r6
                exit
            "#,
        )
        .unwrap();
        assert_eq!(k.insts[1].srcs[0], Operand::imm_i32(-5));
        assert_eq!(k.insts[2].srcs[0], Operand::Imm(0x10));
        assert_eq!(k.insts[3].srcs[0], Operand::imm_f32(1.5));
        assert_eq!(k.insts[4].srcs[0], Operand::imm_f32(2.0));
        assert_eq!(k.insts[6].op, Op::Ld(Space::Global, true));
        assert_eq!(k.insts[6].addr, Some(MemAddr::new(Reg(1), 8)));
        assert_eq!(k.insts[7].addr, Some(MemAddr::new(Reg(1), -4)));
    }

    #[test]
    fn negated_guard() {
        let k = assemble(
            r#"
            .kernel g
            .regs 4
            top:
            @!p1 bra top
                exit
            "#,
        )
        .unwrap();
        assert_eq!(k.insts[0].guard, Some((Pred(1), false)));
    }

    #[test]
    fn error_reports_line() {
        let err = assemble(".kernel x\n.regs 4\n    bogus r1, r2\n    exit").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("bogus"));
    }

    #[test]
    fn unknown_label_is_error() {
        let err = assemble(".kernel x\n.regs 4\n bra nowhere\n exit").unwrap_err();
        assert!(err.msg.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_error() {
        let err = assemble(".kernel x\na:\na:\n exit").unwrap_err();
        assert!(err.msg.contains("duplicate"));
    }

    #[test]
    fn comments_everywhere() {
        let k = assemble(
            "; top\n.kernel c // name\n.regs 4 # regs\n mov r1, 2 ; set\n exit\n",
        )
        .unwrap();
        assert_eq!(k.insts.len(), 2);
    }

    #[test]
    fn atom_operand_counts() {
        // cas needs 2 value operands, exch 1.
        assert!(assemble(".kernel a\n.regs 4\n atom.global.cas r1, [r2], 0\n exit").is_err());
        let k =
            assemble(".kernel a\n.regs 4\n atom.global.exch r1, [r2], 0\n exit").unwrap();
        assert_eq!(k.insts[0].srcs.len(), 1);
    }

    #[test]
    fn disasm_reassembles() {
        let k = assemble(SPIN_FIXED).unwrap();
        let d = k.disasm();
        let k2 = assemble(&d).unwrap();
        assert_eq!(k.insts.len(), k2.insts.len());
        for (a, b) in k.insts.iter().zip(&k2.insts) {
            assert_eq!(a.op, b.op, "{a} vs {b}");
            assert_eq!(a.target, b.target);
            assert_eq!(a.srcs, b.srcs);
        }
    }
}
