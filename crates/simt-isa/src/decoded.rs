//! Pre-decoded micro-op stream: the flat, hot-path form of a kernel.
//!
//! The `Inst` form is optimized for assembly, linting and display: operands
//! live in `Vec`s, opcodes carry nested type parameters, and every consumer
//! re-derives what it needs (source-register lists, branch direction,
//! reconvergence points) on each use. The SM's issue/execute path runs that
//! derivation once per instruction *per cycle*, which is pure overhead.
//!
//! [`DecodedKernel::decode`] lowers a validated [`Kernel`] once, at launch,
//! into a dense [`DecodedInst`] table:
//!
//! * scoreboard hazard masks (`reg_mask`/`pred_mask`) are precomputed, so
//!   eligibility checks are four ANDs instead of a `Vec`-allocating walk over
//!   the operand list;
//! * sources are a fixed `[Operand; 3]` (absent slots read as `Imm(0)`,
//!   matching the executor's defaults), destinations and predicates are
//!   unwrapped, and the address operand is split into base/offset fields;
//! * ALU opcodes resolve to a monomorphic `fn(u32, u32, u32) -> u32` so the
//!   per-lane loop makes one indirect call instead of a nested `Op`/`Ty`
//!   match;
//! * branches carry their reconvergence pc, direction and distance;
//! * a lane-uniformity hint marks instructions whose sources cannot vary
//!   across the warp, letting the executor evaluate once and broadcast.
//!
//! Decoding relies on the operand-shape validation that every kernel passes
//! before launch (`Kernel::validate` / `Kernel::from_insts`): a class that
//! requires a destination or address is guaranteed to have one.

use crate::{AtomOp, CmpOp, Inst, Kernel, Op, OpClass, Operand, Pred, Reg, Space, Special, Ty};

/// Monomorphic ALU evaluator: `(a, b, c) -> result`.
pub type AluFn = fn(u32, u32, u32) -> u32;

/// Executor dispatch class with pre-resolved payloads. One flat match in the
/// SM replaces the nested `Op`/`Space` matches of the `Inst` path.
#[derive(Debug, Clone, Copy)]
pub enum ExecClass {
    /// Register-writing ALU op; the payload evaluates one lane.
    Alu(AluFn),
    /// Predicate-select between two sources.
    Selp,
    /// Predicate-writing compare.
    Setp(CmpOp, Ty),
    /// Predicate logic over `psrc0`/`psrc1`.
    PAnd,
    POr,
    PNot,
    /// Branch to `target` (reconvergence at `rpc`).
    Bra,
    /// Parameter-space load.
    LdParam,
    /// Shared-memory load.
    LdShared,
    /// Global load; `bypass_l1` for volatile accesses.
    LdGlobal { bypass_l1: bool },
    /// Store to param space is a kernel bug the executor reports.
    StParam,
    StShared,
    StGlobal,
    /// Global atomic.
    Atom(AtomOp),
    Bar,
    Membar,
    Clock,
    Exit,
    Nop,
}

/// One pre-decoded instruction. All fields are flat and `Copy`; fields that
/// a class does not use hold harmless defaults (`Reg(0)`, `Pred(0)`, zero).
#[derive(Debug, Clone, Copy)]
pub struct DecodedInst {
    /// Executor dispatch class.
    pub class: ExecClass,
    /// Latency/statistics class (from [`Op::class`]).
    pub op_class: OpClass,
    /// Sources, padded with `Imm(0)` (the executor's default for absent
    /// operands).
    pub srcs: [Operand; 3],
    /// Destination register, when the class writes one.
    pub dst: Reg,
    /// Destination predicate (`setp` / predicate logic).
    pub pdst: Pred,
    /// First predicate source (`selp` select, `pand`/`por`/`pnot` input).
    pub psrc0: Pred,
    /// Second predicate source (`pand`/`por`).
    pub psrc1: Pred,
    /// `@p` / `@!p` guard.
    pub guard: Option<(Pred, bool)>,
    /// Memory address base register, when the address has one.
    pub addr_base: Option<Reg>,
    /// Memory address byte offset.
    pub addr_off: i32,
    /// Branch target (instruction index).
    pub target: usize,
    /// Reconvergence pc for this instruction's branch.
    pub rpc: usize,
    /// `target <= pc`: a backward branch.
    pub backward: bool,
    /// `pc - target` for backward branches, else 0.
    pub branch_distance: usize,
    /// Scoreboard register read/write set as bit mask (sources, address
    /// base, and destination — matching `Inst::src_regs` + `dst`).
    pub reg_mask: [u64; 4],
    /// Scoreboard predicate read/write set (psrcs, guard, pdst).
    pub pred_mask: u8,
    /// `!acquire` annotation.
    pub acquire: bool,
    /// `!release` annotation.
    pub release: bool,
    /// `!wait` annotation.
    pub wait: bool,
    /// `!sync` annotation.
    pub sync: bool,
    /// All sources are warp-invariant (immediates or warp-uniform specials):
    /// the executor may evaluate once and broadcast.
    pub uniform: bool,
}

/// A kernel lowered to its dense decoded form. Index with the warp's pc;
/// the table is parallel to `Kernel::insts`.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    /// One entry per instruction, same indices as `Kernel::insts`.
    pub insts: Vec<DecodedInst>,
}

impl DecodedKernel {
    /// Lower `kernel` (already shape-validated) into its decoded table.
    pub fn decode(kernel: &Kernel) -> DecodedKernel {
        let insts = kernel
            .insts
            .iter()
            .enumerate()
            .map(|(pc, inst)| decode_inst(pc, inst, kernel))
            .collect();
        DecodedKernel { insts }
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// True if evaluating `s` yields the same value for every lane of a warp.
/// Register sources vary per thread; `%tid`, `%laneid` and `%gtid` vary per
/// lane; the remaining specials are constant across one warp's lanes.
fn operand_is_warp_uniform(s: &Operand) -> bool {
    match s {
        Operand::Reg(_) => false,
        Operand::Imm(_) => true,
        Operand::Special(sp) => !matches!(
            sp,
            Special::TidX | Special::LaneId | Special::GlobalTid
        ),
    }
}

fn decode_inst(pc: usize, inst: &Inst, kernel: &Kernel) -> DecodedInst {
    use Op::*;
    let class = match inst.op {
        Mov | Add(_) | Sub(_) | Mul(_) | Mad(_) | Div(_) | Rem(_) | Min(_) | Max(_) | And
        | Or | Xor | Not | Neg(_) | Shl | Shr | Sra | Sqrt | CvtI2F | CvtF2I => {
            ExecClass::Alu(alu_fn(inst.op))
        }
        Selp => ExecClass::Selp,
        Setp(c, t) => ExecClass::Setp(c, t),
        PAnd => ExecClass::PAnd,
        POr => ExecClass::POr,
        PNot => ExecClass::PNot,
        Bra => ExecClass::Bra,
        Ld(Space::Param, _) => ExecClass::LdParam,
        Ld(Space::Shared, _) => ExecClass::LdShared,
        Ld(Space::Global, v) => ExecClass::LdGlobal { bypass_l1: v },
        St(Space::Param, _) => ExecClass::StParam,
        St(Space::Shared, _) => ExecClass::StShared,
        St(Space::Global, _) => ExecClass::StGlobal,
        Atom(a) => ExecClass::Atom(a),
        Bar => ExecClass::Bar,
        Membar => ExecClass::Membar,
        Clock => ExecClass::Clock,
        Exit => ExecClass::Exit,
        Nop => ExecClass::Nop,
    };
    let mut srcs = [Operand::Imm(0); 3];
    for (slot, s) in inst.srcs.iter().take(3).enumerate() {
        srcs[slot] = *s;
    }
    let mut reg_mask = [0u64; 4];
    let mut set_reg = |r: Reg| reg_mask[(r.0 >> 6) as usize] |= 1u64 << (r.0 & 63);
    for r in inst.src_regs() {
        set_reg(r);
    }
    if let Some(d) = inst.dst {
        set_reg(d);
    }
    let mut pred_mask = 0u8;
    for p in &inst.psrcs {
        pred_mask |= 1 << (p.0 & 7);
    }
    if let Some((p, _)) = inst.guard {
        pred_mask |= 1 << (p.0 & 7);
    }
    if let Some(p) = inst.pdst {
        pred_mask |= 1 << (p.0 & 7);
    }
    let target = inst.target.unwrap_or(0);
    let backward = matches!(inst.op, Bra) && target <= pc;
    let uniform = matches!(class, ExecClass::Alu(_))
        && inst.srcs.iter().all(operand_is_warp_uniform);
    DecodedInst {
        class,
        op_class: inst.op.class(),
        srcs,
        dst: inst.dst.unwrap_or(Reg(0)),
        pdst: inst.pdst.unwrap_or(Pred(0)),
        psrc0: inst.psrcs.first().copied().unwrap_or(Pred(0)),
        psrc1: inst.psrcs.get(1).copied().unwrap_or(Pred(0)),
        guard: inst.guard,
        addr_base: inst.addr.and_then(|a| a.base),
        addr_off: inst.addr.map(|a| a.offset).unwrap_or(0),
        target,
        rpc: kernel.reconv.get(pc).copied().unwrap_or(crate::RECONV_EXIT),
        backward,
        branch_distance: if backward { pc - target } else { 0 },
        reg_mask,
        pred_mask,
        acquire: inst.ann.acquire,
        release: inst.ann.release,
        wait: inst.ann.wait,
        sync: inst.ann.sync,
        uniform,
    }
}

/// The monomorphic evaluator for an ALU opcode. Semantics are the single
/// source of truth for both engines: F32 ops reinterpret register bits,
/// integer division by zero yields `u32::MAX`, remainder by zero yields the
/// dividend, shifts mask their count to 5 bits.
///
/// # Panics
///
/// On a non-ALU opcode — callers dispatch those to their own classes.
pub fn alu_fn(op: Op) -> AluFn {
    fn f(x: u32) -> f32 {
        f32::from_bits(x)
    }
    match op {
        Op::Mov => |a, _, _| a,
        Op::Add(Ty::F32) => |a, b, _| (f(a) + f(b)).to_bits(),
        Op::Add(_) => |a, b, _| a.wrapping_add(b),
        Op::Sub(Ty::F32) => |a, b, _| (f(a) - f(b)).to_bits(),
        Op::Sub(_) => |a, b, _| a.wrapping_sub(b),
        Op::Mul(Ty::F32) => |a, b, _| (f(a) * f(b)).to_bits(),
        Op::Mul(_) => |a, b, _| a.wrapping_mul(b),
        Op::Mad(Ty::F32) => |a, b, c| (f(a) * f(b) + f(c)).to_bits(),
        Op::Mad(_) => |a, b, c| a.wrapping_mul(b).wrapping_add(c),
        Op::Div(Ty::F32) => |a, b, _| (f(a) / f(b)).to_bits(),
        Op::Div(Ty::U32) => |a, b, _| a.checked_div(b).unwrap_or(u32::MAX),
        Op::Div(Ty::S32) => |a, b, _| {
            if b == 0 {
                u32::MAX
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        },
        Op::Rem(Ty::U32) => |a, b, _| if b == 0 { a } else { a % b },
        Op::Rem(_) => |a, b, _| {
            if b == 0 {
                a
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        },
        Op::Min(Ty::F32) => |a, b, _| f(a).min(f(b)).to_bits(),
        Op::Min(Ty::U32) => |a, b, _| a.min(b),
        Op::Min(_) => |a, b, _| ((a as i32).min(b as i32)) as u32,
        Op::Max(Ty::F32) => |a, b, _| f(a).max(f(b)).to_bits(),
        Op::Max(Ty::U32) => |a, b, _| a.max(b),
        Op::Max(_) => |a, b, _| ((a as i32).max(b as i32)) as u32,
        Op::And => |a, b, _| a & b,
        Op::Or => |a, b, _| a | b,
        Op::Xor => |a, b, _| a ^ b,
        Op::Not => |a, _, _| !a,
        Op::Neg(Ty::F32) => |a, _, _| (-f(a)).to_bits(),
        Op::Neg(_) => |a, _, _| (a as i32).wrapping_neg() as u32,
        Op::Shl => |a, b, _| a.wrapping_shl(b & 31),
        Op::Shr => |a, b, _| a.wrapping_shr(b & 31),
        Op::Sra => |a, b, _| ((a as i32).wrapping_shr(b & 31)) as u32,
        Op::Sqrt => |a, _, _| f(a).sqrt().to_bits(),
        Op::CvtI2F => |a, _, _| (a as i32 as f32).to_bits(),
        Op::CvtF2I => |a, _, _| (f(a) as i32) as u32,
        other => unreachable!("{other:?} is not an ALU op"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemAddr;

    fn decode_kernel(body: Vec<Inst>) -> DecodedKernel {
        let k = Kernel::from_insts("t", body, std::collections::HashMap::new(), 128, 4, 0)
            .expect("valid kernel");
        DecodedKernel::decode(&k)
    }

    fn decode_one(inst: Inst) -> DecodedInst {
        decode_kernel(vec![inst, Inst::new(Op::Exit)]).insts[0]
    }

    #[test]
    fn hazard_masks_cover_sources_dest_and_addr_base() {
        let d = decode_one(Inst::st(Space::Global, MemAddr::new(Reg(2), 4), Reg(67)));
        assert_ne!(d.reg_mask[0] & (1 << 2), 0, "addr base r2");
        assert_ne!(d.reg_mask[1] & (1 << 3), 0, "value source r67");
        let d = decode_one(Inst::binary(Op::Add(Ty::S32), Reg(1), Reg(5), 7));
        assert_ne!(d.reg_mask[0] & (1 << 1), 0, "dst r1 (WAW)");
        assert_ne!(d.reg_mask[0] & (1 << 5), 0, "src r5");
    }

    #[test]
    fn pred_masks_cover_guard_and_pdst() {
        let mut i = Inst::setp(CmpOp::Eq, Ty::S32, Pred(2), Reg(1), 0);
        i.guard = Some((Pred(5), true));
        let d = decode_one(i);
        assert_eq!(d.pred_mask, (1 << 2) | (1 << 5));
    }

    #[test]
    fn branch_direction_and_distance() {
        let dk = decode_kernel(vec![Inst::mov(Reg(0), 1), Inst::bra(0), Inst::new(Op::Exit)]);
        let d = &dk.insts[1];
        assert!(d.backward);
        assert_eq!(d.target, 0);
        assert_eq!(d.branch_distance, 1);
    }

    #[test]
    fn uniformity_hint() {
        assert!(decode_one(Inst::mov(Reg(0), 7)).uniform, "imm is uniform");
        assert!(
            decode_one(Inst::mov(Reg(0), Special::CtaIdX)).uniform,
            "ctaid is warp-uniform"
        );
        assert!(
            !decode_one(Inst::mov(Reg(0), Special::TidX)).uniform,
            "tid varies per lane"
        );
        assert!(
            !decode_one(Inst::binary(Op::Add(Ty::S32), Reg(1), Reg(2), 1)).uniform,
            "register sources vary per thread"
        );
    }

    #[test]
    fn alu_fn_matches_reference_semantics() {
        assert_eq!(alu_fn(Op::Add(Ty::S32))(2, 3, 0), 5);
        assert_eq!(alu_fn(Op::Div(Ty::S32))(7, 0, 0), u32::MAX);
        assert_eq!(alu_fn(Op::Div(Ty::U32))(7, 0, 0), u32::MAX);
        assert_eq!(alu_fn(Op::Rem(Ty::U32))(7, 0, 0), 7);
        assert_eq!(alu_fn(Op::Shl)(1, 37, 0), 32, "shift count masked to 5 bits");
        let b = |x: f32| x.to_bits();
        assert_eq!(alu_fn(Op::Mad(Ty::F32))(b(2.0), b(3.0), b(1.0)), b(7.0));
    }
}
