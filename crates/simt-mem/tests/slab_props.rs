//! Property-style tests for the slab structures that back the hot path:
//! [`TagSlab`] (pending-memory state) and [`ProbeMap`] (line-keyed lock and
//! park tables). Each is driven through randomized insert/lookup/remove
//! churn against a `BTreeMap` reference model, and mid-flight states — with
//! non-trivial free lists and probe displacement — are round-tripped through
//! the snapshot format to prove the layout survives verbatim.
//!
//! Uses a local deterministic PRNG rather than an external property-test
//! framework so the suite builds and runs fully offline.

use simt_mem::{ProbeMap, TagSlab};
use simt_snap::{SnapReader, SnapWriter};
use std::collections::BTreeMap;

/// Deterministic splitmix64 generator for test-case construction.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Drive a `TagSlab` and a `BTreeMap` model through the same churn and
/// return both, so callers can keep asserting on the final state.
fn churned_slab(seed: u64, ops: usize) -> (TagSlab<u64>, BTreeMap<u64, u64>) {
    let mut rng = Rng::new(seed);
    let mut slab: TagSlab<u64> = TagSlab::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut live: Vec<u64> = Vec::new();
    let mut next_val = 0u64;
    for _ in 0..ops {
        match rng.range(0, 10) {
            // Insert-heavy so slots recycle and generations advance.
            0..=4 => {
                let v = next_val;
                next_val += 1;
                let tag = slab.insert(v);
                assert!(
                    model.insert(tag, v).is_none(),
                    "slab reissued live tag {tag:#x}"
                );
                live.push(tag);
            }
            5..=7 if !live.is_empty() => {
                let i = rng.range(0, live.len() as u64) as usize;
                let tag = live.swap_remove(i);
                let expect = model.remove(&tag);
                assert_eq!(slab.remove(tag), expect);
                // A removed tag must be dead: its generation was retired.
                assert_eq!(slab.get(tag), None);
                assert_eq!(slab.remove(tag), None);
            }
            _ if !live.is_empty() => {
                let i = rng.range(0, live.len() as u64) as usize;
                let tag = live[i];
                assert_eq!(slab.get(tag), model.get(&tag));
                if let Some(v) = slab.get_mut(tag) {
                    *v = v.wrapping_add(1);
                    *model.get_mut(&tag).unwrap() += 1;
                }
            }
            _ => {}
        }
        assert_eq!(slab.len(), model.len());
        assert_eq!(slab.is_empty(), model.is_empty());
    }
    (slab, model)
}

/// The slab agrees with a `BTreeMap` model on every lookup, length and
/// removal across randomized churn, and never reissues a live tag.
#[test]
fn tag_slab_matches_model() {
    for seed in 0..48 {
        let (slab, model) = churned_slab(seed, 400);
        let from_iter: BTreeMap<u64, u64> = slab.iter().map(|(t, &v)| (t, v)).collect();
        assert_eq!(from_iter, model);
    }
}

/// Slab iteration is in slot order: the same op sequence always yields the
/// same sequence, and the order is a pure function of the structure (two
/// instances built identically iterate identically).
#[test]
fn tag_slab_iteration_deterministic() {
    for seed in 0..16 {
        let (a, _) = churned_slab(seed, 300);
        let (b, _) = churned_slab(seed, 300);
        let seq_a: Vec<(u64, u64)> = a.iter().map(|(t, &v)| (t, v)).collect();
        let seq_b: Vec<(u64, u64)> = b.iter().map(|(t, &v)| (t, v)).collect();
        assert_eq!(seq_a, seq_b);
        // Slot order == ascending (generation-stripped) slot index.
        let slots: Vec<u64> = seq_a.iter().map(|&(t, _)| t & 0xffff_ffff).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(slots, sorted, "seed {seed}: iteration not in slot order");
    }
}

/// A mid-flight slab — holes in the slot array, a populated free list —
/// survives a snapshot round-trip verbatim: same lookups, same iteration
/// order, byte-identical re-serialization, and bit-identical future tag
/// assignment (the free-list order is part of the contract).
#[test]
fn tag_slab_snapshot_round_trip() {
    for seed in 100..116 {
        let (mut slab, model) = churned_slab(seed, 500);
        let mut w = SnapWriter::new();
        slab.save_snap(&mut w, |w, v| w.u64(*v));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        let mut restored: TagSlab<u64> = TagSlab::load_snap(&mut r, |r| r.u64()).unwrap();
        r.expect_exhausted().unwrap();

        assert_eq!(restored.len(), slab.len());
        let orig: Vec<(u64, u64)> = slab.iter().map(|(t, &v)| (t, v)).collect();
        let back: Vec<(u64, u64)> = restored.iter().map(|(t, &v)| (t, v)).collect();
        assert_eq!(orig, back, "seed {seed}: iteration changed across restore");
        for (&tag, &v) in &model {
            assert_eq!(restored.get(tag), Some(&v));
        }

        // Re-serializing the restored slab reproduces the bytes exactly.
        let mut w2 = SnapWriter::new();
        restored.save_snap(&mut w2, |w, v| w.u64(*v));
        assert_eq!(w2.into_bytes(), bytes, "seed {seed}: snapshot not verbatim");

        // Tag assignment after restore matches the original trajectory.
        for i in 0..8 {
            assert_eq!(slab.insert(i), restored.insert(i), "seed {seed}: tag divergence");
        }
    }
}

/// Drive a `ProbeMap` and a `BTreeMap` model through the same churn. Keys
/// mimic the simulator's line addresses (small multiples of the line size)
/// so probe chains actually collide and backward-shift deletion runs.
fn churned_probe(seed: u64, ops: usize) -> (ProbeMap<u64>, BTreeMap<u64, u64>) {
    let mut rng = Rng::new(seed);
    let mut map: ProbeMap<u64> = ProbeMap::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..ops {
        let key = rng.range(0, 96) * 128;
        match rng.range(0, 10) {
            0..=4 => {
                let v = rng.next();
                map.insert(key, v);
                model.insert(key, v);
            }
            5..=6 => {
                assert_eq!(map.remove(key), model.remove(&key));
            }
            7 => {
                let v = *map.get_or_insert_with(key, || key ^ 0x5a5a);
                let mv = *model.entry(key).or_insert(key ^ 0x5a5a);
                assert_eq!(v, mv);
            }
            _ => {
                assert_eq!(map.get(key), model.get(&key));
                assert_eq!(map.contains_key(key), model.contains_key(&key));
                if let Some(v) = map.get_mut(key) {
                    *v = v.wrapping_mul(3);
                    *model.get_mut(&key).unwrap() = *v;
                }
            }
        }
        assert_eq!(map.len(), model.len());
        assert_eq!(map.is_empty(), model.is_empty());
    }
    (map, model)
}

/// The probe map agrees with a `BTreeMap` model on get/insert/remove/
/// contains across randomized churn with real collisions.
#[test]
fn probe_map_matches_model() {
    for seed in 0..48 {
        let (map, model) = churned_probe(seed, 500);
        let from_iter: BTreeMap<u64, u64> = map.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(from_iter, model);
        let values: Vec<u64> = map.values().copied().collect();
        assert_eq!(values.len(), model.len());
    }
}

/// Probe-map iteration is a pure function of the insertion/removal history:
/// replaying the same ops yields the same slot order.
#[test]
fn probe_map_iteration_deterministic() {
    for seed in 0..16 {
        let (a, _) = churned_probe(seed, 400);
        let (b, _) = churned_probe(seed, 400);
        let seq_a: Vec<(u64, u64)> = a.iter().map(|(k, &v)| (k, v)).collect();
        let seq_b: Vec<(u64, u64)> = b.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(seq_a, seq_b);
    }
}

/// A mid-flight probe map — displaced keys, post-deletion shifts, grown
/// capacity — survives a snapshot round-trip verbatim: same lookups, same
/// slot order, byte-identical re-serialization.
#[test]
fn probe_map_snapshot_round_trip() {
    for seed in 200..216 {
        let (map, model) = churned_probe(seed, 600);
        let mut w = SnapWriter::new();
        map.save_snap(&mut w, |w, v| w.u64(*v));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        let mut restored: ProbeMap<u64> = ProbeMap::load_snap(&mut r, |r| r.u64()).unwrap();
        r.expect_exhausted().unwrap();

        assert_eq!(restored.len(), map.len());
        let orig: Vec<(u64, u64)> = map.iter().map(|(k, &v)| (k, v)).collect();
        let back: Vec<(u64, u64)> = restored.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(orig, back, "seed {seed}: slot order changed across restore");
        for (&k, &v) in &model {
            assert_eq!(restored.get(k), Some(&v));
        }

        let mut w2 = SnapWriter::new();
        restored.save_snap(&mut w2, |w, v| w.u64(*v));
        assert_eq!(w2.into_bytes(), bytes, "seed {seed}: snapshot not verbatim");

        // The restored table keeps probing correctly under further churn.
        restored.insert(96 * 128, 1);
        assert_eq!(restored.get(96 * 128), Some(&1));
    }
}

/// An empty map snapshots and restores with zero capacity (no allocation).
#[test]
fn probe_map_empty_round_trip() {
    let map: ProbeMap<u64> = ProbeMap::new();
    let mut w = SnapWriter::new();
    map.save_snap(&mut w, |w, v| w.u64(*v));
    let bytes = w.into_bytes();
    let mut r = SnapReader::new(&bytes);
    let restored: ProbeMap<u64> = ProbeMap::load_snap(&mut r, |r| r.u64()).unwrap();
    assert!(restored.is_empty());
    assert_eq!(restored.iter().count(), 0);
}
