//! Property-based tests for the memory hierarchy: cache bounds and LRU
//! equivalence against a reference model, coalescer invariants, MSHR
//! bookkeeping, and end-to-end request conservation.

use proptest::prelude::*;
use simt_mem::{
    line_of, AccessOutcome, Cache, Coalescer, LaneAccess, MemConfig, MemRequest, MemorySystem,
    Mshr, ReqKind, LINE_BYTES,
};

proptest! {
    /// The cache never exceeds its capacity and agrees with a simple
    /// reference LRU model on hits and misses.
    #[test]
    fn cache_matches_reference_lru(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        // 8 lines, 2-way => 4 sets.
        let mut c = Cache::new(8 * LINE_BYTES, 2);
        let sets = 4usize;
        // Reference: per set, a Vec kept in LRU order (front = MRU).
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for (line_no, is_fill) in ops {
            let addr = line_no * LINE_BYTES;
            let set = (line_no as usize) % sets;
            if is_fill {
                c.fill(addr);
                let s = &mut model[set];
                if let Some(pos) = s.iter().position(|&l| l == line_no) {
                    s.remove(pos);
                } else if s.len() == 2 {
                    s.pop();
                }
                s.insert(0, line_no);
            } else {
                let got = c.access(addr);
                let s = &mut model[set];
                let expect = if let Some(pos) = s.iter().position(|&l| l == line_no) {
                    let v = s.remove(pos);
                    s.insert(0, v);
                    AccessOutcome::Hit
                } else {
                    AccessOutcome::Miss
                };
                prop_assert_eq!(got, expect, "line {}", line_no);
            }
            prop_assert!(c.occupancy() <= 8);
        }
    }

    /// Coalescing covers every input lane exactly once and produces at most
    /// one transaction per distinct line.
    #[test]
    fn coalescer_partitions_lanes(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..32)
    ) {
        let accesses: Vec<LaneAccess> = addrs
            .iter()
            .enumerate()
            .map(|(l, &a)| LaneAccess { lane: l as u8, addr: a })
            .collect();
        let txs = Coalescer::coalesce(&accesses);
        // Each lane appears in exactly one transaction.
        let union: u32 = txs.iter().fold(0, |m, t| m | t.lane_mask);
        let total: u32 = txs.iter().map(|t| t.lane_mask.count_ones()).sum();
        prop_assert_eq!(union.count_ones(), accesses.len() as u32);
        prop_assert_eq!(total, accesses.len() as u32);
        // Transactions have distinct, line-aligned addresses containing
        // their lanes' addresses.
        for (i, t) in txs.iter().enumerate() {
            prop_assert_eq!(t.line % LINE_BYTES, 0);
            for u in &txs[i + 1..] {
                prop_assert_ne!(t.line, u.line);
            }
        }
        for a in &accesses {
            let line = line_of(a.addr);
            let t = txs.iter().find(|t| t.line == line).expect("line present");
            prop_assert!(t.lane_mask & (1 << a.lane) != 0);
        }
    }

    /// MSHR: fills release exactly the recorded tags, in order, and
    /// occupancy tracks distinct lines.
    #[test]
    fn mshr_releases_what_was_recorded(
        ops in proptest::collection::vec((0u64..8, 0u64..1000), 1..100)
    ) {
        let mut m = Mshr::new(8);
        let mut model: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for (line_no, tag) in ops {
            let line = line_no * LINE_BYTES;
            if m.pending(line) || m.has_space() {
                m.record(line, tag);
                model.entry(line).or_default().push(tag);
            }
            prop_assert_eq!(m.in_flight(), model.len());
        }
        let lines: Vec<u64> = model.keys().copied().collect();
        for line in lines {
            let got = m.fill(line);
            prop_assert_eq!(got, model.remove(&line).unwrap());
        }
        prop_assert_eq!(m.in_flight(), 0);
    }

    /// Every enqueued load/store/atomic completes exactly once, regardless
    /// of the mix, and the system goes quiescent.
    #[test]
    fn memory_system_conserves_requests(
        reqs in proptest::collection::vec((0u64..64, 0u8..3, any::<bool>()), 1..60)
    ) {
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        mem.gmem_mut().alloc(64 * 32);
        let mut expected: Vec<u64> = Vec::new();
        for (i, (line_no, kind, sm1)) in reqs.iter().enumerate() {
            let addr = line_no * LINE_BYTES;
            let tag = i as u64;
            let kind = match kind {
                0 => ReqKind::Load { bypass_l1: false },
                1 => ReqKind::Store,
                _ => ReqKind::Atomic {
                    ops: vec![simt_mem::LaneAtomic::new(
                        0,
                        addr,
                        simt_isa::AtomOp::Add,
                        1,
                        0,
                    )],
                },
            };
            mem.enqueue(usize::from(*sm1), MemRequest::new(kind, addr, tag), 0);
            expected.push(tag);
        }
        let mut completed: Vec<u64> = Vec::new();
        let mut now = 0u64;
        while (!mem.quiescent() || completed.len() < expected.len()) && now < 200_000 {
            completed.extend(mem.cycle(now).into_iter().map(|c| c.tag));
            now += 1;
        }
        completed.sort_unstable();
        prop_assert_eq!(completed, expected);
        prop_assert!(mem.quiescent());
    }
}
