//! Property-style tests for the memory hierarchy: cache bounds and LRU
//! equivalence against a reference model, coalescer invariants, MSHR
//! bookkeeping, and end-to-end request conservation.
//!
//! Uses a local deterministic PRNG rather than an external property-test
//! framework so the suite builds and runs fully offline.

use simt_mem::{
    line_of, AccessOutcome, Cache, Coalescer, LaneAccess, MemConfig, MemRequest, MemorySystem,
    Mshr, ReqKind, LINE_BYTES,
};

/// Deterministic splitmix64 generator for test-case construction.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// The cache never exceeds its capacity and agrees with a simple reference
/// LRU model on hits and misses.
#[test]
fn cache_matches_reference_lru() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed);
        // 8 lines, 2-way => 4 sets.
        let mut c = Cache::new(8 * LINE_BYTES, 2);
        let sets = 4usize;
        // Reference: per set, a Vec kept in LRU order (front = MRU).
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        let nops = rng.range(1, 300);
        for _ in 0..nops {
            let line_no = rng.range(0, 64);
            let is_fill = rng.flag();
            let addr = line_no * LINE_BYTES;
            let set = (line_no as usize) % sets;
            if is_fill {
                c.fill(addr);
                let s = &mut model[set];
                if let Some(pos) = s.iter().position(|&l| l == line_no) {
                    s.remove(pos);
                } else if s.len() == 2 {
                    s.pop();
                }
                s.insert(0, line_no);
            } else {
                let got = c.access(addr);
                let s = &mut model[set];
                let expect = if let Some(pos) = s.iter().position(|&l| l == line_no) {
                    let v = s.remove(pos);
                    s.insert(0, v);
                    AccessOutcome::Hit
                } else {
                    AccessOutcome::Miss
                };
                assert_eq!(got, expect, "seed {seed} line {line_no}");
            }
            assert!(c.occupancy() <= 8);
        }
    }
}

/// Coalescing covers every input lane exactly once and produces at most
/// one transaction per distinct line.
#[test]
fn coalescer_partitions_lanes() {
    for seed in 0..128 {
        let mut rng = Rng::new(seed);
        let nlanes = rng.range(1, 32) as usize;
        let accesses: Vec<LaneAccess> = (0..nlanes)
            .map(|l| LaneAccess {
                lane: l as u8,
                addr: rng.range(0, 1 << 16),
            })
            .collect();
        let txs = Coalescer::coalesce(&accesses);
        // Each lane appears in exactly one transaction.
        let union: u32 = txs.iter().fold(0, |m, t| m | t.lane_mask);
        let total: u32 = txs.iter().map(|t| t.lane_mask.count_ones()).sum();
        assert_eq!(union.count_ones(), accesses.len() as u32, "seed {seed}");
        assert_eq!(total, accesses.len() as u32, "seed {seed}");
        // Transactions have distinct, line-aligned addresses containing
        // their lanes' addresses.
        for (i, t) in txs.iter().enumerate() {
            assert_eq!(t.line % LINE_BYTES, 0);
            for u in &txs[i + 1..] {
                assert_ne!(t.line, u.line);
            }
        }
        for a in &accesses {
            let line = line_of(a.addr);
            let t = txs.iter().find(|t| t.line == line).expect("line present");
            assert!(t.lane_mask & (1 << a.lane) != 0);
        }
    }
}

/// MSHR: fills release exactly the recorded tags, in order, and occupancy
/// tracks distinct lines.
#[test]
fn mshr_releases_what_was_recorded() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed);
        let mut m = Mshr::new(8);
        let mut model: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        let nops = rng.range(1, 100);
        for _ in 0..nops {
            let line = rng.range(0, 8) * LINE_BYTES;
            let tag = rng.range(0, 1000);
            if m.pending(line) || m.has_space() {
                m.record(line, tag);
                model.entry(line).or_default().push(tag);
            }
            assert_eq!(m.in_flight(), model.len(), "seed {seed}");
        }
        let lines: Vec<u64> = model.keys().copied().collect();
        for line in lines {
            let got = m.fill(line);
            assert_eq!(got, model.remove(&line).unwrap(), "seed {seed}");
        }
        assert_eq!(m.in_flight(), 0);
    }
}

/// Every enqueued load/store/atomic completes exactly once, regardless of
/// the mix, and the system goes quiescent.
#[test]
fn memory_system_conserves_requests() {
    for seed in 0..24 {
        let mut rng = Rng::new(seed);
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        mem.gmem_mut().alloc(64 * 32);
        let nreqs = rng.range(1, 60);
        let mut expected: Vec<u64> = Vec::new();
        for i in 0..nreqs {
            let addr = rng.range(0, 64) * LINE_BYTES;
            let tag = i;
            let kind = match rng.range(0, 3) {
                0 => ReqKind::Load { bypass_l1: false },
                1 => ReqKind::Store,
                _ => ReqKind::Atomic {
                    ops: vec![simt_mem::LaneAtomic::new(0, addr, simt_isa::AtomOp::Add, 1, 0)],
                },
            };
            let sm = rng.range(0, 2) as usize;
            mem.enqueue(sm, MemRequest::new(kind, addr, tag), 0);
            expected.push(tag);
        }
        let mut completed: Vec<u64> = Vec::new();
        let mut now = 0u64;
        while (!mem.quiescent() || completed.len() < expected.len()) && now < 200_000 {
            completed.extend(mem.cycle(now).into_iter().map(|c| c.tag));
            now += 1;
        }
        completed.sort_unstable();
        assert_eq!(completed, expected, "seed {seed}");
        assert!(mem.quiescent());
    }
}
