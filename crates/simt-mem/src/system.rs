//! The cycle-level memory system: per-SM L1s, banked L2 partitions with
//! atomic units, and DRAM channels.

use crate::{
    line_of, Addr, AccessOutcome, Cache, ChaosEngine, ChaosStats, GlobalMem, MemConfig, MemStats,
    Mshr, ProbeMap, LINE_BYTES,
};
use simt_isa::AtomOp;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Lock-protocol role of an atomic lane operation, for the exact
/// lock-outcome classification the paper's Figures 2 and 12 report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LockRole {
    /// Not part of a lock protocol.
    #[default]
    None,
    /// A lock-acquire attempt (CAS whose compare operand is the "free"
    /// value); success is `old == compare`.
    Acquire,
    /// A lock release (the owner is cleared).
    Release,
}

/// One lane's atomic operation within a warp-level atomic request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAtomic {
    /// Lane index (0..32).
    pub lane: u8,
    /// Word address the lane operates on.
    pub addr: Addr,
    /// The read-modify-write operation.
    pub op: AtomOp,
    /// First operand (CAS compare value / add amount / exchange value...).
    pub a: u32,
    /// Second operand (CAS new value; unused otherwise).
    pub b: u32,
    /// Lock-protocol role, for outcome statistics.
    pub role: LockRole,
    /// Identity of the issuing warp (`sm << 32 | warp`), used to classify
    /// failed acquires as intra- vs inter-warp.
    pub holder: u64,
}

impl LaneAtomic {
    /// A plain atomic lane op with no lock-protocol role.
    pub fn new(lane: u8, addr: Addr, op: AtomOp, a: u32, b: u32) -> LaneAtomic {
        LaneAtomic {
            lane,
            addr,
            op,
            a,
            b,
            role: LockRole::None,
            holder: 0,
        }
    }
}

/// Kind of a coalesced memory request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqKind {
    /// A read of one line. `bypass_l1` models `ld.volatile`, which skips the
    /// (incoherent) L1 and is serviced at the L2 partition.
    Load { bypass_l1: bool },
    /// A write-through of (part of) one line.
    Store,
    /// A warp-level atomic: bypasses L1; the lane operations are applied to
    /// functional memory in lane order at the instant the request is
    /// serviced by the partition's atomic unit. That service instant is the
    /// global serialization point that makes inter-warp lock races behave
    /// as on hardware.
    Atomic { ops: Vec<LaneAtomic> },
}

/// A coalesced (single-line) memory request from an SM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRequest {
    /// Request kind.
    pub kind: ReqKind,
    /// Line-aligned address.
    pub line: Addr,
    /// Opaque tag returned in the matching [`MemCompletion`].
    pub tag: u64,
    /// Statistic annotation: this request is synchronization traffic.
    pub sync: bool,
    /// True when this is the *only* request its instruction generated.
    /// Queue-lock parking is restricted to sole requests: a warp must never
    /// block on one line while holding locks acquired through a sibling
    /// request of the same instruction (hold-and-wait would deadlock).
    pub sole: bool,
}

impl MemRequest {
    /// Build a request; `addr` may be any address within the line.
    pub fn new(kind: ReqKind, addr: Addr, tag: u64) -> MemRequest {
        MemRequest {
            kind,
            line: line_of(addr),
            tag,
            sync: false,
            sole: true,
        }
    }

    /// Mark as synchronization traffic (for overhead accounting).
    pub fn sync(mut self) -> MemRequest {
        self.sync = true;
        self
    }
}

/// Per-SM staging buffer of coalesced requests awaiting absorption.
///
/// An SM cycling on a worker thread has no access to the shared
/// [`MemorySystem`]; it pushes each request it would have enqueued here,
/// in issue order. The coordinator later replays the stages in SM-id
/// order via [`MemorySystem::absorb`], reproducing the serial enqueue
/// order exactly.
#[derive(Debug, Default)]
pub struct RequestStage {
    q: VecDeque<MemRequest>,
}

impl RequestStage {
    /// An empty stage.
    pub fn new() -> RequestStage {
        RequestStage::default()
    }

    /// Stage one request (FIFO).
    pub fn push(&mut self, req: MemRequest) {
        self.q.push_back(req);
    }

    /// Take the oldest staged request.
    pub fn pop(&mut self) -> Option<MemRequest> {
        self.q.pop_front()
    }

    /// Number of staged requests.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

/// Completion of a [`MemRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemCompletion {
    /// SM that issued the request.
    pub sm: usize,
    /// The request's tag.
    pub tag: u64,
    /// For atomics: `(lane, old value)` per lane op, in lane-op order.
    pub atomic_results: Vec<(u8, u32)>,
}

#[derive(Debug)]
enum Event {
    /// A line fill arrives at an SM's L1.
    L1Fill { sm: usize, line: Addr },
    /// A request completes back at its SM.
    Complete(MemCompletion),
}

#[derive(Debug)]
struct L1 {
    cache: Cache,
    mshr: Mshr,
    inq: VecDeque<(u64, MemRequest)>,
}

#[derive(Debug)]
struct PartReq {
    sm: usize,
    req: MemRequest,
    /// True when this is an L1 miss fill (completion goes via L1Fill).
    l1_fill: bool,
    /// Times the chaos engine has NACKed this request (bounds its backoff).
    retries: u32,
}

#[derive(Debug)]
struct Partition {
    cache: Cache,
    inq: VecDeque<(u64, PartReq)>,
    /// DRAM-bound work: `(earliest_start, Option<request>)`; `None` is a
    /// fire-and-forget write that only consumes bandwidth.
    dramq: VecDeque<(u64, Option<PartReq>)>,
    dram_next_free: u64,
    /// The atomic unit applies one lane operation per cycle, so a k-lane
    /// atomic occupies the partition port for k cycles. This is the
    /// serialization that lets spinning warps' failed CAS traffic delay
    /// lock holders — the paper's central contention mechanism.
    port_free: u64,
}

/// The device memory system shared by all SMs.
///
/// Drive it by calling [`MemorySystem::enqueue`] when warps issue memory
/// instructions and [`MemorySystem::cycle`] once per core cycle.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    gmem: GlobalMem,
    l1s: Vec<L1>,
    parts: Vec<Partition>,
    events: BinaryHeap<Reverse<(u64, u64)>>,
    event_bodies: Vec<Option<Event>>,
    free_slots: Vec<usize>,
    seq: u64,
    stats: MemStats,
    lock_owners: ProbeMap<u64>,
    /// Idealized queue-based blocking locks (the HQL-style mechanism of
    /// Yilmazer & Kaeli that the paper compares against, without its cache
    /// constraints): when enabled, a lock-acquire whose lock is held by
    /// *another* warp — and whose request has acquired nothing yet — parks
    /// at the partition instead of failing; the matching release wakes the
    /// oldest parked request. Deadlock-free as long as programs acquire
    /// multiple locks in a global order (all bundled workloads do).
    blocking_locks: bool,
    parked: ProbeMap<VecDeque<PartReq>>,
    chaos: ChaosEngine,
}

impl MemorySystem {
    /// A memory system serving `num_sms` SMs.
    pub fn new(cfg: MemConfig, num_sms: usize) -> MemorySystem {
        let l1s = (0..num_sms)
            .map(|_| L1 {
                cache: Cache::new(cfg.l1_bytes, cfg.l1_ways),
                mshr: Mshr::new(cfg.l1_mshrs),
                inq: VecDeque::new(),
            })
            .collect();
        let parts = (0..cfg.l2_partitions)
            .map(|_| Partition {
                cache: Cache::new(cfg.l2_bytes_per_partition, cfg.l2_ways),
                inq: VecDeque::new(),
                dramq: VecDeque::new(),
                dram_next_free: 0,
                port_free: 0,
            })
            .collect();
        let chaos = ChaosEngine::new(cfg.chaos.clone());
        MemorySystem {
            cfg,
            chaos,
            gmem: GlobalMem::new(),
            l1s,
            parts,
            events: BinaryHeap::new(),
            event_bodies: Vec::new(),
            free_slots: Vec::new(),
            seq: 0,
            stats: MemStats::default(),
            lock_owners: ProbeMap::new(),
            blocking_locks: false,
            parked: ProbeMap::new(),
        }
    }

    /// Enable idealized queue-based blocking locks (see the field docs).
    pub fn set_blocking_locks(&mut self, on: bool) {
        self.blocking_locks = on;
    }

    /// Parked (blocked) acquire requests currently queued at locks.
    pub fn parked_requests(&self) -> usize {
        self.parked.values().map(VecDeque::len).sum()
    }

    /// Requests currently in flight anywhere in the hierarchy (queues,
    /// MSHRs, DRAM, response events) — hang-diagnostics support.
    pub fn in_flight(&self) -> usize {
        self.events.len()
            + self
                .l1s
                .iter()
                .map(|l| l.inq.len() + l.mshr.in_flight())
                .sum::<usize>()
            + self
                .parts
                .iter()
                .map(|p| p.inq.len() + p.dramq.len())
                .sum::<usize>()
    }

    /// Fault-injection counters (all zero when chaos is off).
    pub fn chaos_stats(&self) -> &ChaosStats {
        self.chaos.stats()
    }

    /// Functional global memory.
    pub fn gmem(&self) -> &GlobalMem {
        &self.gmem
    }

    /// Functional global memory, mutable (host-side setup and the SM's
    /// at-issue load/store semantics).
    pub fn gmem_mut(&mut self) -> &mut GlobalMem {
        &mut self.gmem
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// True when no request is in flight anywhere (watchdog support).
    pub fn quiescent(&self) -> bool {
        self.events.is_empty()
            && self.l1s.iter().all(|l| l.inq.is_empty() && l.mshr.in_flight() == 0)
            && self
                .parts
                .iter()
                .all(|p| p.inq.is_empty() && p.dramq.is_empty())
    }

    /// Earliest future cycle (strictly after `now`) at which this memory
    /// system can change state on its own: deliver a scheduled event,
    /// serve an L1 or partition queue head, or start a DRAM access.
    /// `None` when nothing is in flight. Parked blocking-lock requests
    /// contribute nothing: they wake only via a release, which is itself
    /// an in-flight atomic already counted here.
    ///
    /// Called by the fast-forward engine after `cycle_into(now)` has run:
    /// anything servable at `now` was already served (or lost port
    /// arbitration and retries next cycle), so every candidate is clamped
    /// to at least `now + 1`. All queues are head-blocking, so only each
    /// queue's front matters.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut fold = |t: u64| match next {
            Some(n) if n <= t => {}
            _ => next = Some(t),
        };
        if let Some(&Reverse((at, _))) = self.events.peek() {
            fold(at.max(now + 1));
        }
        // MSHR-squeeze chaos rolls the RNG on *every* cycle in which an L1
        // has queued work; skipping any such cycle would desynchronize the
        // deterministic chaos stream, so refuse to skip at all.
        if self.chaos.squeeze_possible() && self.l1s.iter().any(|l| !l.inq.is_empty()) {
            return Some(now + 1);
        }
        for l1 in &self.l1s {
            let Some((ready, req)) = l1.inq.front() else {
                continue;
            };
            if matches!(req.kind, ReqKind::Load { .. })
                && l1.cache.peek(req.line) == AccessOutcome::Miss
                && !l1.mshr.pending(req.line)
                && !l1.mshr.has_space()
            {
                // MSHR-blocked head: it unblocks only through an L1 fill,
                // which the event heap above already covers.
                continue;
            }
            fold((*ready).max(now + 1));
        }
        for p in &self.parts {
            if let Some(&(ready, _)) = p.inq.front() {
                fold(ready.max(p.port_free).max(now + 1));
            }
            if let Some(&(earliest, _)) = p.dramq.front() {
                fold(earliest.max(p.dram_next_free).max(now + 1));
            }
        }
        next
    }

    fn partition_of(&self, line: Addr) -> usize {
        ((line / LINE_BYTES) % self.parts.len() as u64) as usize
    }

    fn schedule(&mut self, at: u64, ev: Event) {
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.event_bodies[s] = Some(ev);
                s
            }
            None => {
                self.event_bodies.push(Some(ev));
                self.event_bodies.len() - 1
            }
        };
        self.seq += 1;
        self.events.push(Reverse((at, (self.seq << 32) | slot as u64)));
    }

    /// Submit a coalesced request from `sm` at `cycle`.
    ///
    /// Atomics and volatile loads route directly to the owning L2 partition;
    /// everything else enters the SM's L1 queue.
    pub fn enqueue(&mut self, sm: usize, req: MemRequest, cycle: u64) {
        self.stats.total_transactions += 1;
        if req.sync {
            self.stats.sync_transactions += 1;
        }
        // Chaos: charge extra interconnect/queueing latency up front (0
        // when disabled — the draw itself is skipped).
        let cycle = cycle + self.chaos.extra_request_latency();
        match &req.kind {
            ReqKind::Atomic { ops } => {
                self.stats.atomic_transactions += 1;
                self.stats.atomic_lane_ops += ops.len() as u64;
                let part = self.partition_of(req.line);
                let at = cycle + self.cfg.icnt_latency;
                self.parts[part].inq.push_back((
                    at,
                    PartReq {
                        sm,
                        req,
                        l1_fill: false,
                        retries: 0,
                    },
                ));
            }
            ReqKind::Load { bypass_l1: true } => {
                let part = self.partition_of(req.line);
                let at = cycle + self.cfg.icnt_latency;
                self.parts[part].inq.push_back((
                    at,
                    PartReq {
                        sm,
                        req,
                        l1_fill: false,
                        retries: 0,
                    },
                ));
            }
            _ => {
                self.l1s[sm].inq.push_back((cycle, req));
            }
        }
    }

    /// Drain up to `n` staged requests from `stage` (front first) into the
    /// hierarchy as if each had been [`MemorySystem::enqueue`]d directly
    /// by `sm` at `cycle`.
    ///
    /// This is the deterministic merge point for parallel SM execution:
    /// each SM fills its own [`RequestStage`] while cycling on a worker
    /// thread, and the coordinator absorbs the stages in fixed SM-id
    /// order, so the hierarchy observes the exact request order serial
    /// execution would have produced.
    pub fn absorb(&mut self, sm: usize, stage: &mut RequestStage, n: usize, cycle: u64) {
        for _ in 0..n {
            let Some(req) = stage.pop() else { break };
            self.enqueue(sm, req, cycle);
        }
    }

    /// Advance one cycle; returns completions that fire this cycle.
    ///
    /// Convenience wrapper over [`MemorySystem::cycle_into`] that allocates
    /// a fresh vector per call; cycle-loop callers should hold a reusable
    /// sink and call `cycle_into` instead.
    pub fn cycle(&mut self, now: u64) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        self.cycle_into(now, &mut out);
        out
    }

    /// Advance one cycle, appending completions that fire this cycle to
    /// `out` (which is *not* cleared — the caller owns and recycles it).
    ///
    /// Quiescent stages are skipped outright: an L1 bank or L2 partition
    /// with nothing queued costs one branch, so idle cycles of a mostly
    /// compute-bound kernel do not pay for the memory hierarchy.
    pub fn cycle_into(&mut self, now: u64, out: &mut Vec<MemCompletion>) {
        if self.l1s.iter().any(|l| !l.inq.is_empty()) {
            self.step_l1s(now);
        }
        if self
            .parts
            .iter()
            .any(|p| !p.inq.is_empty() || !p.dramq.is_empty())
        {
            self.step_partitions(now);
        }
        self.drain_events(now, out);
    }

    fn step_l1s(&mut self, now: u64) {
        for sm in 0..self.l1s.len() {
            // Chaos: transient MSHR-full back-pressure — this L1 serves
            // nothing this cycle (drawn only when work is pending).
            if !self.l1s[sm].inq.is_empty() && self.chaos.mshr_squeeze() {
                continue;
            }
            let mut served = 0;
            while served < self.cfg.l1_ports {
                let Some((ready, req)) = self.l1s[sm].inq.front() else {
                    break;
                };
                if *ready > now {
                    break;
                }
                // MSHR-full loads stall the queue head (models backpressure).
                if matches!(req.kind, ReqKind::Load { .. }) {
                    let line = req.line;
                    let l1 = &self.l1s[sm];
                    if l1.cache.peek(line) == AccessOutcome::Miss
                        && !l1.mshr.pending(line)
                        && !l1.mshr.has_space()
                    {
                        break;
                    }
                }
                let Some((_, req)) = self.l1s[sm].inq.pop_front() else {
                    break;
                };
                self.service_l1(sm, req, now);
                served += 1;
            }
        }
    }

    fn service_l1(&mut self, sm: usize, req: MemRequest, now: u64) {
        self.stats.l1_accesses += 1;
        let line = req.line;
        match req.kind {
            ReqKind::Load { .. } => {
                let l1 = &mut self.l1s[sm];
                if l1.cache.access(line) == AccessOutcome::Hit {
                    self.stats.l1_hits += 1;
                    let done = now + self.cfg.l1_hit_latency;
                    self.schedule(
                        done,
                        Event::Complete(MemCompletion {
                            sm,
                            tag: req.tag,
                            atomic_results: Vec::new(),
                        }),
                    );
                } else {
                    self.stats.l1_misses += 1;
                    let allocated = l1.mshr.record(line, req.tag);
                    if allocated {
                        let part = self.partition_of(line);
                        let at = now + self.cfg.icnt_latency;
                        self.parts[part].inq.push_back((
                            at,
                            PartReq {
                                sm,
                                req,
                                l1_fill: true,
                                retries: 0,
                            },
                        ));
                    }
                }
            }
            ReqKind::Store => {
                // Write-through, no write-allocate: probe for stats, always
                // forward to the partition; completion happens there.
                let l1 = &mut self.l1s[sm];
                if l1.cache.access(line) == AccessOutcome::Hit {
                    self.stats.l1_hits += 1;
                } else {
                    self.stats.l1_misses += 1;
                }
                let part = self.partition_of(line);
                let at = now + self.cfg.icnt_latency;
                self.parts[part].inq.push_back((
                    at,
                    PartReq {
                        sm,
                        req,
                        l1_fill: false,
                        retries: 0,
                    },
                ));
            }
            // Atomics bypass the L1 at enqueue; if one ever lands here,
            // recover by routing it to its partition rather than aborting.
            ReqKind::Atomic { .. } => {
                debug_assert!(false, "atomics bypass L1");
                let part = self.partition_of(line);
                let at = now + self.cfg.icnt_latency;
                self.parts[part].inq.push_back((
                    at,
                    PartReq {
                        sm,
                        req,
                        l1_fill: false,
                        retries: 0,
                    },
                ));
            }
        }
    }

    fn step_partitions(&mut self, now: u64) {
        for p in 0..self.parts.len() {
            // DRAM channel: start at most one service per `dram_interval`.
            while let Some(&(earliest, _)) = self.parts[p].dramq.front() {
                let part = &mut self.parts[p];
                if earliest > now || part.dram_next_free > now {
                    break;
                }
                part.dram_next_free = now + self.cfg.dram_interval;
                let Some((_, body)) = part.dramq.pop_front() else {
                    break;
                };
                if let Some(preq) = body {
                    let done = now + self.cfg.dram_latency;
                    self.finish_at_partition(p, preq, done);
                } else {
                    self.stats.dram_writes += 1;
                }
            }
            // L2 service ports; the atomic unit may still be draining a
            // previous multi-lane atomic.
            let mut served = 0;
            while served < self.cfg.l2_ports {
                if self.parts[p].port_free > now {
                    break;
                }
                let Some(&(ready, _)) = self.parts[p].inq.front() else {
                    break;
                };
                if ready > now {
                    break;
                }
                let Some((_, mut preq)) = self.parts[p].inq.pop_front() else {
                    break;
                };
                // Chaos: NACK the request back into the queue with an
                // exponential backoff (consumes the port slot, models a
                // rejected interconnect packet). Decided *before* any cache
                // or atomic side effect, so a retried request replays
                // nothing.
                if let Some(delay) = self.chaos.nack_delay(preq.retries) {
                    preq.retries += 1;
                    self.parts[p].inq.push_back((now + delay, preq));
                    served += 1;
                    continue;
                }
                if let ReqKind::Atomic { ops } = &preq.req.kind {
                    self.parts[p].port_free = now + ops.len() as u64;
                }
                self.service_partition(p, preq, now);
                served += 1;
            }
        }
    }

    fn service_partition(&mut self, p: usize, preq: PartReq, now: u64) {
        self.stats.l2_accesses += 1;
        let line = preq.req.line;
        let hit = self.parts[p].cache.access(line) == AccessOutcome::Hit;
        if hit {
            self.stats.l2_hits += 1;
        } else {
            self.stats.l2_misses += 1;
        }
        match preq.req.kind {
            ReqKind::Store => {
                // Write-through to DRAM (bandwidth only), complete now+L2 lat.
                let done = now + self.cfg.l2_hit_latency;
                self.schedule(
                    done,
                    Event::Complete(MemCompletion {
                        sm: preq.sm,
                        tag: preq.req.tag,
                        atomic_results: Vec::new(),
                    }),
                );
                self.parts[p].dramq.push_back((now, None));
            }
            ReqKind::Load { .. } | ReqKind::Atomic { .. } => {
                if hit {
                    let done = now + self.cfg.l2_hit_latency;
                    self.finish_at_partition(p, preq, done);
                } else {
                    self.stats.dram_reads += 1;
                    self.parts[p].cache.fill(line);
                    self.parts[p].dramq.push_back((now, Some(preq)));
                }
            }
        }
    }

    /// A load/atomic finished its L2/DRAM access at `done`; apply side
    /// effects and send the response toward the SM.
    fn finish_at_partition(&mut self, _p: usize, preq: PartReq, done: u64) {
        let back = done + self.cfg.icnt_latency;
        match preq.req.kind {
            ReqKind::Load { .. } => {
                if preq.l1_fill {
                    self.schedule(
                        back,
                        Event::L1Fill {
                            sm: preq.sm,
                            line: preq.req.line,
                        },
                    );
                } else {
                    self.schedule(
                        back,
                        Event::Complete(MemCompletion {
                            sm: preq.sm,
                            tag: preq.req.tag,
                            atomic_results: Vec::new(),
                        }),
                    );
                }
            }
            ReqKind::Atomic { ref ops } => {
                // Idealized blocking locks: a pure-acquire request that
                // would succeed on no lane — and whose locks are all held
                // by *other* warps — parks until a release wakes it.
                // Requests park only while holding nothing, so there is no
                // hold-and-wait and no deadlock.
                if self.blocking_locks
                    && preq.req.sole
                    && ops.iter().all(|o| o.role == LockRole::Acquire)
                {
                    let would_succeed = ops
                        .iter()
                        .any(|o| self.gmem.read_u32(o.addr) == o.a);
                    let intra = ops
                        .iter()
                        .any(|o| self.lock_owners.get(o.addr) == Some(&o.holder));
                    if !would_succeed && !intra {
                        let park_on = ops[0].addr;
                        self.parked
                            .get_or_insert_with(park_on, VecDeque::new)
                            .push_back(preq);
                        return;
                    }
                }
                let ReqKind::Atomic { ops } = preq.req.kind else {
                    unreachable!()
                };
                // Serialization point: apply lane ops in order against
                // functional memory, capturing old values.
                let mut results = Vec::with_capacity(ops.len());
                let mut released: Vec<Addr> = Vec::new();
                for op in &ops {
                    let old = self.gmem.read_u32(op.addr);
                    let new = op.op.apply(old, op.a, op.b);
                    self.gmem.write_u32(op.addr, new);
                    match op.role {
                        LockRole::Acquire => {
                            if old == op.a {
                                self.stats.lock_success += 1;
                                self.lock_owners.insert(op.addr, op.holder);
                            } else if self.lock_owners.get(op.addr) == Some(&op.holder) {
                                self.stats.lock_intra_fail += 1;
                            } else {
                                self.stats.lock_inter_fail += 1;
                            }
                        }
                        LockRole::Release => {
                            self.lock_owners.remove(op.addr);
                            released.push(op.addr);
                        }
                        LockRole::None => {}
                    }
                    results.push((op.lane, old));
                }
                // Releases wake the oldest parked acquirer (it re-enters
                // the partition queue and re-arbitrates for the port).
                for addr in released {
                    let waiter = match self.parked.get_mut(addr) {
                        Some(q) => {
                            let w = q.pop_front();
                            if q.is_empty() {
                                self.parked.remove(addr);
                            }
                            w
                        }
                        None => None,
                    };
                    if let Some(waiter) = waiter {
                        let part = self.partition_of(waiter.req.line);
                        self.parts[part].inq.push_back((done, waiter));
                    }
                }
                // Chaos: delay the *response* only — the lane ops above
                // already applied at the serialization point, so timing
                // chaos can never alter architectural results.
                let back = back + self.chaos.atomic_delay();
                self.schedule(
                    back,
                    Event::Complete(MemCompletion {
                        sm: preq.sm,
                        tag: preq.req.tag,
                        atomic_results: results,
                    }),
                );
            }
            // Stores complete at service; a store reaching here is a
            // bookkeeping bug but is harmless to complete normally.
            ReqKind::Store => {
                debug_assert!(false, "stores complete at service");
                self.schedule(
                    back,
                    Event::Complete(MemCompletion {
                        sm: preq.sm,
                        tag: preq.req.tag,
                        atomic_results: Vec::new(),
                    }),
                );
            }
        }
    }

    fn drain_events(&mut self, now: u64, out: &mut Vec<MemCompletion>) {
        while let Some(&Reverse((at, key))) = self.events.peek() {
            if at > now {
                break;
            }
            self.events.pop();
            let slot = (key & 0xffff_ffff) as usize;
            // A dead slot would mean double-scheduling; skip rather than
            // abort (debug builds still flag it).
            let Some(ev) = self.event_bodies.get_mut(slot).and_then(Option::take) else {
                debug_assert!(false, "event slot {slot} not live");
                continue;
            };
            self.free_slots.push(slot);
            match ev {
                Event::Complete(c) => out.push(c),
                Event::L1Fill { sm, line } => {
                    let l1 = &mut self.l1s[sm];
                    l1.cache.fill(line);
                    for tag in l1.mshr.fill(line) {
                        out.push(MemCompletion {
                            sm,
                            tag,
                            atomic_results: Vec::new(),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint serialization.
//
// Everything below encodes the memory system's complete dynamic state —
// functional memory, cache directories, MSHRs, every queued request, the
// event heap, lock/parking bookkeeping, stats, and the chaos RNG stream —
// so a restored system is bit-indistinguishable from one that never
// stopped. Hash maps are written in sorted-key order; queue contents keep
// their order verbatim; the event heap is written as sorted (time, key)
// pairs plus the slot-addressed bodies and the free-slot stack (LIFO order
// matters: slot reuse feeds the `seq`-keyed heap ordering).
// ---------------------------------------------------------------------------

use simt_snap::{SnapReader, SnapWriter, SnapshotError};

fn save_req(w: &mut SnapWriter, req: &MemRequest) {
    match &req.kind {
        ReqKind::Load { bypass_l1 } => {
            w.u8(0);
            w.bool(*bypass_l1);
        }
        ReqKind::Store => w.u8(1),
        ReqKind::Atomic { ops } => {
            w.u8(2);
            w.usize(ops.len());
            for op in ops {
                w.u8(op.lane);
                w.u64(op.addr);
                w.u8(match op.op {
                    AtomOp::Cas => 0,
                    AtomOp::Exch => 1,
                    AtomOp::Add => 2,
                    AtomOp::Max => 3,
                    AtomOp::Min => 4,
                    AtomOp::And => 5,
                    AtomOp::Or => 6,
                });
                w.u32(op.a);
                w.u32(op.b);
                w.u8(match op.role {
                    LockRole::None => 0,
                    LockRole::Acquire => 1,
                    LockRole::Release => 2,
                });
                w.u64(op.holder);
            }
        }
    }
    w.u64(req.line);
    w.u64(req.tag);
    w.bool(req.sync);
    w.bool(req.sole);
}

fn load_req(
    r: &mut SnapReader<'_>,
    gmem: &crate::GlobalMem,
) -> Result<MemRequest, SnapshotError> {
    let kind = match r.u8()? {
        0 => ReqKind::Load { bypass_l1: r.bool()? },
        1 => ReqKind::Store,
        2 => {
            let n = r.len(24)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let lane = r.u8()?;
                let addr = r.u64()?;
                let op = match r.u8()? {
                    0 => AtomOp::Cas,
                    1 => AtomOp::Exch,
                    2 => AtomOp::Add,
                    3 => AtomOp::Max,
                    4 => AtomOp::Min,
                    5 => AtomOp::And,
                    6 => AtomOp::Or,
                    b => return Err(SnapshotError::malformed(format!("atomic op byte {b}"))),
                };
                let a = r.u32()?;
                let b = r.u32()?;
                let role = match r.u8()? {
                    0 => LockRole::None,
                    1 => LockRole::Acquire,
                    2 => LockRole::Release,
                    b => return Err(SnapshotError::malformed(format!("lock role byte {b}"))),
                };
                let holder = r.u64()?;
                // Atomics execute against global memory with unchecked
                // accesses (a live run can only produce valid addresses),
                // so a restored address must be re-validated here or a
                // corrupted snapshot would panic mid-simulation later.
                if gmem.check_addr(addr).is_err() {
                    return Err(SnapshotError::malformed(format!(
                        "atomic address {addr:#x} outside restored memory"
                    )));
                }
                ops.push(LaneAtomic { lane, addr, op, a, b, role, holder });
            }
            ReqKind::Atomic { ops }
        }
        b => return Err(SnapshotError::malformed(format!("request kind byte {b}"))),
    };
    Ok(MemRequest {
        kind,
        line: r.u64()?,
        tag: r.u64()?,
        sync: r.bool()?,
        sole: r.bool()?,
    })
}

fn save_partreq(w: &mut SnapWriter, p: &PartReq) {
    w.usize(p.sm);
    save_req(w, &p.req);
    w.bool(p.l1_fill);
    w.u32(p.retries);
}

fn load_partreq(
    r: &mut SnapReader<'_>,
    num_sms: usize,
    gmem: &crate::GlobalMem,
) -> Result<PartReq, SnapshotError> {
    let sm = r.usize()?;
    if sm >= num_sms {
        return Err(SnapshotError::malformed(format!("partition request sm {sm}")));
    }
    let req = load_req(r, gmem)?;
    Ok(PartReq { sm, req, l1_fill: r.bool()?, retries: r.u32()? })
}

impl MemorySystem {
    /// Serialize complete dynamic state for a checkpoint.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        self.gmem.save_snap(w);
        w.usize(self.l1s.len());
        for l1 in &self.l1s {
            l1.cache.save_snap(w);
            l1.mshr.save_snap(w);
            w.usize(l1.inq.len());
            for (at, req) in &l1.inq {
                w.u64(*at);
                save_req(w, req);
            }
        }
        w.usize(self.parts.len());
        for p in &self.parts {
            p.cache.save_snap(w);
            w.usize(p.inq.len());
            for (at, preq) in &p.inq {
                w.u64(*at);
                save_partreq(w, preq);
            }
            w.usize(p.dramq.len());
            for (at, opt) in &p.dramq {
                w.u64(*at);
                match opt {
                    Some(preq) => {
                        w.bool(true);
                        save_partreq(w, preq);
                    }
                    None => w.bool(false),
                }
            }
            w.u64(p.dram_next_free);
            w.u64(p.port_free);
        }
        // Event heap: unique (time, seq|slot) keys make pop order a pure
        // function of the key set, so a sorted encoding restores exactly.
        let mut keys: Vec<(u64, u64)> = self.events.iter().map(|&Reverse(k)| k).collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for (at, key) in keys {
            w.u64(at);
            w.u64(key);
        }
        w.usize(self.event_bodies.len());
        for body in &self.event_bodies {
            match body {
                None => w.u8(0),
                Some(Event::L1Fill { sm, line }) => {
                    w.u8(1);
                    w.usize(*sm);
                    w.u64(*line);
                }
                Some(Event::Complete(c)) => {
                    w.u8(2);
                    w.usize(c.sm);
                    w.u64(c.tag);
                    w.usize(c.atomic_results.len());
                    for (lane, old) in &c.atomic_results {
                        w.u8(*lane);
                        w.u32(*old);
                    }
                }
            }
        }
        w.usize(self.free_slots.len());
        for &slot in &self.free_slots {
            w.usize(slot);
        }
        w.u64(self.seq);
        self.stats.save_snap(w);
        // Probe tables serialize their layout verbatim (slot order is the
        // iteration order), so no sort-before-write pass is needed and a
        // restored table is bit-identical to the saved one.
        self.lock_owners.save_snap(w, |w, &owner| w.u64(owner));
        self.parked.save_snap(w, |w, q| {
            w.usize(q.len());
            for preq in q {
                save_partreq(w, preq);
            }
        });
        w.bool(self.blocking_locks);
        self.chaos.save_snap(w);
    }

    /// Restore state written by [`MemorySystem::save_snap`].
    ///
    /// Decodes into a freshly constructed system (same config, same SM
    /// count) and replaces `self` only on success, so a malformed body can
    /// never leave partially mutated state behind.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let num_sms = self.l1s.len();
        let mut fresh = MemorySystem::new(self.cfg.clone(), num_sms);
        fresh.blocking_locks = self.blocking_locks;
        fresh.gmem.load_snap(r)?;
        let nl1 = r.len(1)?;
        if nl1 != num_sms {
            return Err(SnapshotError::malformed(format!(
                "snapshot has {nl1} L1s, config has {num_sms}"
            )));
        }
        let gmem = &fresh.gmem;
        for l1 in &mut fresh.l1s {
            l1.cache.load_snap(r)?;
            l1.mshr.load_snap(r)?;
            let n = r.len(8)?;
            for _ in 0..n {
                let at = r.u64()?;
                l1.inq.push_back((at, load_req(r, gmem)?));
            }
        }
        let nparts = r.len(1)?;
        if nparts != fresh.parts.len() {
            return Err(SnapshotError::malformed(format!(
                "snapshot has {nparts} partitions, config has {}",
                fresh.parts.len()
            )));
        }
        for p in &mut fresh.parts {
            p.cache.load_snap(r)?;
            let n = r.len(8)?;
            for _ in 0..n {
                let at = r.u64()?;
                p.inq.push_back((at, load_partreq(r, num_sms, gmem)?));
            }
            let n = r.len(8)?;
            for _ in 0..n {
                let at = r.u64()?;
                let preq =
                    if r.bool()? { Some(load_partreq(r, num_sms, gmem)?) } else { None };
                p.dramq.push_back((at, preq));
            }
            p.dram_next_free = r.u64()?;
            p.port_free = r.u64()?;
        }
        let nev = r.len(16)?;
        let mut keys = Vec::with_capacity(nev);
        for _ in 0..nev {
            let at = r.u64()?;
            let key = r.u64()?;
            keys.push((at, key));
        }
        let nbodies = r.len(1)?;
        for _ in 0..nbodies {
            fresh.event_bodies.push(match r.u8()? {
                0 => None,
                1 => {
                    let sm = r.usize()?;
                    if sm >= num_sms {
                        return Err(SnapshotError::malformed(format!("fill event sm {sm}")));
                    }
                    Some(Event::L1Fill { sm, line: r.u64()? })
                }
                2 => {
                    let sm = r.usize()?;
                    if sm >= num_sms {
                        return Err(SnapshotError::malformed(format!("completion sm {sm}")));
                    }
                    let tag = r.u64()?;
                    let n = r.len(5)?;
                    let mut atomic_results = Vec::with_capacity(n);
                    for _ in 0..n {
                        let lane = r.u8()?;
                        atomic_results.push((lane, r.u32()?));
                    }
                    Some(Event::Complete(MemCompletion { sm, tag, atomic_results }))
                }
                b => return Err(SnapshotError::malformed(format!("event body byte {b}"))),
            });
        }
        for &(at, key) in &keys {
            let slot = (key & 0xffff_ffff) as usize;
            if !fresh.event_bodies.get(slot).is_some_and(Option::is_some) {
                return Err(SnapshotError::malformed(format!(
                    "event key {key:#x} (slot {slot}) has no live body"
                )));
            }
            fresh.events.push(Reverse((at, key)));
        }
        let nfree = r.len(8)?;
        for _ in 0..nfree {
            let slot = r.usize()?;
            if slot >= fresh.event_bodies.len() || fresh.event_bodies[slot].is_some() {
                return Err(SnapshotError::malformed(format!("free slot {slot} is live")));
            }
            fresh.free_slots.push(slot);
        }
        fresh.seq = r.u64()?;
        fresh.stats = MemStats::load_snap(r)?;
        fresh.lock_owners = ProbeMap::load_snap(r, |r| r.u64())?;
        fresh.parked = ProbeMap::load_snap(r, |r| {
            let n = r.len(8)?;
            let mut q = VecDeque::with_capacity(n);
            for _ in 0..n {
                q.push_back(load_partreq(r, num_sms, &fresh.gmem)?);
            }
            Ok(q)
        })?;
        fresh.blocking_locks = r.bool()?;
        fresh.chaos.load_snap(r)?;
        *self = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until(mem: &mut MemorySystem, mut now: u64, horizon: u64) -> (u64, Vec<MemCompletion>) {
        let mut all = Vec::new();
        while now < horizon {
            let done = mem.cycle(now);
            if !done.is_empty() {
                return (now, done);
            }
            all.extend(done);
            now += 1;
        }
        (now, all)
    }

    fn new_mem() -> MemorySystem {
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        let base = mem.gmem_mut().alloc(1024);
        assert_eq!(base, 0);
        mem
    }

    /// A staged request stream absorbed in order behaves exactly like
    /// direct enqueues: same completion stream, same statistics. `absorb`
    /// takes only the asked-for prefix and tolerates over-asking.
    #[test]
    fn staged_requests_absorb_like_direct_enqueues() {
        let reqs = |tags: std::ops::Range<u64>| {
            tags.map(|t| MemRequest::new(ReqKind::Load { bypass_l1: false }, t * 4, t))
                .collect::<Vec<_>>()
        };
        let mut direct = new_mem();
        for r in reqs(1..4) {
            direct.enqueue(0, r, 0);
        }
        let mut staged = new_mem();
        let mut stage = RequestStage::new();
        for r in reqs(1..4) {
            stage.push(r);
        }
        assert_eq!(stage.len(), 3);
        staged.absorb(0, &mut stage, 2, 0);
        assert_eq!(stage.len(), 1, "absorb consumes exactly the prefix");
        staged.absorb(0, &mut stage, 5, 0);
        assert!(stage.is_empty(), "over-asking drains and stops");
        let (t_direct, done_direct) = run_until(&mut direct, 0, 100_000);
        let (t_staged, done_staged) = run_until(&mut staged, 0, 100_000);
        assert_eq!(t_direct, t_staged);
        assert_eq!(done_direct.len(), done_staged.len());
        for (a, b) in done_direct.iter().zip(&done_staged) {
            assert_eq!((a.sm, a.tag), (b.sm, b.tag));
        }
        assert_eq!(direct.stats(), staged.stats());
    }

    #[test]
    fn cold_load_miss_then_hit() {
        let mut mem = new_mem();
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: false }, 0, 1),
            0,
        );
        let (t_miss, done) = run_until(&mut mem, 0, 100_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        let cfg = MemConfig::default();
        // Miss path: icnt + L2 (miss→DRAM) + icnt at least.
        assert!(t_miss >= cfg.icnt_latency + cfg.dram_latency);

        // Second load to the same line: L1 hit, much faster.
        let start = t_miss + 1;
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: false }, 4, 2),
            start,
        );
        let (t_hit, done) = run_until(&mut mem, start, start + 100_000);
        assert_eq!(done[0].tag, 2);
        assert_eq!(t_hit - start, cfg.l1_hit_latency);
        assert!(t_hit - start < t_miss);
        assert_eq!(mem.stats().l1_hits, 1);
        assert_eq!(mem.stats().l1_misses, 1);
    }

    /// `cycle` and `cycle_into` (the allocation-free path with quiescence
    /// skips) must produce identical completion streams, and `cycle_into`
    /// must append to — never clear — the caller's sink.
    #[test]
    fn cycle_into_matches_cycle_and_appends() {
        let mut a = new_mem();
        let mut b = new_mem();
        for mem in [&mut a, &mut b] {
            for (i, addr) in [0u64, 8, 256, 512].iter().enumerate() {
                mem.enqueue(
                    i % 2,
                    MemRequest::new(ReqKind::Load { bypass_l1: false }, *addr, i as u64 + 1),
                    0,
                );
            }
        }
        let mut via_cycle = Vec::new();
        let mut via_into = vec![(
            MemCompletion {
                sm: 9,
                tag: 999,
                atomic_results: Vec::new(),
            },
            0u64,
        )];
        let mut sink = Vec::new();
        for now in 0..100_000u64 {
            via_cycle.extend(a.cycle(now).into_iter().map(|c| ((c.sm, c.tag), now)));
            b.cycle_into(now, &mut sink);
            via_into.extend(sink.drain(..).map(|c| (c, now)));
            if via_cycle.len() == 4 && via_into.len() == 5 {
                break;
            }
        }
        assert_eq!(via_into[0].0.tag, 999, "sink contents are appended to, not cleared");
        let into_stream: Vec<((usize, u64), u64)> = via_into[1..]
            .iter()
            .map(|(c, now)| ((c.sm, c.tag), *now))
            .collect();
        assert_eq!(via_cycle, into_stream);
        assert_eq!(via_cycle.len(), 4, "all requests completed");
        assert!(a.quiescent() && b.quiescent());
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut mem = new_mem();
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: false }, 0, 1),
            0,
        );
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: false }, 8, 2),
            0,
        );
        let mut now = 0;
        let mut tags = Vec::new();
        while tags.len() < 2 && now < 100_000 {
            tags.extend(mem.cycle(now).into_iter().map(|c| c.tag));
            now += 1;
        }
        assert_eq!(tags, vec![1, 2], "both complete on the single fill");
        assert_eq!(mem.stats().dram_reads, 1, "only one DRAM read");
    }

    #[test]
    fn volatile_load_bypasses_l1() {
        let mut mem = new_mem();
        // Warm the L1.
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: false }, 0, 1),
            0,
        );
        let (t1, _) = run_until(&mut mem, 0, 100_000);
        let l1_accesses = mem.stats().l1_accesses;
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: true }, 0, 2),
            t1 + 1,
        );
        let (_, done) = run_until(&mut mem, t1 + 1, t1 + 100_000);
        assert_eq!(done[0].tag, 2);
        assert_eq!(mem.stats().l1_accesses, l1_accesses, "L1 untouched");
        assert!(mem.stats().l2_accesses >= 2);
    }

    #[test]
    fn atomic_applies_at_service_in_lane_order() {
        let mut mem = new_mem();
        mem.gmem_mut().write_u32(0, 0);
        // Two lanes CAS the same mutex: exactly one wins.
        let ops = vec![
            LaneAtomic::new(0, 0, AtomOp::Cas, 0, 1),
            LaneAtomic::new(1, 0, AtomOp::Cas, 0, 1),
        ];
        mem.enqueue(0, MemRequest::new(ReqKind::Atomic { ops }, 0, 9), 0);
        let (_, done) = run_until(&mut mem, 0, 100_000);
        assert_eq!(done[0].atomic_results, vec![(0, 0), (1, 1)]);
        assert_eq!(mem.gmem().read_u32(0), 1);
        assert_eq!(mem.stats().atomic_transactions, 1);
        assert_eq!(mem.stats().atomic_lane_ops, 2);
    }

    #[test]
    fn two_warps_cas_serialize_by_queue_order() {
        let mut mem = new_mem();
        // SM0 and SM1 both try to take the lock at cycle 0.
        for (sm, tag) in [(0usize, 10u64), (1, 11)] {
            let ops = vec![LaneAtomic::new(0, 0, AtomOp::Cas, 0, 1)];
            mem.enqueue(sm, MemRequest::new(ReqKind::Atomic { ops }, 0, tag), 0);
        }
        let mut now = 0;
        let mut got = Vec::new();
        while got.len() < 2 && now < 100_000 {
            got.extend(mem.cycle(now));
            now += 1;
        }
        let winners: Vec<_> = got
            .iter()
            .filter(|c| c.atomic_results[0].1 == 0)
            .collect();
        assert_eq!(winners.len(), 1, "exactly one CAS wins the inter-SM race");
        assert_eq!(mem.gmem().read_u32(0), 1);
    }

    #[test]
    fn store_completes_and_consumes_dram_bandwidth() {
        let mut mem = new_mem();
        mem.enqueue(0, MemRequest::new(ReqKind::Store, 0, 5), 0);
        let (_, done) = run_until(&mut mem, 0, 100_000);
        assert_eq!(done[0].tag, 5);
        // Drain the fire-and-forget DRAM write.
        let mut now = 0;
        while !mem.quiescent() && now < 100_000 {
            mem.cycle(now);
            now += 1;
        }
        assert_eq!(mem.stats().dram_writes, 1);
    }

    #[test]
    fn dram_bandwidth_limits_throughput() {
        let cfg = MemConfig {
            l2_partitions: 1,
            ..MemConfig::default()
        };
        let interval = cfg.dram_interval;
        let mut mem = MemorySystem::new(cfg, 1);
        mem.gmem_mut().alloc(100_000);
        // 16 loads to distinct lines, all missing L2, same partition.
        for i in 0..16u64 {
            mem.enqueue(
                0,
                MemRequest::new(ReqKind::Load { bypass_l1: true }, i * LINE_BYTES, i),
                0,
            );
        }
        let mut now = 0;
        let mut times = Vec::new();
        while times.len() < 16 && now < 1_000_000 {
            for c in mem.cycle(now) {
                times.push((now, c.tag));
            }
            now += 1;
        }
        assert_eq!(times.len(), 16);
        // Completions must be spaced by at least the DRAM interval.
        for w in times.windows(2) {
            assert!(w[1].0 - w[0].0 >= interval, "{:?}", times);
        }
    }

    #[test]
    fn sync_transactions_counted() {
        let mut mem = new_mem();
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: false }, 0, 1).sync(),
            0,
        );
        mem.enqueue(0, MemRequest::new(ReqKind::Store, 256, 2), 0);
        assert_eq!(mem.stats().total_transactions, 2);
        assert_eq!(mem.stats().sync_transactions, 1);
    }

    #[test]
    fn lock_outcome_classification() {
        let mut mem = new_mem();
        let acquire = |holder: u64| {
            let mut op = LaneAtomic::new(0, 0, AtomOp::Cas, 0, 1);
            op.role = LockRole::Acquire;
            op.holder = holder;
            op
        };
        let release = |holder: u64| {
            let mut op = LaneAtomic::new(0, 0, AtomOp::Exch, 0, 0);
            op.role = LockRole::Release;
            op.holder = holder;
            op
        };
        let run = |mem: &mut MemorySystem, start: u64| -> u64 {
            let mut now = start;
            while now < start + 100_000 {
                if !mem.cycle(now).is_empty() {
                    return now + 1;
                }
                now += 1;
            }
            panic!("no completion");
        };
        // Warp A acquires (success).
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Atomic { ops: vec![acquire(1)] }, 0, 1),
            0,
        );
        let t = run(&mut mem, 0);
        // Warp A retries (intra-warp fail), warp B tries (inter-warp fail).
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Atomic { ops: vec![acquire(1)] }, 0, 2),
            t,
        );
        let t = run(&mut mem, t);
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Atomic { ops: vec![acquire(2)] }, 0, 3),
            t,
        );
        let t = run(&mut mem, t);
        // A releases; B acquires (success).
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Atomic { ops: vec![release(1)] }, 0, 4),
            t,
        );
        let t = run(&mut mem, t);
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Atomic { ops: vec![acquire(2)] }, 0, 5),
            t,
        );
        run(&mut mem, t);
        let s = mem.stats();
        assert_eq!(s.lock_success, 2);
        assert_eq!(s.lock_intra_fail, 1);
        assert_eq!(s.lock_inter_fail, 1);
    }

    #[test]
    fn blocking_locks_park_and_wake_in_order() {
        let mut mem = new_mem();
        mem.set_blocking_locks(true);
        let acquire = |holder: u64, tag: u64| {
            let mut op = LaneAtomic::new(0, 0, AtomOp::Cas, 0, 1);
            op.role = LockRole::Acquire;
            op.holder = holder;
            MemRequest::new(ReqKind::Atomic { ops: vec![op] }, 0, tag)
        };
        let release = |holder: u64, tag: u64| {
            let mut op = LaneAtomic::new(0, 0, AtomOp::Exch, 0, 0);
            op.role = LockRole::Release;
            op.holder = holder;
            MemRequest::new(ReqKind::Atomic { ops: vec![op] }, 0, tag)
        };
        // Warp 1 takes the lock; warps 2 and 3 park (in that order).
        mem.enqueue(0, acquire(1, 10), 0);
        mem.enqueue(0, acquire(2, 20), 1);
        mem.enqueue(0, acquire(3, 30), 2);
        let mut done: Vec<u64> = Vec::new();
        let mut now = 0;
        while done.is_empty() && now < 100_000 {
            done.extend(mem.cycle(now).into_iter().map(|c| c.tag));
            now += 1;
        }
        assert_eq!(done, vec![10], "only the winner completes");
        assert_eq!(mem.parked_requests(), 2, "the losers are parked, not spinning");
        // Release: warp 2 wakes and completes with the lock.
        mem.enqueue(0, release(1, 11), now);
        while done.len() < 3 && now < 100_000 {
            done.extend(mem.cycle(now).into_iter().map(|c| c.tag));
            now += 1;
        }
        assert_eq!(done, vec![10, 11, 20], "FIFO hand-off to warp 2");
        assert_eq!(mem.parked_requests(), 1);
        assert_eq!(mem.stats().lock_inter_fail, 0, "no spin failures at all");
        // Warp 2 releases; warp 3 gets it.
        mem.enqueue(0, release(2, 21), now);
        while done.len() < 5 && now < 200_000 {
            done.extend(mem.cycle(now).into_iter().map(|c| c.tag));
            now += 1;
        }
        assert_eq!(done, vec![10, 11, 20, 21, 30]);
        assert_eq!(mem.parked_requests(), 0);
        assert_eq!(mem.stats().lock_success, 3);
    }

    #[test]
    fn blocking_locks_nack_non_sole_requests() {
        let mut mem = new_mem();
        mem.set_blocking_locks(true);
        // Take the lock.
        let mut op = LaneAtomic::new(0, 0, AtomOp::Cas, 0, 1);
        op.role = LockRole::Acquire;
        op.holder = 1;
        mem.enqueue(0, MemRequest::new(ReqKind::Atomic { ops: vec![op] }, 0, 1), 0);
        let mut now = 0;
        while mem.cycle(now).is_empty() && now < 100_000 {
            now += 1;
        }
        // A second acquire marked non-sole must fail normally (spin), not park.
        let mut op2 = op;
        op2.holder = 2;
        let mut req = MemRequest::new(ReqKind::Atomic { ops: vec![op2] }, 0, 2);
        req.sole = false;
        mem.enqueue(0, req, now);
        let mut got = Vec::new();
        while got.is_empty() && now < 200_000 {
            got.extend(mem.cycle(now));
            now += 1;
        }
        assert_eq!(got[0].tag, 2, "non-sole request completes with a failure");
        assert_eq!(got[0].atomic_results[0].1, 1, "CAS observed the held lock");
        assert_eq!(mem.parked_requests(), 0);
        assert_eq!(mem.stats().lock_inter_fail, 1);
    }

    #[test]
    fn chaos_conserves_requests_and_results() {
        use crate::ChaosConfig;
        // Same request mix, chaos off vs. aggressive chaos: every request
        // still completes exactly once and the final memory state (the
        // serialized atomic counter) is identical.
        let run = |chaos: ChaosConfig| -> (Vec<u64>, u32, u64) {
            let cfg = MemConfig {
                chaos,
                ..MemConfig::default()
            };
            let mut mem = MemorySystem::new(cfg, 2);
            mem.gmem_mut().alloc(1024);
            let mut tags = Vec::new();
            for i in 0..40u64 {
                let addr = (i % 8) * LINE_BYTES;
                let kind = match i % 3 {
                    0 => ReqKind::Load { bypass_l1: false },
                    1 => ReqKind::Store,
                    _ => ReqKind::Atomic {
                        ops: vec![LaneAtomic::new(0, 0, AtomOp::Add, 1, 0)],
                    },
                };
                mem.enqueue((i % 2) as usize, MemRequest::new(kind, addr, i), i);
                tags.push(i);
            }
            let mut done = Vec::new();
            let mut now = 0;
            while (!mem.quiescent() || done.len() < tags.len()) && now < 500_000 {
                done.extend(mem.cycle(now).into_iter().map(|c| c.tag));
                now += 1;
            }
            done.sort_unstable();
            (done, mem.gmem().read_u32(0), now)
        };
        let (base_done, base_ctr, base_cycles) = run(ChaosConfig::off());
        let (chaos_done, chaos_ctr, chaos_cycles) = run(ChaosConfig::with_level(99, 3));
        assert_eq!(base_done, (0..40).collect::<Vec<u64>>());
        assert_eq!(chaos_done, base_done, "chaos loses/duplicates nothing");
        assert_eq!(chaos_ctr, base_ctr, "architectural state unchanged");
        assert!(chaos_cycles >= base_cycles, "chaos only slows things down");
    }

    #[test]
    fn chaos_runs_are_seed_deterministic() {
        use crate::ChaosConfig;
        let run = |seed: u64| -> (u64, ChaosStats) {
            let cfg = MemConfig {
                chaos: ChaosConfig::with_level(seed, 3),
                ..MemConfig::default()
            };
            let mut mem = MemorySystem::new(cfg, 1);
            mem.gmem_mut().alloc(1024);
            for i in 0..60u64 {
                let kind = if i % 2 == 0 {
                    ReqKind::Load { bypass_l1: i % 4 == 0 }
                } else {
                    ReqKind::Atomic {
                        ops: vec![LaneAtomic::new(0, 4, AtomOp::Add, 1, 0)],
                    }
                };
                mem.enqueue(0, MemRequest::new(kind, (i % 6) * LINE_BYTES, i), i * 3);
            }
            let mut last = 0;
            let mut now = 0;
            let mut ndone = 0;
            while ndone < 60 && now < 500_000 {
                for c in mem.cycle(now) {
                    ndone += 1;
                    let _ = c;
                    last = now;
                }
                now += 1;
            }
            (last, *mem.chaos_stats())
        };
        let a = run(1234);
        let b = run(1234);
        let c = run(5678);
        assert_eq!(a, b, "same seed => bit-identical timing and stats");
        // Different seeds virtually always perturb differently; we only
        // require that chaos actually fired.
        assert!(c.1.latency_injections + c.1.nacks + c.1.atomic_delays > 0);
    }

    #[test]
    fn quiescent_reflects_inflight_work() {
        let mut mem = new_mem();
        assert!(mem.quiescent());
        mem.enqueue(
            0,
            MemRequest::new(ReqKind::Load { bypass_l1: false }, 0, 1),
            0,
        );
        assert!(!mem.quiescent());
        let mut now = 0;
        while !mem.quiescent() && now < 100_000 {
            mem.cycle(now);
            now += 1;
        }
        assert!(mem.quiescent());
    }

    /// Snapshot a system with requests in flight (queues, MSHRs, events,
    /// parked locks, chaos stream all live), restore it into a fresh
    /// instance, and run both to quiescence: every observable — completion
    /// stream, stats, chaos counters, memory image — must be identical.
    #[test]
    fn mid_flight_snapshot_round_trips_bit_exact() {
        let build = || {
            let cfg = MemConfig {
                chaos: crate::ChaosConfig::with_level(42, 2),
                ..MemConfig::default()
            };
            let mut mem = MemorySystem::new(cfg, 2);
            mem.set_blocking_locks(true);
            mem.gmem_mut().alloc(1024);
            mem
        };
        let drive = |mem: &mut MemorySystem, upto: u64| {
            let mut done = Vec::new();
            for now in 0..upto {
                if now % 7 == 0 {
                    let tag = 100 + now;
                    mem.enqueue(
                        (now % 2) as usize,
                        MemRequest::new(ReqKind::Load { bypass_l1: now % 3 == 0 }, now * 8, tag),
                        now,
                    );
                }
                if now % 11 == 0 {
                    let mut op = LaneAtomic::new(0, 512, AtomOp::Cas, 0, 1);
                    op.role = LockRole::Acquire;
                    op.holder = now;
                    mem.enqueue(
                        0,
                        MemRequest::new(ReqKind::Atomic { ops: vec![op] }, 512, 1_000 + now)
                            .sync(),
                        now,
                    );
                }
                mem.cycle_into(now, &mut done);
            }
            done
        };
        let finish = |mem: &mut MemorySystem, from: u64| {
            let mut done = Vec::new();
            let mut now = from;
            while !mem.quiescent() && now < from + 100_000 {
                mem.cycle_into(now, &mut done);
                now += 1;
            }
            done
        };

        // Uninterrupted run.
        let mut a = build();
        let mut a_done = drive(&mut a, 200);
        a_done.extend(finish(&mut a, 200));

        // Same run snapshotted mid-flight and restored into a fresh system.
        let mut b = build();
        let mut b_done = drive(&mut b, 200);
        let mut w = SnapWriter::new();
        b.save_snap(&mut w);
        let body = w.into_bytes();
        let mut c = build();
        let mut r = SnapReader::new(&body);
        c.load_snap(&mut r).expect("round trip");
        r.expect_exhausted().expect("full consumption");
        b_done.extend(finish(&mut c, 200));

        assert_eq!(a_done, b_done, "completion streams diverged");
        assert_eq!(a.stats(), c.stats());
        assert_eq!(a.chaos_stats(), c.chaos_stats());
        assert_eq!(a.gmem().first_diff(c.gmem()), None);

        // A second snapshot of the restored system is byte-identical to
        // the original snapshot taken at the same point (canonical form).
        let mut b2 = build();
        drive(&mut b2, 200);
        let mut w2 = SnapWriter::new();
        b2.save_snap(&mut w2);
        let mut c2 = build();
        let body2 = w2.into_bytes();
        let mut r2 = SnapReader::new(&body2);
        c2.load_snap(&mut r2).unwrap();
        let mut w3 = SnapWriter::new();
        c2.save_snap(&mut w3);
        let mut w4 = SnapWriter::new();
        b2.save_snap(&mut w4);
        assert_eq!(w3.into_bytes(), w4.into_bytes(), "snapshot not canonical");
    }
}
