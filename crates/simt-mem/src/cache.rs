//! A set-associative cache with true-LRU replacement.

use crate::{line_of, Addr, LINE_BYTES};

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent (the caller decides whether to allocate via
    /// [`Cache::fill`]).
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// Set-associative, true-LRU cache directory (tags only — data lives in the
/// functional [`crate::GlobalMem`]).
///
/// Both the per-SM L1D and each L2 partition slice use this type; write
/// policy (write-through, no write-allocate) is enforced by the caller in
/// [`crate::MemorySystem`].
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    lines: Vec<Way>,
    tick: u64,
}

impl Cache {
    /// A cache of `size_bytes` capacity with `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, capacity not a
    /// multiple of `ways * LINE_BYTES`, or a non-power-of-two set count).
    pub fn new(size_bytes: u64, ways: usize) -> Cache {
        assert!(ways > 0, "cache needs at least one way");
        let lines_total = size_bytes / LINE_BYTES;
        assert!(
            (lines_total as usize).is_multiple_of(ways),
            "capacity {size_bytes} not a multiple of ways*line"
        );
        let sets = lines_total as usize / ways;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        Cache {
            sets,
            ways,
            lines: vec![
                Way {
                    tag: 0,
                    valid: false,
                    last_use: 0,
                };
                sets * ways
            ],
            tick: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, line: Addr) -> usize {
        ((line / LINE_BYTES) as usize) & (self.sets - 1)
    }

    /// Probe for the line containing `addr`, updating LRU state on hit.
    pub fn access(&mut self, addr: Addr) -> AccessOutcome {
        self.tick += 1;
        let line = line_of(addr);
        let set = self.set_of(line);
        for w in 0..self.ways {
            let e = &mut self.lines[set * self.ways + w];
            if e.valid && e.tag == line {
                e.last_use = self.tick;
                return AccessOutcome::Hit;
            }
        }
        AccessOutcome::Miss
    }

    /// Probe without updating LRU state (for instrumentation).
    pub fn peek(&self, addr: Addr) -> AccessOutcome {
        let line = line_of(addr);
        let set = self.set_of(line);
        for w in 0..self.ways {
            let e = &self.lines[set * self.ways + w];
            if e.valid && e.tag == line {
                return AccessOutcome::Hit;
            }
        }
        AccessOutcome::Miss
    }

    /// Insert the line containing `addr`, evicting the LRU way if needed.
    /// Returns the evicted line address, if any.
    pub fn fill(&mut self, addr: Addr) -> Option<Addr> {
        self.tick += 1;
        let line = line_of(addr);
        let set = self.set_of(line);
        // Already present (racing fills merge silently).
        for w in 0..self.ways {
            let e = &mut self.lines[set * self.ways + w];
            if e.valid && e.tag == line {
                e.last_use = self.tick;
                return None;
            }
        }
        // Free way?
        let mut victim = 0;
        let mut victim_use = u64::MAX;
        for w in 0..self.ways {
            let e = &self.lines[set * self.ways + w];
            if !e.valid {
                victim = w;
                break;
            }
            if e.last_use < victim_use {
                victim = w;
                victim_use = e.last_use;
            }
        }
        let e = &mut self.lines[set * self.ways + victim];
        let evicted = e.valid.then_some(e.tag);
        e.tag = line;
        e.valid = true;
        e.last_use = self.tick;
        evicted
    }

    /// Invalidate every line (kernel-launch boundary).
    pub fn flush(&mut self) {
        for e in &mut self.lines {
            e.valid = false;
        }
    }

    /// Number of valid lines (test/instrumentation helper).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|e| e.valid).count()
    }

    /// Serialize directory state (tags, validity, LRU clock) for a
    /// checkpoint. Geometry (`sets`/`ways`) comes from construction and is
    /// written only to be cross-checked on restore.
    pub(crate) fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        w.usize(self.sets);
        w.usize(self.ways);
        w.u64(self.tick);
        for e in &self.lines {
            w.u64(e.tag);
            w.bool(e.valid);
            w.u64(e.last_use);
        }
    }

    /// Restore directory state written by [`Cache::save_snap`] into a
    /// cache of identical geometry.
    pub(crate) fn load_snap(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        let sets = r.usize()?;
        let ways = r.usize()?;
        if sets != self.sets || ways != self.ways {
            return Err(simt_snap::SnapshotError::malformed(format!(
                "cache geometry mismatch: snapshot {sets}x{ways}, config {}x{}",
                self.sets, self.ways
            )));
        }
        self.tick = r.u64()?;
        for e in &mut self.lines {
            e.tag = r.u64()?;
            e.valid = r.bool()?;
            e.last_use = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(16 * 1024, 4);
        assert_eq!(c.access(0x1000), AccessOutcome::Miss);
        c.fill(0x1000);
        assert_eq!(c.access(0x1000), AccessOutcome::Hit);
        // Same line, different word.
        assert_eq!(c.access(0x107c), AccessOutcome::Hit);
        // Next line misses.
        assert_eq!(c.access(0x1080), AccessOutcome::Miss);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, small cache: sets = 2*128*2/128/2 ... pick 512B, 2-way => 2 sets.
        let mut c = Cache::new(512, 2);
        assert_eq!(c.sets(), 2);
        // Three lines mapping to set 0: line numbers 0, 2, 4 (even).
        let l0 = 0;
        let l2 = 2 * LINE_BYTES;
        let l4 = 4 * LINE_BYTES;
        c.fill(l0);
        c.fill(l2);
        // Touch l0 so l2 is LRU.
        assert_eq!(c.access(l0), AccessOutcome::Hit);
        let evicted = c.fill(l4);
        assert_eq!(evicted, Some(l2));
        assert_eq!(c.access(l0), AccessOutcome::Hit);
        assert_eq!(c.access(l2), AccessOutcome::Miss);
        assert_eq!(c.access(l4), AccessOutcome::Hit);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = Cache::new(1024, 2); // 8 lines
        for i in 0..100u64 {
            c.fill(i * LINE_BYTES);
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(1024, 2);
        c.fill(0);
        c.flush();
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let mut c = Cache::new(1024, 2);
        assert_eq!(c.fill(0), None);
        assert_eq!(c.fill(0), None);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        // 3 sets.
        let _ = Cache::new(3 * 2 * LINE_BYTES, 2);
    }
}
