//! GPU memory hierarchy model for the `bows-sim` SIMT simulator.
//!
//! This crate is the memory substrate the paper's evaluation depends on. It
//! models, cycle by cycle:
//!
//! * [`GlobalMem`] — the device's functional global memory (a flat arena),
//! * [`Coalescer`] — grouping of a warp's 32 lane accesses into 128-byte
//!   line transactions,
//! * per-SM L1 data caches (write-through, no write-allocate, **not
//!   coherent** — exactly the property the paper highlights when spinning
//!   warps compete for memory bandwidth),
//! * banked L2 partitions with [`Mshr`]s and an **atomic unit**: atomic
//!   operations bypass the L1 and are applied, lane-ordered, when the
//!   request is serviced at its L2 partition — this is what makes lock
//!   hand-offs, intra-warp vs. inter-warp CAS races and release/acquire
//!   ordering behave as they do on real GPUs,
//! * a DRAM channel model (fixed latency plus a bandwidth-limiting minimum
//!   service interval).
//!
//! The top-level type is [`MemorySystem`]: SMs enqueue [`MemRequest`]s and
//! call [`MemorySystem::cycle`] once per core cycle, collecting
//! [`MemCompletion`]s that unblock warps.
//!
//! # Example
//!
//! ```
//! use simt_mem::{MemConfig, MemRequest, MemorySystem, ReqKind};
//!
//! let mut mem = MemorySystem::new(MemConfig::default(), 1);
//! let buf = mem.gmem_mut().alloc(32);
//! mem.gmem_mut().write_u32(buf, 7);
//!
//! // A (timing-only) load of the line holding `buf` from SM 0:
//! mem.enqueue(0, MemRequest::new(ReqKind::Load { bypass_l1: false }, buf, 0xbeef), 0);
//! let mut done = Vec::new();
//! for cycle in 0..10_000 {
//!     done.extend(mem.cycle(cycle));
//!     if !done.is_empty() { break; }
//! }
//! assert_eq!(done[0].tag, 0xbeef);
//! ```

mod cache;
mod chaos;
mod coalescer;
mod config;
mod gmem;
mod mshr;
mod slab;
mod stats;
mod system;

pub use cache::{AccessOutcome, Cache};
pub use chaos::{ChaosConfig, ChaosEngine, ChaosStats};
pub use coalescer::{Coalescer, LaneAccess, Transaction};
pub use config::MemConfig;
pub use gmem::{GlobalMem, MemFault};
pub use mshr::Mshr;
pub use slab::{ProbeMap, TagSlab};
pub use stats::MemStats;
pub use system::{
    LaneAtomic, LockRole, MemCompletion, MemRequest, MemorySystem, ReqKind, RequestStage,
};

/// Cache line size in bytes (both L1 and L2), as in the paper's Table II.
pub const LINE_BYTES: u64 = 128;

/// Byte address type used throughout the memory system.
pub type Addr = u64;

/// The line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES - 1)
}
