//! Memory-hierarchy configuration.

use crate::ChaosConfig;

/// Geometry and latency parameters of the memory hierarchy.
///
/// Defaults approximate the paper's GTX480 (Fermi) configuration (Table II);
/// `MemConfig::pascal()` approximates the GTX1080Ti one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache size per SM, bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 MSHR entries.
    pub l1_mshrs: usize,
    /// L1 hit latency (core cycles from service to completion).
    pub l1_hit_latency: u64,
    /// Requests the L1 can start servicing per cycle.
    pub l1_ports: usize,
    /// Number of L2 partitions (memory channels).
    pub l2_partitions: usize,
    /// L2 slice size per partition, bytes.
    pub l2_bytes_per_partition: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Interconnect latency SM→partition (and back), one way, cycles.
    pub icnt_latency: u64,
    /// L2 hit latency, cycles.
    pub l2_hit_latency: u64,
    /// Requests an L2 partition can start servicing per cycle.
    pub l2_ports: usize,
    /// Extra latency of a DRAM access beyond L2, cycles.
    pub dram_latency: u64,
    /// Minimum interval between DRAM services per channel, cycles
    /// (bandwidth limit: one 128 B line per interval).
    pub dram_interval: u64,
    /// Fault injection; [`ChaosConfig::off`] (the default) disables it and
    /// keeps timing bit-identical to a chaos-free build.
    pub chaos: ChaosConfig,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::fermi()
    }
}

impl MemConfig {
    /// GTX480-like hierarchy: 16 KB L1, 6 × 64 KB L2 partitions.
    pub fn fermi() -> MemConfig {
        MemConfig {
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l1_mshrs: 32,
            l1_hit_latency: 28,
            l1_ports: 1,
            l2_partitions: 6,
            l2_bytes_per_partition: 64 * 1024,
            l2_ways: 8,
            icnt_latency: 40,
            l2_hit_latency: 40,
            l2_ports: 1,
            dram_latency: 120,
            dram_interval: 4,
            chaos: ChaosConfig::off(),
        }
    }

    /// GTX1080Ti-like hierarchy: 48 KB L1, 11 × 128 KB-ish L2 partitions
    /// (we use 12 partitions so the set count stays a power of two).
    pub fn pascal() -> MemConfig {
        MemConfig {
            l1_bytes: 48 * 1024,
            l1_ways: 6,
            l1_mshrs: 64,
            l1_hit_latency: 24,
            l1_ports: 1,
            l2_partitions: 12,
            l2_bytes_per_partition: 128 * 1024,
            l2_ways: 16,
            icnt_latency: 30,
            l2_hit_latency: 34,
            l2_ports: 1,
            dram_latency: 100,
            dram_interval: 2,
            chaos: ChaosConfig::off(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, LINE_BYTES};

    #[test]
    fn preset_geometries_are_constructible() {
        for cfg in [MemConfig::fermi(), MemConfig::pascal()] {
            let l1 = Cache::new(cfg.l1_bytes, cfg.l1_ways);
            assert!(l1.sets().is_power_of_two());
            let l2 = Cache::new(cfg.l2_bytes_per_partition, cfg.l2_ways);
            assert!(l2.sets() * l2.ways() > 0);
            assert_eq!(cfg.l1_bytes % LINE_BYTES, 0);
        }
    }

    #[test]
    fn default_is_fermi() {
        assert_eq!(MemConfig::default(), MemConfig::fermi());
    }
}
