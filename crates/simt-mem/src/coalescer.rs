//! Memory-access coalescing: a warp's lane accesses → line transactions.

use crate::{line_of, Addr};

/// One lane's memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAccess {
    /// Lane index within the warp (0..32).
    pub lane: u8,
    /// Byte address accessed.
    pub addr: Addr,
}

/// A coalesced 128-byte transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Line-aligned address.
    pub line: Addr,
    /// Bitmask of lanes participating in this transaction.
    pub lane_mask: u32,
}

impl Transaction {
    /// Number of lanes served by this transaction.
    pub fn lanes(&self) -> u32 {
        self.lane_mask.count_ones()
    }
}

/// Coalescing unit: groups the active lanes' addresses by cache line,
/// preserving first-touch order (the order transactions are issued to the
/// memory system, as on hardware).
#[derive(Debug, Clone, Copy, Default)]
pub struct Coalescer;

impl Coalescer {
    /// Coalesce a warp's accesses into per-line transactions.
    pub fn coalesce(accesses: &[LaneAccess]) -> Vec<Transaction> {
        let mut out: Vec<Transaction> = Vec::new();
        for a in accesses {
            let line = line_of(a.addr);
            match out.iter_mut().find(|t| t.line == line) {
                Some(t) => t.lane_mask |= 1u32 << a.lane,
                None => out.push(Transaction {
                    line,
                    lane_mask: 1u32 << a.lane,
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LINE_BYTES;

    fn acc(lane: u8, addr: Addr) -> LaneAccess {
        LaneAccess { lane, addr }
    }

    #[test]
    fn unit_stride_coalesces_to_one_line() {
        let accesses: Vec<_> = (0..32).map(|l| acc(l, 0x1000 + l as u64 * 4)).collect();
        let txs = Coalescer::coalesce(&accesses);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].line, 0x1000);
        assert_eq!(txs[0].lane_mask, u32::MAX);
        assert_eq!(txs[0].lanes(), 32);
    }

    #[test]
    fn strided_accesses_fan_out() {
        // 128-byte stride: every lane its own line.
        let accesses: Vec<_> = (0..32)
            .map(|l| acc(l, l as u64 * LINE_BYTES))
            .collect();
        let txs = Coalescer::coalesce(&accesses);
        assert_eq!(txs.len(), 32);
        for (i, t) in txs.iter().enumerate() {
            assert_eq!(t.lanes(), 1);
            assert_eq!(t.line, i as u64 * LINE_BYTES);
        }
    }

    #[test]
    fn same_address_merges() {
        // All lanes hit the same mutex word (the lock-acquire pattern).
        let accesses: Vec<_> = (0..32).map(|l| acc(l, 0x2000)).collect();
        let txs = Coalescer::coalesce(&accesses);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].lane_mask, u32::MAX);
    }

    #[test]
    fn misaligned_straddle_hits_two_lines() {
        // Lane 0 at line end, lane 1 in next line.
        let txs = Coalescer::coalesce(&[acc(0, LINE_BYTES - 4), acc(1, LINE_BYTES)]);
        assert_eq!(txs.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(Coalescer::coalesce(&[]).is_empty());
    }

    #[test]
    fn lane_union_covers_all_inputs() {
        let accesses: Vec<_> = (0..32).map(|l| acc(l, (l as u64 % 3) * LINE_BYTES)).collect();
        let txs = Coalescer::coalesce(&accesses);
        let union: u32 = txs.iter().fold(0, |m, t| m | t.lane_mask);
        assert_eq!(union, u32::MAX);
        // Masks are disjoint (each access is word-sized, one line each).
        let total: u32 = txs.iter().map(|t| t.lanes()).sum();
        assert_eq!(total, 32);
    }
}
