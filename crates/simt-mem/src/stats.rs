//! Memory-system statistics (feed Figures 1d, 13b and the energy model).


/// Counters accumulated by [`crate::MemorySystem`].
///
/// "Transactions" are coalesced 128-byte requests, the unit the paper's
/// Figure 1d / 13b report. Requests annotated as synchronization code are
/// counted separately so overhead breakdowns can be reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Transactions presented to an L1 (loads + stores, not atomics).
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses (including merges into pending MSHRs).
    pub l1_misses: u64,
    /// Transactions serviced by L2 partitions (all kinds).
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM line reads.
    pub dram_reads: u64,
    /// DRAM line writes.
    pub dram_writes: u64,
    /// Atomic transactions serviced (warp-level, coalesced per line).
    pub atomic_transactions: u64,
    /// Individual lane atomic operations applied.
    pub atomic_lane_ops: u64,
    /// Total memory transactions (L1-level loads/stores + atomics),
    /// the paper's "number of memory transactions".
    pub total_transactions: u64,
    /// Of `total_transactions`, those tagged as synchronization code.
    pub sync_transactions: u64,
    /// Lane-level lock acquires that succeeded (CAS saw the free value).
    pub lock_success: u64,
    /// Failed acquires where the lock was held by the *same* warp.
    pub lock_intra_fail: u64,
    /// Failed acquires where the lock was held by a *different* warp.
    pub lock_inter_fail: u64,
}

impl MemStats {
    /// L1 hit rate in [0,1]; 0 when there were no accesses.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// Fraction of transactions attributable to synchronization.
    pub fn sync_fraction(&self) -> f64 {
        if self.total_transactions == 0 {
            0.0
        } else {
            self.sync_transactions as f64 / self.total_transactions as f64
        }
    }

    /// Element-wise sum (for aggregating across runs).
    pub fn add(&mut self, o: &MemStats) {
        self.l1_accesses += o.l1_accesses;
        self.l1_hits += o.l1_hits;
        self.l1_misses += o.l1_misses;
        self.l2_accesses += o.l2_accesses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.dram_reads += o.dram_reads;
        self.dram_writes += o.dram_writes;
        self.atomic_transactions += o.atomic_transactions;
        self.atomic_lane_ops += o.atomic_lane_ops;
        self.total_transactions += o.total_transactions;
        self.sync_transactions += o.sync_transactions;
        self.lock_success += o.lock_success;
        self.lock_intra_fail += o.lock_intra_fail;
        self.lock_inter_fail += o.lock_inter_fail;
    }

    /// Serialize every counter (checkpoint support). Public because the
    /// GPU loop also checkpoints its own `MemStats` deltas.
    pub fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        for v in [
            self.l1_accesses,
            self.l1_hits,
            self.l1_misses,
            self.l2_accesses,
            self.l2_hits,
            self.l2_misses,
            self.dram_reads,
            self.dram_writes,
            self.atomic_transactions,
            self.atomic_lane_ops,
            self.total_transactions,
            self.sync_transactions,
            self.lock_success,
            self.lock_intra_fail,
            self.lock_inter_fail,
        ] {
            w.u64(v);
        }
    }

    /// Restore counters written by [`MemStats::save_snap`].
    pub fn load_snap(
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<MemStats, simt_snap::SnapshotError> {
        Ok(MemStats {
            l1_accesses: r.u64()?,
            l1_hits: r.u64()?,
            l1_misses: r.u64()?,
            l2_accesses: r.u64()?,
            l2_hits: r.u64()?,
            l2_misses: r.u64()?,
            dram_reads: r.u64()?,
            dram_writes: r.u64()?,
            atomic_transactions: r.u64()?,
            atomic_lane_ops: r.u64()?,
            total_transactions: r.u64()?,
            sync_transactions: r.u64()?,
            lock_success: r.u64()?,
            lock_intra_fail: r.u64()?,
            lock_inter_fail: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = MemStats {
            l1_accesses: 10,
            l1_hits: 7,
            total_transactions: 4,
            sync_transactions: 1,
            ..MemStats::default()
        };
        assert!((s.l1_hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.sync_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(MemStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut a = MemStats {
            l1_accesses: 1,
            ..Default::default()
        };
        let b = MemStats {
            l1_accesses: 2,
            dram_reads: 3,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.l1_accesses, 3);
        assert_eq!(a.dram_reads, 3);
    }
}
