//! Miss-status holding registers: merge concurrent misses to the same line.

use crate::Addr;

/// MSHR file for one cache. Each entry tracks an in-flight line fill and the
/// opaque request tags waiting on it.
///
/// Capacity is a handful of entries (the paper's Table II configures 16-32),
/// so entries live in a dense insertion-ordered vector: lookups are a linear
/// scan over a few words — faster than hashing at this size — and iteration
/// order is deterministic by construction, so snapshots encode the vector
/// verbatim with no sorting pass.
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: Vec<(Addr, Vec<u64>)>,
    capacity: usize,
}

impl Mshr {
    /// An MSHR file with `capacity` distinct in-flight lines.
    pub fn new(capacity: usize) -> Mshr {
        Mshr {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// True if a new (non-merging) miss can currently be tracked.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// True if `line` already has an in-flight fill.
    pub fn pending(&self, line: Addr) -> bool {
        self.entries.iter().any(|(l, _)| *l == line)
    }

    /// Record a miss on `line` for `tag`.
    ///
    /// Returns `true` if this allocated a new entry (the caller must send a
    /// fill request downstream) and `false` if it merged into an existing
    /// one. Callers should check [`Mshr::has_space`] / [`Mshr::pending`]
    /// first; allocating past capacity panics.
    pub fn record(&mut self, line: Addr, tag: u64) -> bool {
        if let Some((_, waiters)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            waiters.push(tag);
            false
        } else {
            assert!(
                self.entries.len() < self.capacity,
                "MSHR overflow: caller must check has_space()"
            );
            self.entries.push((line, vec![tag]));
            true
        }
    }

    /// The fill for `line` arrived: release and return all waiting tags.
    pub fn fill(&mut self, line: Addr) -> Vec<u64> {
        match self.entries.iter().position(|(l, _)| *l == line) {
            // `remove`, not `swap_remove`: later entries keep their relative
            // (allocation) order, which the snapshot encoding exposes.
            Some(i) => self.entries.remove(i).1,
            None => Vec::new(),
        }
    }

    /// Number of lines currently in flight.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Serialize in-flight entries in their live (allocation) order; waiter
    /// lists keep their arrival order verbatim (fills release waiters in
    /// that order).
    pub(crate) fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        w.usize(self.entries.len());
        for (line, waiters) in &self.entries {
            w.u64(*line);
            w.usize(waiters.len());
            for &tag in waiters {
                w.u64(tag);
            }
        }
    }

    /// Restore entries written by [`Mshr::save_snap`]; capacity comes from
    /// construction and bounds the restored entry count.
    pub(crate) fn load_snap(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        let n = r.len(16)?;
        if n > self.capacity {
            return Err(simt_snap::SnapshotError::malformed(format!(
                "mshr snapshot has {n} entries, capacity {}",
                self.capacity
            )));
        }
        let mut entries: Vec<(Addr, Vec<u64>)> = Vec::with_capacity(n);
        for _ in 0..n {
            let line = r.u64()?;
            let m = r.len(8)?;
            let mut waiters = Vec::with_capacity(m);
            for _ in 0..m {
                waiters.push(r.u64()?);
            }
            if entries.iter().any(|(l, _)| *l == line) {
                return Err(simt_snap::SnapshotError::malformed(format!(
                    "duplicate mshr line {line:#x}"
                )));
            }
            entries.push((line, waiters));
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_release() {
        let mut m = Mshr::new(4);
        assert!(m.record(0x100, 1), "first miss allocates");
        assert!(!m.record(0x100, 2), "second merges");
        assert!(m.pending(0x100));
        assert_eq!(m.in_flight(), 1);
        let tags = m.fill(0x100);
        assert_eq!(tags, vec![1, 2]);
        assert!(!m.pending(0x100));
    }

    #[test]
    fn capacity_gates_new_entries() {
        let mut m = Mshr::new(2);
        m.record(0x000, 1);
        m.record(0x080, 2);
        assert!(!m.has_space());
        // Merging into an existing line is still allowed.
        assert!(!m.record(0x000, 3));
        m.fill(0x000);
        assert!(m.has_space());
    }

    #[test]
    #[should_panic(expected = "MSHR overflow")]
    fn overflow_panics() {
        let mut m = Mshr::new(1);
        m.record(0x000, 1);
        m.record(0x080, 2);
    }

    #[test]
    fn fill_unknown_line_is_empty() {
        let mut m = Mshr::new(1);
        assert!(m.fill(0x40).is_empty());
    }

    #[test]
    fn fill_preserves_allocation_order_of_survivors() {
        let mut m = Mshr::new(4);
        m.record(0x000, 1);
        m.record(0x080, 2);
        m.record(0x100, 3);
        m.fill(0x080);
        assert_eq!(m.fill(0x000), vec![1]);
        assert_eq!(m.fill(0x100), vec![3]);
    }
}
