//! Miss-status holding registers: merge concurrent misses to the same line.

use crate::Addr;
use std::collections::HashMap;

/// MSHR file for one cache. Each entry tracks an in-flight line fill and the
/// opaque request tags waiting on it.
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: HashMap<Addr, Vec<u64>>,
    capacity: usize,
}

impl Mshr {
    /// An MSHR file with `capacity` distinct in-flight lines.
    pub fn new(capacity: usize) -> Mshr {
        Mshr {
            entries: HashMap::new(),
            capacity,
        }
    }

    /// True if a new (non-merging) miss can currently be tracked.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// True if `line` already has an in-flight fill.
    pub fn pending(&self, line: Addr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Record a miss on `line` for `tag`.
    ///
    /// Returns `true` if this allocated a new entry (the caller must send a
    /// fill request downstream) and `false` if it merged into an existing
    /// one. Callers should check [`Mshr::has_space`] / [`Mshr::pending`]
    /// first; allocating past capacity panics.
    pub fn record(&mut self, line: Addr, tag: u64) -> bool {
        if let Some(waiters) = self.entries.get_mut(&line) {
            waiters.push(tag);
            false
        } else {
            assert!(
                self.entries.len() < self.capacity,
                "MSHR overflow: caller must check has_space()"
            );
            self.entries.insert(line, vec![tag]);
            true
        }
    }

    /// The fill for `line` arrived: release and return all waiting tags.
    pub fn fill(&mut self, line: Addr) -> Vec<u64> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Number of lines currently in flight.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Serialize in-flight entries, keys sorted so the encoding is
    /// independent of hash-map iteration order; waiter lists keep their
    /// arrival order verbatim (fills release waiters in that order).
    pub(crate) fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        let mut lines: Vec<Addr> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        w.usize(lines.len());
        for line in lines {
            w.u64(line);
            let waiters = &self.entries[&line];
            w.usize(waiters.len());
            for &tag in waiters {
                w.u64(tag);
            }
        }
    }

    /// Restore entries written by [`Mshr::save_snap`]; capacity comes from
    /// construction and bounds the restored entry count.
    pub(crate) fn load_snap(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        let n = r.len(16)?;
        if n > self.capacity {
            return Err(simt_snap::SnapshotError::malformed(format!(
                "mshr snapshot has {n} entries, capacity {}",
                self.capacity
            )));
        }
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let line = r.u64()?;
            let m = r.len(8)?;
            let mut waiters = Vec::with_capacity(m);
            for _ in 0..m {
                waiters.push(r.u64()?);
            }
            if entries.insert(line, waiters).is_some() {
                return Err(simt_snap::SnapshotError::malformed(format!(
                    "duplicate mshr line {line:#x}"
                )));
            }
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_release() {
        let mut m = Mshr::new(4);
        assert!(m.record(0x100, 1), "first miss allocates");
        assert!(!m.record(0x100, 2), "second merges");
        assert!(m.pending(0x100));
        assert_eq!(m.in_flight(), 1);
        let tags = m.fill(0x100);
        assert_eq!(tags, vec![1, 2]);
        assert!(!m.pending(0x100));
    }

    #[test]
    fn capacity_gates_new_entries() {
        let mut m = Mshr::new(2);
        m.record(0x000, 1);
        m.record(0x080, 2);
        assert!(!m.has_space());
        // Merging into an existing line is still allowed.
        assert!(!m.record(0x000, 3));
        m.fill(0x000);
        assert!(m.has_space());
    }

    #[test]
    #[should_panic(expected = "MSHR overflow")]
    fn overflow_panics() {
        let mut m = Mshr::new(1);
        m.record(0x000, 1);
        m.record(0x080, 2);
    }

    #[test]
    fn fill_unknown_line_is_empty() {
        let mut m = Mshr::new(1);
        assert!(m.fill(0x40).is_empty());
    }
}
