//! Deterministic fault injection ("chaos") for the memory hierarchy.
//!
//! The paper's central claim is that fine-grained synchronization makes
//! GPUs fragile: spin loops, SIMT-induced deadlock, and scheduler-driven
//! livelock are all *timing*-dependent failure modes. This module perturbs
//! memory timing — never functional values — so tests can prove that
//! BOWS/DDOS results are robust to latency variation and that hangs are
//! diagnosed rather than silently timing out:
//!
//! * extra DRAM/L2 request latency,
//! * NACK-and-retry of partition requests with capped exponential backoff,
//! * delayed atomic completions (the response, never the serialized
//!   read-modify-write itself, so architectural results are unchanged),
//! * transient MSHR-full back-pressure at the L1s.
//!
//! All perturbations are driven by a seeded splitmix64 stream drawn in
//! simulation order, so a given `(seed, workload)` pair is bit-identical
//! across runs. With [`ChaosConfig::off`] (the default) the engine draws
//! **zero** random numbers and injects nothing: baseline simulations are
//! bit-identical to a build without the chaos layer.

/// Probability scale: knobs are expressed in parts-per-million.
const PPM: u64 = 1_000_000;

/// Fault-injection configuration. The default ([`ChaosConfig::off`])
/// disables every perturbation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the deterministic perturbation stream.
    pub seed: u64,
    /// Probability (ppm) that a request entering the memory system is
    /// charged extra interconnect/queueing latency.
    pub latency_ppm: u32,
    /// Maximum extra latency per injection, cycles (uniform in `1..=max`).
    pub max_extra_latency: u64,
    /// Probability (ppm) that an L2 partition NACKs a request at service,
    /// forcing a retry after an exponential backoff.
    pub nack_ppm: u32,
    /// Retries after which a request can no longer be NACKed (caps the
    /// worst-case delay and guarantees forward progress).
    pub max_nacks: u32,
    /// Backoff delay of the first retry, cycles; doubles per retry.
    pub nack_backoff_base: u64,
    /// Probability (ppm) that an atomic's *response* is delayed after its
    /// lane ops have been applied at the serialization point.
    pub atomic_delay_ppm: u32,
    /// Maximum atomic response delay, cycles (uniform in `1..=max`).
    pub max_atomic_delay: u64,
    /// Probability (ppm), per SM per cycle with L1 work pending, that the
    /// L1 pretends its MSHRs are full and stalls its input queue.
    pub mshr_squeeze_ppm: u32,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig::off()
    }
}

impl ChaosConfig {
    /// No fault injection (the default): zero draws, bit-identical
    /// baseline.
    pub fn off() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            latency_ppm: 0,
            max_extra_latency: 0,
            nack_ppm: 0,
            max_nacks: 0,
            nack_backoff_base: 0,
            atomic_delay_ppm: 0,
            max_atomic_delay: 0,
            mshr_squeeze_ppm: 0,
        }
    }

    /// Preset intensities for the `--chaos-level` CLI flag:
    /// 0 = off, 1 = mild latency jitter, 2 = latency + NACKs + delayed
    /// atomics, 3 = aggressive everything (including MSHR squeezes).
    pub fn with_level(seed: u64, level: u8) -> ChaosConfig {
        match level {
            0 => ChaosConfig::off(),
            1 => ChaosConfig {
                seed,
                latency_ppm: 20_000, // 2% of requests
                max_extra_latency: 64,
                ..ChaosConfig::off()
            },
            2 => ChaosConfig {
                seed,
                latency_ppm: 50_000, // 5%
                max_extra_latency: 128,
                nack_ppm: 10_000, // 1%
                max_nacks: 3,
                nack_backoff_base: 16,
                atomic_delay_ppm: 20_000,
                max_atomic_delay: 96,
                ..ChaosConfig::off()
            },
            _ => ChaosConfig {
                seed,
                latency_ppm: 120_000, // 12%
                max_extra_latency: 256,
                nack_ppm: 40_000, // 4%
                max_nacks: 4,
                nack_backoff_base: 32,
                atomic_delay_ppm: 60_000,
                max_atomic_delay: 256,
                mshr_squeeze_ppm: 15_000,
            },
        }
    }

    /// True when any perturbation can fire.
    pub fn enabled(&self) -> bool {
        self.latency_ppm != 0
            || self.nack_ppm != 0
            || self.atomic_delay_ppm != 0
            || self.mshr_squeeze_ppm != 0
    }
}

/// Counters of injected faults, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Requests charged extra latency.
    pub latency_injections: u64,
    /// Total extra cycles charged.
    pub extra_latency_cycles: u64,
    /// Partition NACKs issued.
    pub nacks: u64,
    /// Atomic responses delayed.
    pub atomic_delays: u64,
    /// L1 cycles stalled by a fake MSHR-full condition.
    pub mshr_squeezes: u64,
}

/// The seeded fault injector. One instance lives inside
/// [`crate::MemorySystem`]; every decision consumes the deterministic
/// stream in simulation order.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    cfg: ChaosConfig,
    state: u64,
    enabled: bool,
    stats: ChaosStats,
}

impl ChaosEngine {
    /// Build an engine; disabled configs never draw from the stream.
    pub fn new(cfg: ChaosConfig) -> ChaosEngine {
        let enabled = cfg.enabled();
        ChaosEngine {
            state: cfg.seed,
            cfg,
            enabled,
            stats: ChaosStats::default(),
        }
    }

    /// True when any perturbation can fire.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Injection counters so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// splitmix64 step.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Bernoulli draw at `ppm` parts-per-million; `ppm == 0` draws nothing.
    fn roll(&mut self, ppm: u32) -> bool {
        ppm != 0 && self.next() % PPM < u64::from(ppm)
    }

    /// Extra latency to charge a request entering the memory system.
    pub fn extra_request_latency(&mut self) -> u64 {
        if !self.enabled || !self.roll(self.cfg.latency_ppm) {
            return 0;
        }
        let extra = 1 + self.next() % self.cfg.max_extra_latency.max(1);
        self.stats.latency_injections += 1;
        self.stats.extra_latency_cycles += extra;
        extra
    }

    /// Decide whether a partition NACKs a request that has already been
    /// retried `retries` times. Returns the backoff delay before the retry
    /// re-arbitrates; `None` means "service normally". The delay grows
    /// exponentially (base << retries) and the retry count is capped so a
    /// request can never be starved indefinitely by the injector itself.
    pub fn nack_delay(&mut self, retries: u32) -> Option<u64> {
        if !self.enabled || retries >= self.cfg.max_nacks || !self.roll(self.cfg.nack_ppm) {
            return None;
        }
        self.stats.nacks += 1;
        let shift = retries.min(5);
        Some(self.cfg.nack_backoff_base.max(1) << shift)
    }

    /// Extra delay for an atomic response (after its ops were applied).
    pub fn atomic_delay(&mut self) -> u64 {
        if !self.enabled || !self.roll(self.cfg.atomic_delay_ppm) {
            return 0;
        }
        let extra = 1 + self.next() % self.cfg.max_atomic_delay.max(1);
        self.stats.atomic_delays += 1;
        extra
    }

    /// Whether an L1 with pending work should pretend its MSHRs are full
    /// this cycle.
    pub fn mshr_squeeze(&mut self) -> bool {
        if !self.enabled || !self.roll(self.cfg.mshr_squeeze_ppm) {
            return false;
        }
        self.stats.mshr_squeezes += 1;
        true
    }

    /// Whether [`ChaosEngine::mshr_squeeze`] can ever consume an RNG draw.
    /// When true, any cycle with a non-empty L1 queue rolls the dice, so
    /// the fast-forward engine must not skip such cycles (a skipped roll
    /// would desynchronize the deterministic chaos stream). When the
    /// squeeze probability is zero, `roll` short-circuits before drawing
    /// and skipping is safe.
    pub fn squeeze_possible(&self) -> bool {
        self.enabled && self.cfg.mshr_squeeze_ppm != 0
    }

    /// Serialize the RNG stream position and injection counters. The
    /// config (and therefore `enabled`) comes from construction — resuming
    /// under a different chaos config would silently change the fault
    /// schedule, so the seed is written for a cross-check.
    pub(crate) fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        w.u64(self.cfg.seed);
        w.u64(self.state);
        w.u64(self.stats.latency_injections);
        w.u64(self.stats.extra_latency_cycles);
        w.u64(self.stats.nacks);
        w.u64(self.stats.atomic_delays);
        w.u64(self.stats.mshr_squeezes);
    }

    /// Restore the stream position written by [`ChaosEngine::save_snap`].
    pub(crate) fn load_snap(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        let seed = r.u64()?;
        if seed != self.cfg.seed {
            return Err(simt_snap::SnapshotError::malformed(format!(
                "chaos seed mismatch: snapshot {seed}, config {}",
                self.cfg.seed
            )));
        }
        self.state = r.u64()?;
        self.stats.latency_injections = r.u64()?;
        self.stats.extra_latency_cycles = r.u64()?;
        self.stats.nacks = r.u64()?;
        self.stats.atomic_delays = r.u64()?;
        self.stats.mshr_squeezes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_engine_never_injects_or_draws() {
        let mut e = ChaosEngine::new(ChaosConfig::off());
        assert!(!e.enabled());
        for _ in 0..1000 {
            assert_eq!(e.extra_request_latency(), 0);
            assert_eq!(e.nack_delay(0), None);
            assert_eq!(e.atomic_delay(), 0);
            assert!(!e.mshr_squeeze());
        }
        assert_eq!(e.state, ChaosConfig::off().seed, "no draws when off");
        assert_eq!(*e.stats(), ChaosStats::default());
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = ChaosConfig::with_level(42, 3);
        let mut a = ChaosEngine::new(cfg.clone());
        let mut b = ChaosEngine::new(cfg);
        for i in 0..5000 {
            assert_eq!(a.extra_request_latency(), b.extra_request_latency(), "{i}");
            assert_eq!(a.nack_delay(i % 5), b.nack_delay(i % 5), "{i}");
            assert_eq!(a.atomic_delay(), b.atomic_delay(), "{i}");
            assert_eq!(a.mshr_squeeze(), b.mshr_squeeze(), "{i}");
        }
        assert_eq!(*a.stats(), *b.stats());
    }

    #[test]
    fn level_presets_inject_at_roughly_configured_rates() {
        let mut e = ChaosEngine::new(ChaosConfig::with_level(7, 2));
        let n = 100_000;
        for _ in 0..n {
            e.extra_request_latency();
        }
        let hits = e.stats().latency_injections;
        // 5% nominal; allow a generous band.
        assert!((3 * n / 100..7 * n / 100).contains(&hits), "{hits}");
    }

    #[test]
    fn nack_backoff_grows_and_caps() {
        let cfg = ChaosConfig {
            nack_ppm: PPM as u32, // always NACK until the cap
            max_nacks: 3,
            nack_backoff_base: 16,
            ..ChaosConfig::with_level(1, 1)
        };
        let mut e = ChaosEngine::new(cfg);
        assert_eq!(e.nack_delay(0), Some(16));
        assert_eq!(e.nack_delay(1), Some(32));
        assert_eq!(e.nack_delay(2), Some(64));
        assert_eq!(e.nack_delay(3), None, "retry cap reached");
        assert_eq!(e.nack_delay(100), None);
        assert_eq!(e.stats().nacks, 3);
    }
}
