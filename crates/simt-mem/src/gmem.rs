//! Functional device global memory.

use crate::{Addr, LINE_BYTES};
use std::fmt;

/// A rejected device-memory access: the address was unaligned or outside
/// every allocation. Produced by the checked accessors
/// ([`GlobalMem::try_read_u32`] / [`GlobalMem::try_write_u32`] /
/// [`GlobalMem::check_addr`]) so the simulation pipeline can turn a buggy
/// kernel's wild access into a typed error instead of a panic — a
/// malformed service request must never take down a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The offending byte address.
    pub addr: Addr,
    /// True when the fault is an alignment violation (else out of bounds).
    pub unaligned: bool,
    /// Bytes allocated at fault time (the valid range is `0..allocated`).
    pub allocated: u64,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unaligned {
            write!(f, "unaligned global access at {:#x}", self.addr)
        } else {
            write!(
                f,
                "global access out of bounds: {:#x} (allocated {:#x})",
                self.addr, self.allocated
            )
        }
    }
}

/// A flat, bump-allocated functional global memory.
///
/// Timing is modeled elsewhere; this type only answers "what value does this
/// word hold". Allocations are line-aligned so distinct buffers never share a
/// cache line (matching how CUDA allocators behave and keeping experiments
/// free of false sharing).
#[derive(Debug, Clone, Default)]
pub struct GlobalMem {
    data: Vec<u32>,
    next: Addr,
}

impl GlobalMem {
    /// An empty memory.
    pub fn new() -> GlobalMem {
        GlobalMem::default()
    }

    /// Allocate `words` 32-bit words; returns the (line-aligned) base byte
    /// address. The contents are zero-initialized.
    pub fn alloc(&mut self, words: u64) -> Addr {
        let base = self.next;
        let bytes = words * 4;
        let aligned = (bytes + LINE_BYTES - 1) & !(LINE_BYTES - 1);
        self.next += aligned;
        self.data.resize((self.next / 4) as usize, 0);
        base
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.next
    }

    /// Read the word at a 4-byte-aligned address.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access — both indicate a kernel
    /// bug, and failing loudly beats silently corrupting an experiment.
    #[inline]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned global read at {addr:#x}");
        let idx = (addr / 4) as usize;
        assert!(
            idx < self.data.len(),
            "global read out of bounds: {addr:#x} (allocated {:#x})",
            self.next
        );
        self.data[idx]
    }

    /// Write the word at a 4-byte-aligned address.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        assert_eq!(addr % 4, 0, "unaligned global write at {addr:#x}");
        let idx = (addr / 4) as usize;
        assert!(
            idx < self.data.len(),
            "global write out of bounds: {addr:#x} (allocated {:#x})",
            self.next
        );
        self.data[idx] = value;
    }

    /// Validate an address for a 4-byte access without touching it.
    ///
    /// # Errors
    ///
    /// Returns the [`MemFault`] a [`GlobalMem::read_u32`] /
    /// [`GlobalMem::write_u32`] of the same address would panic with.
    #[inline]
    pub fn check_addr(&self, addr: Addr) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault {
                addr,
                unaligned: true,
                allocated: self.next,
            });
        }
        if addr / 4 >= self.data.len() as u64 {
            return Err(MemFault {
                addr,
                unaligned: false,
                allocated: self.next,
            });
        }
        Ok(())
    }

    /// Checked read: like [`GlobalMem::read_u32`] but returns a typed
    /// fault instead of panicking. The simulation pipeline uses this for
    /// kernel-driven accesses, keeping wild addresses survivable.
    ///
    /// # Errors
    ///
    /// See [`GlobalMem::check_addr`].
    #[inline]
    pub fn try_read_u32(&self, addr: Addr) -> Result<u32, MemFault> {
        self.check_addr(addr)?;
        Ok(self.data[(addr / 4) as usize])
    }

    /// Checked write: like [`GlobalMem::write_u32`] but returns a typed
    /// fault instead of panicking.
    ///
    /// # Errors
    ///
    /// See [`GlobalMem::check_addr`].
    #[inline]
    pub fn try_write_u32(&mut self, addr: Addr, value: u32) -> Result<(), MemFault> {
        self.check_addr(addr)?;
        self.data[(addr / 4) as usize] = value;
        Ok(())
    }

    /// Copy a slice into memory starting at `base`.
    pub fn write_slice(&mut self, base: Addr, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_u32(base + i as u64 * 4, v);
        }
    }

    /// Read `len` words starting at `base`.
    pub fn read_vec(&self, base: Addr, len: u64) -> Vec<u32> {
        (0..len).map(|i| self.read_u32(base + i * 4)).collect()
    }

    /// The full memory image as words (word `i` holds byte address `4*i`).
    ///
    /// This is the deterministic final-memory readback used by the
    /// differential oracle: after a kernel completes, the image *is* the
    /// architectural memory state, with no cache or in-flight-request
    /// residue (the timing model writes through to this array at its
    /// serialization points).
    pub fn image(&self) -> &[u32] {
        &self.data
    }

    /// Byte address of the first word where `self` and `other` disagree,
    /// or `None` when the images are identical.
    ///
    /// Images of different lengths differ at the first address past the
    /// shorter one (allocation sequences diverged — itself a finding).
    pub fn first_diff(&self, other: &GlobalMem) -> Option<Addr> {
        let n = self.data.len().min(other.data.len());
        for i in 0..n {
            if self.data[i] != other.data[i] {
                return Some(i as Addr * 4);
            }
        }
        if self.data.len() != other.data.len() {
            return Some(n as Addr * 4);
        }
        None
    }

    /// Serialize the full memory image and allocation cursor.
    pub(crate) fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        w.u64(self.next);
        w.usize(self.data.len());
        for &word in &self.data {
            w.u32(word);
        }
    }

    /// Restore an image written by [`GlobalMem::save_snap`].
    pub(crate) fn load_snap(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        self.next = r.u64()?;
        let n = r.len(4)?;
        if n as u64 * 4 != self.next {
            return Err(simt_snap::SnapshotError::malformed(format!(
                "global memory image is {n} words but allocation cursor is {:#x} bytes",
                self.next
            )));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.u32()?);
        }
        self.data = data;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = GlobalMem::new();
        let a = m.alloc(1);
        let b = m.alloc(33); // 132 bytes -> two lines
        let c = m.alloc(1);
        assert_eq!(a % LINE_BYTES, 0);
        assert_eq!(b % LINE_BYTES, 0);
        assert_eq!(c % LINE_BYTES, 0);
        assert_eq!(b, a + LINE_BYTES);
        assert_eq!(c, b + 2 * LINE_BYTES);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc(64);
        m.write_u32(a + 8, 0xdead_beef);
        assert_eq!(m.read_u32(a + 8), 0xdead_beef);
        assert_eq!(m.read_u32(a), 0, "zero initialized");
    }

    #[test]
    fn slice_helpers() {
        let mut m = GlobalMem::new();
        let a = m.alloc(8);
        m.write_slice(a, &[1, 2, 3]);
        assert_eq!(m.read_vec(a, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn first_diff_finds_earliest_byte_address() {
        let mut a = GlobalMem::new();
        let base = a.alloc(8);
        let mut b = a.clone();
        assert_eq!(a.first_diff(&b), None);
        b.write_u32(base + 12, 7);
        b.write_u32(base + 20, 9);
        assert_eq!(a.first_diff(&b), Some(base + 12));
        assert_eq!(b.first_diff(&a), Some(base + 12));
        // Length mismatch differs at the end of the shorter image.
        let longer_end = a.allocated_bytes();
        b.alloc(1);
        a.write_u32(base + 12, 7);
        a.write_u32(base + 20, 9);
        assert_eq!(a.first_diff(&b), Some(longer_end));
    }

    #[test]
    fn checked_accessors_fault_instead_of_panicking() {
        let mut m = GlobalMem::new();
        let a = m.alloc(4);
        assert_eq!(m.try_read_u32(a), Ok(0));
        assert!(m.try_write_u32(a, 7).is_ok());
        assert_eq!(m.try_read_u32(a), Ok(7));
        let oob = m.try_read_u32(1 << 40).unwrap_err();
        assert!(!oob.unaligned);
        assert!(oob.to_string().contains("out of bounds"));
        let unaligned = m.try_write_u32(a + 2, 1).unwrap_err();
        assert!(unaligned.unaligned);
        assert!(unaligned.to_string().contains("unaligned"));
        assert!(m.check_addr(a + 4).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let m = GlobalMem::new();
        m.read_u32(0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_panics() {
        let mut m = GlobalMem::new();
        m.alloc(4);
        m.write_u32(2, 1);
    }
}
