//! Dense hot-path containers replacing the simulator's per-event HashMaps.
//!
//! Both structures are deterministic *by construction*: iteration visits
//! slots in index order, so snapshot encoders write them verbatim with no
//! sort-before-write pass, and a restored container is byte-for-byte the
//! container that was saved — including its internal layout (free-list
//! order, probe positions), which later snapshots of a resumed run depend
//! on for bit-exact resume invariance.
//!
//! * [`TagSlab`] keys in-flight entries by a generational handle the slab
//!   itself issues (slot index + generation), replacing
//!   `HashMap<u64, PendingMem>` + a tag counter: insert/lookup/remove are
//!   array indexing, and stale or forged tags miss by generation.
//! * [`ProbeMap`] is a u64-keyed open-addressing table (Fibonacci hashing,
//!   linear probing, backward-shift deletion) for address-keyed state such
//!   as lock owners and parked lock-acquire queues, replacing
//!   `HashMap<Addr, _>` without per-access SipHash.

use simt_snap::{SnapReader, SnapWriter, SnapshotError};

/// Generational slab issuing `u64` tags: low 32 bits slot index, high 32
/// bits the slot's generation at insert. A tag stays valid until its entry
/// is removed; the generation bump on removal makes stale tags miss instead
/// of aliasing a later entry.
#[derive(Debug, Clone, Default)]
pub struct TagSlab<T> {
    /// `(generation, occupant)` per slot.
    slots: Vec<(u32, Option<T>)>,
    /// Vacant slot indices, reused LIFO.
    free: Vec<u32>,
    len: usize,
}

impl<T> TagSlab<T> {
    /// An empty slab.
    pub fn new() -> TagSlab<T> {
        TagSlab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `value`, returning its tag.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                let (generation, occ) = &mut self.slots[slot as usize];
                debug_assert!(occ.is_none(), "free list pointed at a live slot");
                *occ = Some(value);
                ((*generation as u64) << 32) | slot as u64
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push((0, Some(value)));
                slot as u64
            }
        }
    }

    #[inline]
    fn index_of(&self, tag: u64) -> Option<usize> {
        let slot = (tag & 0xffff_ffff) as usize;
        let generation = (tag >> 32) as u32;
        match self.slots.get(slot) {
            Some((g, Some(_))) if *g == generation => Some(slot),
            _ => None,
        }
    }

    /// Look up a live entry by tag.
    #[inline]
    pub fn get(&self, tag: u64) -> Option<&T> {
        self.index_of(tag).and_then(|i| self.slots[i].1.as_ref())
    }

    /// Mutable lookup by tag.
    #[inline]
    pub fn get_mut(&mut self, tag: u64) -> Option<&mut T> {
        self.index_of(tag).and_then(|i| self.slots[i].1.as_mut())
    }

    /// Remove and return the entry for `tag`, invalidating the tag.
    pub fn remove(&mut self, tag: u64) -> Option<T> {
        let i = self.index_of(tag)?;
        let (generation, occ) = &mut self.slots[i];
        let value = occ.take();
        *generation = generation.wrapping_add(1);
        self.free.push(i as u32);
        self.len -= 1;
        value
    }

    /// Live `(tag, entry)` pairs in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, (g, occ))| {
            occ.as_ref()
                .map(|v| (((*g as u64) << 32) | i as u64, v))
        })
    }

    /// Serialize the slab verbatim — slot layout, generations and free-list
    /// order all survive, so tags issued before the snapshot stay valid
    /// after restore and future tag assignment is bit-identical.
    pub fn save_snap(&self, w: &mut SnapWriter, mut save: impl FnMut(&mut SnapWriter, &T)) {
        w.usize(self.slots.len());
        for (generation, occ) in &self.slots {
            w.u32(*generation);
            match occ {
                Some(v) => {
                    w.bool(true);
                    save(w, v);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.free.len());
        for &slot in &self.free {
            w.u32(slot);
        }
    }

    /// Restore a slab written by [`TagSlab::save_snap`], validating the
    /// structural invariants (free list covers exactly the vacant slots, no
    /// duplicates) so a corrupted snapshot fails structured instead of
    /// corrupting tag assignment.
    pub fn load_snap(
        r: &mut SnapReader<'_>,
        mut load: impl FnMut(&mut SnapReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<TagSlab<T>, SnapshotError> {
        let nslots = r.len(5)?;
        let mut slots = Vec::with_capacity(nslots);
        let mut len = 0usize;
        for _ in 0..nslots {
            let generation = r.u32()?;
            let occ = if r.bool()? {
                len += 1;
                Some(load(r)?)
            } else {
                None
            };
            slots.push((generation, occ));
        }
        let nfree = r.len(4)?;
        if nfree != nslots - len {
            return Err(SnapshotError::malformed(format!(
                "tag slab free list has {nfree} entries for {} vacant slots",
                nslots - len
            )));
        }
        let mut free = Vec::with_capacity(nfree);
        let mut seen = vec![false; nslots];
        for _ in 0..nfree {
            let slot = r.u32()?;
            let Some((_, occ)) = slots.get(slot as usize) else {
                return Err(SnapshotError::malformed(format!(
                    "tag slab free list names slot {slot} of {nslots}"
                )));
            };
            if occ.is_some() || seen[slot as usize] {
                return Err(SnapshotError::malformed(format!(
                    "tag slab free list entry {slot} is live or duplicated"
                )));
            }
            seen[slot as usize] = true;
            free.push(slot);
        }
        Ok(TagSlab { slots, free, len })
    }
}

/// Multiplicative (Fibonacci) hash constant: 2^64 / φ.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
/// Initial capacity on first insert; must be a power of two.
const PROBE_MIN_CAP: usize = 8;

/// Open-addressing `u64 -> V` map with linear probing and backward-shift
/// deletion (no tombstones). Capacity is always zero or a power of two and
/// load is kept at or under 3/4, so probe chains stay short and lookups
/// terminate. Iteration is in slot order — deterministic for a given
/// insertion/removal history, which snapshots preserve verbatim.
#[derive(Debug, Clone, Default)]
pub struct ProbeMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> ProbeMap<V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> ProbeMap<V> {
        ProbeMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // slots.len() is a power of two >= 8 whenever this is called.
        let shift = 64 - self.slots.len().trailing_zeros();
        (key.wrapping_mul(FIB) >> shift) as usize
    }

    #[inline]
    fn find_slot(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find_slot(key)
            .and_then(|i| self.slots[i].as_ref().map(|(_, v)| v))
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find_slot(key)
            .and_then(|i| self.slots[i].as_mut().map(|(_, v)| v))
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find_slot(key).is_some()
    }

    /// Insert or replace, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.grow_for_one();
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// The value for `key`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.find_slot(key).is_none() {
            self.insert(key, default());
        }
        let i = self.find_slot(key).expect("key just inserted");
        self.slots[i].as_mut().map(|(_, v)| v).expect("slot is live")
    }

    /// Remove `key`, closing the probe chain by backward-shifting any
    /// displaced entries so future lookups never cross a hole.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find_slot(key)?;
        let (_, value) = self.slots[hole].take().expect("found slot is live");
        self.len -= 1;
        let mask = self.slots.len() - 1;
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let Some((k, _)) = &self.slots[j] else {
                break;
            };
            let h = self.home(*k);
            // The entry at j may move into the hole iff its home lies at or
            // cyclically before the hole (probe distance reaches the hole).
            if (j.wrapping_sub(h) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
        }
        Some(value)
    }

    /// Live `(key, value)` pairs in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Live values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(_, v)| v))
    }

    fn grow_for_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = (0..PROBE_MIN_CAP).map(|_| None).collect();
            return;
        }
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            let doubled = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, (0..doubled).map(|_| None).collect());
            self.len = 0;
            for (k, v) in old.into_iter().flatten() {
                self.insert(k, v);
            }
        }
    }

    /// Serialize the table verbatim — capacity and slot positions included —
    /// so a restored map probes, grows and iterates exactly like the saved
    /// one.
    pub fn save_snap(&self, w: &mut SnapWriter, mut save: impl FnMut(&mut SnapWriter, &V)) {
        w.usize(self.slots.len());
        w.usize(self.len);
        for slot in &self.slots {
            match slot {
                Some((k, v)) => {
                    w.bool(true);
                    w.u64(*k);
                    save(w, v);
                }
                None => w.bool(false),
            }
        }
    }

    /// Restore a table written by [`ProbeMap::save_snap`], validating shape
    /// (power-of-two capacity, load bound) and the probe invariant (every
    /// stored key is reachable from its home slot) so a corrupted snapshot
    /// cannot produce a map that loses entries.
    pub fn load_snap(
        r: &mut SnapReader<'_>,
        mut load: impl FnMut(&mut SnapReader<'_>) -> Result<V, SnapshotError>,
    ) -> Result<ProbeMap<V>, SnapshotError> {
        let cap = r.len(1)?;
        let len = r.usize()?;
        if cap == 0 {
            if len != 0 {
                return Err(SnapshotError::malformed(
                    "probe map claims entries with zero capacity",
                ));
            }
            return Ok(ProbeMap::new());
        }
        if !cap.is_power_of_two() || cap < PROBE_MIN_CAP || len * 4 > cap * 3 {
            return Err(SnapshotError::malformed(format!(
                "probe map shape invalid: {len} entries in capacity {cap}"
            )));
        }
        let mut slots = Vec::with_capacity(cap);
        let mut occupied = 0usize;
        for _ in 0..cap {
            if r.bool()? {
                occupied += 1;
                let k = r.u64()?;
                slots.push(Some((k, load(r)?)));
            } else {
                slots.push(None);
            }
        }
        if occupied != len {
            return Err(SnapshotError::malformed(format!(
                "probe map has {occupied} occupied slots, header says {len}"
            )));
        }
        let map = ProbeMap { slots, len };
        for (i, slot) in map.slots.iter().enumerate() {
            if let Some((k, _)) = slot {
                if map.find_slot(*k) != Some(i) {
                    return Err(SnapshotError::malformed(format!(
                        "probe map key {k:#x} unreachable from its home slot"
                    )));
                }
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_slab_insert_get_remove() {
        let mut s: TagSlab<u32> = TagSlab::new();
        let a = s.insert(10);
        let b = s.insert(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&10));
        *s.get_mut(b).unwrap() = 21;
        assert_eq!(s.remove(b), Some(21));
        assert_eq!(s.get(b), None, "removed tag is dead");
        assert_eq!(s.remove(b), None, "double remove misses");
        // Reuse bumps the generation: old tag still misses.
        let c = s.insert(30);
        assert_ne!(b, c);
        assert_eq!(b & 0xffff_ffff, c & 0xffff_ffff, "slot reused LIFO");
        assert_eq!(s.get(b), None);
        assert_eq!(s.get(c), Some(&30));
    }

    #[test]
    fn tag_slab_iterates_in_slot_order() {
        let mut s: TagSlab<u32> = TagSlab::new();
        let tags: Vec<u64> = (0..5).map(|i| s.insert(i)).collect();
        s.remove(tags[1]);
        let got: Vec<u32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, vec![0, 2, 3, 4]);
    }

    #[test]
    fn probe_map_basic_ops() {
        let mut m: ProbeMap<u32> = ProbeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(0x1000, 1), None);
        assert_eq!(m.insert(0x1000, 2), Some(1));
        assert_eq!(m.get(0x1000), Some(&2));
        assert_eq!(m.remove(0x1000), Some(2));
        assert_eq!(m.remove(0x1000), None);
        assert!(m.is_empty());
    }

    #[test]
    fn probe_map_survives_growth_and_collisions() {
        let mut m: ProbeMap<u64> = ProbeMap::new();
        for i in 0..1000u64 {
            m.insert(i * 128, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 128), Some(&i), "key {i}");
        }
        for i in (0..1000u64).step_by(2) {
            assert_eq!(m.remove(i * 128), Some(i));
        }
        for i in 0..1000u64 {
            let want = (i % 2 == 1).then_some(i);
            assert_eq!(m.get(i * 128).copied(), want, "key {i} after removals");
        }
    }

    #[test]
    fn probe_map_get_or_insert_with() {
        let mut m: ProbeMap<Vec<u32>> = ProbeMap::new();
        m.get_or_insert_with(7, Vec::new).push(1);
        m.get_or_insert_with(7, Vec::new).push(2);
        assert_eq!(m.get(7), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }
}
