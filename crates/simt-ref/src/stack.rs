//! An independent re-implementation of the IPDOM reconvergence stack.
//!
//! Semantically identical to the cycle-level machine's stack (divergent
//! branches push the fall-through side below the taken side; an entry pops
//! when its PC reaches its reconvergence PC), but written against the ISA
//! contract rather than shared with `simt-core`, so a stack bug in either
//! implementation shows up as a differential failure instead of cancelling
//! out.

use simt_isa::RECONV_EXIT;

/// One level of divergence: the threads in `mask` execute from `pc` until
/// they reach `rpc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Level {
    pc: usize,
    rpc: usize,
    mask: u32,
}

/// The reference interpreter's reconvergence stack.
#[derive(Debug, Clone)]
pub struct RefStack {
    levels: Vec<Level>,
}

impl RefStack {
    /// A converged warp of `mask` threads entering at `pc`.
    pub fn new(mask: u32, pc: usize) -> RefStack {
        RefStack {
            levels: vec![Level {
                pc,
                rpc: RECONV_EXIT,
                mask,
            }],
        }
    }

    /// All threads have exited.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// PC of the executing group.
    ///
    /// # Panics
    ///
    /// Panics when every thread has exited.
    pub fn pc(&self) -> usize {
        self.levels.last().expect("exited warp has no pc").pc
    }

    /// Mask of the executing group (0 when exited).
    pub fn active(&self) -> u32 {
        self.levels.last().map_or(0, |l| l.mask)
    }

    /// Move the executing group to `next_pc`, reconverging if it arrived.
    pub fn advance(&mut self, next_pc: usize) {
        if let Some(top) = self.levels.last_mut() {
            top.pc = next_pc;
        }
        self.pop_converged();
    }

    /// Execute a branch: `taken` lanes go to `target`, the rest of the
    /// executing group falls through to `fallthrough`; both sides rejoin
    /// at `rpc`.
    pub fn branch(&mut self, taken: u32, target: usize, fallthrough: usize, rpc: usize) {
        let group = self.active();
        let t = taken & group;
        let f = group & !t;
        match (t, f) {
            (0, _) => self.advance(fallthrough),
            (_, 0) => self.advance(target),
            _ => {
                // Divergence. The current level waits at the join; the
                // fall-through side is pushed first so the taken side
                // executes first (matching the cycle-level machine and
                // GPGPU-Sim).
                let top = self.levels.last_mut().expect("branch on exited warp");
                top.pc = rpc;
                self.levels.push(Level {
                    pc: fallthrough,
                    rpc,
                    mask: f,
                });
                self.levels.push(Level {
                    pc: target,
                    rpc,
                    mask: t,
                });
                // A side whose entry PC is already the join (empty arm)
                // reconverges before executing anything.
                self.pop_converged();
            }
        }
    }

    /// Remove `mask` threads everywhere (they executed `exit`).
    pub fn exit_threads(&mut self, mask: u32) {
        for l in &mut self.levels {
            l.mask &= !mask;
        }
        self.levels.retain(|l| l.mask != 0);
        self.pop_converged();
    }

    fn pop_converged(&mut self) {
        while self.levels.len() > 1 {
            let top = self.levels[self.levels.len() - 1];
            if top.rpc != RECONV_EXIT && top.pc == top.rpc {
                self.levels.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergent_branch_runs_taken_side_first_then_rejoins() {
        let mut s = RefStack::new(0xff, 4);
        s.branch(0x0f, 10, 5, 12);
        assert_eq!((s.pc(), s.active()), (10, 0x0f));
        s.advance(12);
        assert_eq!((s.pc(), s.active()), (5, 0xf0));
        s.advance(12);
        assert_eq!((s.pc(), s.active()), (12, 0xff));
    }

    #[test]
    fn empty_arm_reconverges_immediately() {
        let mut s = RefStack::new(0xf, 1);
        s.branch(0xc, 9, 2, 9); // taken side *is* the join
        assert_eq!((s.pc(), s.active()), (2, 0x3));
        s.advance(9);
        assert_eq!((s.pc(), s.active()), (9, 0xf));
    }

    #[test]
    fn exit_inside_divergence_unwinds_to_live_side() {
        let mut s = RefStack::new(0xf, 0);
        s.branch(0x3, 10, 1, 20);
        s.exit_threads(0x3);
        assert_eq!((s.pc(), s.active()), (1, 0xc));
        s.exit_threads(0xc);
        assert!(s.is_empty());
        assert_eq!(s.active(), 0);
    }
}
