//! Functional reference interpreter for `bows-sim` kernels.
//!
//! This crate is the *architectural oracle* of the differential-testing
//! layer: it executes a kernel warp-by-warp against a sequentially-
//! consistent memory, with the same reconvergence-stack semantics as the
//! cycle-level machine but none of its timing model — no scoreboard, no
//! caches, no latencies, no warp scheduler. For any kernel whose final
//! state is schedule-independent, the reference and the simulator must
//! agree bit for bit on final global memory and per-thread registers; a
//! mismatch means one of them executes the ISA wrong.
//!
//! Deliberate design constraints:
//!
//! * **Independent implementation.** The interpreter depends only on
//!   `simt-isa` (the ISA definition, including [`simt_isa::CmpOp::eval`]
//!   and [`simt_isa::AtomOp::apply`], which *are* the ISA) and on
//!   `simt-mem`'s [`GlobalMem`] (the functional memory array). The ALU,
//!   the reconvergence stack and the execution loop are re-implemented
//!   from the ISA semantics, not shared with `simt-core` — shared code
//!   would hide shared bugs.
//! * **Fair interleaving.** All warps of *all* CTAs are resident at once
//!   and stepped round-robin, one instruction each. This guarantees
//!   forward progress through inter-warp and inter-CTA busy-wait
//!   synchronization (flags, spin locks) without modeling a scheduler:
//!   every spinning warp's partner eventually runs.
//! * **Sequential consistency.** Loads read and stores/atomics update
//!   [`GlobalMem`] at the instruction step that executes them, in lane
//!   order. `membar` is a no-op (memory is already SC); `bar.sync` uses
//!   the same arrive/release counting as the cycle-level SM.
//!
//! Timing-dependent values have *defined but different* semantics:
//! `clock`/`%clock` read the warp's executed-instruction count and
//! `%smid` is always 0. Kernels using them are architecturally
//! deterministic under the reference but will not match the simulator —
//! the differential harness treats that as a (wanted) divergence; the
//! corpus workloads avoid both in their measured configurations.
//!
//! # Example
//!
//! ```
//! use simt_isa::asm::assemble;
//! use simt_mem::GlobalMem;
//! use simt_ref::{run_ref, RefLaunch};
//!
//! let k = assemble(
//!     r#"
//!     .kernel add_one
//!     .regs 4
//!         ld.param r1, [0]
//!         mov r2, %gtid
//!         shl r2, r2, 2
//!         add r2, r2, r1
//!         ld.global r3, [r2]
//!         add r3, r3, 1
//!         st.global [r2], r3
//!         exit
//!     "#,
//! )?;
//! let mut gmem = GlobalMem::new();
//! let buf = gmem.alloc(64);
//! let launch = RefLaunch { grid_ctas: 1, threads_per_cta: 64, params: &[buf as u32] };
//! let out = run_ref(&k, &launch, gmem, 1 << 20).unwrap();
//! assert_eq!(out.gmem.read_u32(buf + 4 * 63), 1);
//! # Ok::<(), simt_isa::AsmError>(())
//! ```

pub mod hb;
mod interp;
mod stack;

pub use hb::{HbChecker, RaceKind, RaceObs, WordKey};
pub use interp::{run_ref, run_ref_traced, RefCta, RefError, RefLaunch, RefOutcome, TracedRun, Writer};
pub use stack::RefStack;
