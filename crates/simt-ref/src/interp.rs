//! The functional execution loop.

use crate::hb::{HbChecker, RaceObs, WordKey};
use crate::stack::RefStack;
use simt_isa::{Inst, Kernel, Op, Operand, Space, Special, Ty};
use simt_mem::GlobalMem;
use std::collections::HashMap;
use std::fmt;

/// Launch geometry for a reference run (the reference has no residency
/// limits, so this is all it needs to know).
#[derive(Debug, Clone)]
pub struct RefLaunch<'a> {
    /// CTAs in the grid.
    pub grid_ctas: usize,
    /// Threads per CTA (the last warp may be partial).
    pub threads_per_cta: usize,
    /// 32-bit parameter slots, read by `ld.param`.
    pub params: &'a [u32],
}

/// Final architectural state of one CTA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefCta {
    /// Global CTA index.
    pub cta_id: usize,
    /// Threads in the CTA.
    pub threads: usize,
    /// Registers per thread.
    pub regs_per_thread: usize,
    /// Row-major per-thread registers: `regs[thread * regs_per_thread + r]`.
    pub regs: Vec<u32>,
    /// Per-thread predicate bitmasks (bit `p` = predicate `p`).
    pub preds: Vec<u8>,
    /// Final shared-memory words.
    pub shared: Vec<u32>,
}

impl RefCta {
    /// Register `r` of `thread`.
    pub fn reg(&self, thread: usize, r: usize) -> u32 {
        self.regs[thread * self.regs_per_thread + r]
    }
}

/// Who last changed a global-memory word (for divergence attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writer {
    /// Global CTA index of the writing warp.
    pub cta: usize,
    /// Warp index within that CTA.
    pub warp: usize,
    /// Instruction index of the store/atomic.
    pub pc: usize,
    /// Kernel source line of that instruction.
    pub line: u32,
}

/// Everything a reference run produces.
#[derive(Debug, Clone)]
pub struct RefOutcome {
    /// Final global memory.
    pub gmem: GlobalMem,
    /// Final per-CTA register/predicate/shared state, ordered by CTA id.
    pub ctas: Vec<RefCta>,
    /// Total instructions executed (across all warps).
    pub steps: u64,
    /// Last writer of every global word that was stored or atomically
    /// updated, keyed by byte address.
    pub writers: HashMap<u64, Writer>,
}

/// Why a reference run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    /// The fuel limit was exhausted: the kernel livelocks under fair
    /// round-robin interleaving (e.g. a SIMT-induced deadlock, where the
    /// lock holder is trapped below the spinners' reconvergence point).
    Fuel {
        /// Instructions executed before giving up.
        steps: u64,
        /// `(cta, warp, pc)` of every unfinished warp.
        stuck: Vec<(usize, usize, usize)>,
    },
    /// No warp can step but the grid is unfinished (barrier deadlock), or
    /// the kernel performed an architecturally impossible access.
    Invariant(String),
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::Fuel { steps, stuck } => write!(
                f,
                "reference fuel exhausted after {steps} steps; {} warps stuck (first at {:?})",
                stuck.len(),
                stuck.first()
            ),
            RefError::Invariant(what) => write!(f, "reference invariant violated: {what}"),
        }
    }
}

impl std::error::Error for RefError {}

/// One warp's control state.
struct RefWarp {
    stack: RefStack,
    at_barrier: bool,
    done: bool,
    /// Instructions this warp has executed (`clock`'s time base).
    retired: u64,
}

/// One CTA's architectural state.
struct CtaState {
    id: usize,
    threads: usize,
    warps: Vec<RefWarp>,
    regs: Vec<u32>,
    preds: Vec<u8>,
    shared: Vec<u32>,
    barrier_arrived: usize,
    warps_done: usize,
}

impl CtaState {
    fn new(id: usize, threads: usize, regs_per_thread: usize, shared_words: usize) -> CtaState {
        let num_warps = threads.div_ceil(32);
        let warps = (0..num_warps)
            .map(|w| {
                let lanes = (threads - w * 32).min(32);
                let mask = if lanes == 32 { u32::MAX } else { (1u32 << lanes) - 1 };
                RefWarp {
                    stack: RefStack::new(mask, 0),
                    at_barrier: false,
                    done: false,
                    retired: 0,
                }
            })
            .collect();
        CtaState {
            id,
            threads,
            warps,
            regs: vec![0; threads * regs_per_thread],
            preds: vec![0; threads],
            shared: vec![0; shared_words],
            barrier_arrived: 0,
            warps_done: 0,
        }
    }

    fn live_warps(&self) -> usize {
        self.warps.len() - self.warps_done
    }

    fn release_barrier_if_full(&mut self) {
        if self.live_warps() > 0 && self.barrier_arrived >= self.live_warps() {
            self.barrier_arrived = 0;
            for w in &mut self.warps {
                w.at_barrier = false;
            }
        }
    }
}

/// Execute `kernel` to completion on `gmem` and return the final
/// architectural state.
///
/// `fuel` bounds the total instruction count across all warps; a kernel
/// that cannot finish within it (a livelock under fair interleaving, or
/// genuinely more work than the caller budgeted) fails with
/// [`RefError::Fuel`] instead of hanging the harness.
///
/// # Errors
///
/// [`RefError::Fuel`] on fuel exhaustion; [`RefError::Invariant`] on
/// barrier deadlock or an impossible memory access (out of bounds,
/// unaligned, a store to parameter space).
pub fn run_ref(
    kernel: &Kernel,
    launch: &RefLaunch<'_>,
    gmem: GlobalMem,
    fuel: u64,
) -> Result<RefOutcome, RefError> {
    run_ref_inner(kernel, launch, gmem, fuel, None).outcome
}

/// A reference run with the happens-before race checker attached.
#[derive(Debug)]
pub struct TracedRun {
    /// The run result, exactly as [`run_ref`] would report it.
    pub outcome: Result<RefOutcome, RefError>,
    /// Dynamic race observations, in observation order (also populated for
    /// failed runs — a racy kernel may race before it hangs).
    pub races: Vec<RaceObs>,
}

/// Like [`run_ref`], but observing every shared/global access through the
/// vector-clock happens-before checker ([`crate::hb`]).
pub fn run_ref_traced(
    kernel: &Kernel,
    launch: &RefLaunch<'_>,
    gmem: GlobalMem,
    fuel: u64,
) -> TracedRun {
    run_ref_inner(
        kernel,
        launch,
        gmem,
        fuel,
        Some(HbChecker::new(launch.grid_ctas, launch.threads_per_cta)),
    )
}

fn run_ref_inner(
    kernel: &Kernel,
    launch: &RefLaunch<'_>,
    gmem: GlobalMem,
    fuel: u64,
    hb: Option<HbChecker>,
) -> TracedRun {
    let fail = |e: RefError| TracedRun {
        outcome: Err(e),
        races: Vec::new(),
    };
    if launch.grid_ctas == 0 || launch.threads_per_cta == 0 {
        return fail(RefError::Invariant("empty grid".to_string()));
    }
    if launch.threads_per_cta > 1024 {
        return fail(RefError::Invariant(format!(
            "{} threads per CTA exceeds the 1024 architectural limit",
            launch.threads_per_cta
        )));
    }
    let mut m = Machine {
        kernel,
        params: launch.params,
        threads_per_cta: launch.threads_per_cta,
        grid_ctas: launch.grid_ctas,
        gmem,
        ctas: (0..launch.grid_ctas)
            .map(|id| {
                CtaState::new(
                    id,
                    launch.threads_per_cta,
                    kernel.num_regs as usize,
                    kernel.shared_words as usize,
                )
            })
            .collect(),
        writers: HashMap::new(),
        steps: 0,
        hb,
    };

    loop {
        let mut stepped = false;
        let mut unfinished = false;
        for c in 0..m.ctas.len() {
            for w in 0..m.ctas[c].warps.len() {
                {
                    let warp = &m.ctas[c].warps[w];
                    if warp.done {
                        continue;
                    }
                    unfinished = true;
                    if warp.at_barrier {
                        continue;
                    }
                }
                if let Err(e) = m.step(c, w) {
                    return TracedRun {
                        outcome: Err(e),
                        races: m.hb.map(|h| h.races).unwrap_or_default(),
                    };
                }
                stepped = true;
                if m.steps >= fuel {
                    return TracedRun {
                        outcome: Err(RefError::Fuel {
                            steps: m.steps,
                            stuck: m.stuck(),
                        }),
                        races: m.hb.map(|h| h.races).unwrap_or_default(),
                    };
                }
            }
        }
        if !unfinished {
            break;
        }
        if !stepped {
            return TracedRun {
                outcome: Err(RefError::Invariant(format!(
                    "barrier deadlock: no warp can step, stuck at {:?}",
                    m.stuck()
                ))),
                races: m.hb.map(|h| h.races).unwrap_or_default(),
            };
        }
    }

    let ctas = m
        .ctas
        .iter()
        .map(|c| RefCta {
            cta_id: c.id,
            threads: c.threads,
            regs_per_thread: kernel.num_regs as usize,
            regs: c.regs.clone(),
            preds: c.preds.clone(),
            shared: c.shared.clone(),
        })
        .collect();
    TracedRun {
        outcome: Ok(RefOutcome {
            gmem: m.gmem,
            ctas,
            steps: m.steps,
            writers: m.writers,
        }),
        races: m.hb.map(|h| h.races).unwrap_or_default(),
    }
}

struct Machine<'a> {
    kernel: &'a Kernel,
    params: &'a [u32],
    threads_per_cta: usize,
    grid_ctas: usize,
    gmem: GlobalMem,
    ctas: Vec<CtaState>,
    writers: HashMap<u64, Writer>,
    steps: u64,
    hb: Option<HbChecker>,
}

impl Machine<'_> {
    fn stuck(&self) -> Vec<(usize, usize, usize)> {
        let mut v = Vec::new();
        for c in &self.ctas {
            for (w, warp) in c.warps.iter().enumerate() {
                if !warp.done {
                    let pc = if warp.stack.is_empty() { 0 } else { warp.stack.pc() };
                    v.push((c.id, w, pc));
                }
            }
        }
        v
    }

    fn invariant(&self, c: usize, pc: usize, what: &str) -> RefError {
        RefError::Invariant(format!("cta {c} pc {pc}: {what}"))
    }

    fn reg(&self, c: usize, thread: usize, r: simt_isa::Reg) -> u32 {
        let cta = &self.ctas[c];
        cta.regs[thread * self.kernel.num_regs as usize + r.index()]
    }

    fn set_reg(&mut self, c: usize, thread: usize, r: simt_isa::Reg, v: u32) {
        let rp = self.kernel.num_regs as usize;
        self.ctas[c].regs[thread * rp + r.index()] = v;
    }

    fn pred(&self, c: usize, thread: usize, p: simt_isa::Pred) -> bool {
        self.ctas[c].preds[thread] & (1 << p.0) != 0
    }

    fn set_pred(&mut self, c: usize, thread: usize, p: simt_isa::Pred, v: bool) {
        if v {
            self.ctas[c].preds[thread] |= 1 << p.0;
        } else {
            self.ctas[c].preds[thread] &= !(1 << p.0);
        }
    }

    fn special(&self, s: Special, c: usize, w: usize, thread: usize, lane: usize) -> u32 {
        match s {
            Special::TidX => thread as u32,
            Special::CtaIdX => self.ctas[c].id as u32,
            Special::NTidX => self.threads_per_cta as u32,
            Special::NCtaIdX => self.grid_ctas as u32,
            Special::LaneId => lane as u32,
            Special::WarpId => (thread / 32) as u32,
            Special::GlobalTid => (self.ctas[c].id * self.threads_per_cta + thread) as u32,
            // Timing state has no cycle-level meaning here: `clock` counts
            // the warp's executed instructions (monotonic, so clock-delta
            // loops still terminate), `%smid` is always 0. Kernels reading
            // either are expected to diverge from the simulator.
            Special::Clock => self.ctas[c].warps[w].retired as u32,
            Special::SmId => 0,
        }
    }

    fn value(&self, op: &Operand, c: usize, w: usize, thread: usize, lane: usize) -> u32 {
        match op {
            Operand::Reg(r) => self.reg(c, thread, *r),
            Operand::Imm(v) => *v,
            Operand::Special(s) => self.special(*s, c, w, thread, lane),
        }
    }

    fn addr_of(&self, inst: &Inst, c: usize, thread: usize) -> u64 {
        let a = inst.addr.expect("memory instruction has an address");
        let base = a.base.map(|r| self.reg(c, thread, r)).unwrap_or(0) as i64;
        (base + a.offset as i64) as u64
    }

    /// Bounds-and-alignment check for a global access; the reference
    /// reports these as errors rather than panicking so the fuzzer can
    /// reject ill-formed mutants gracefully.
    fn check_global(&self, c: usize, pc: usize, addr: u64) -> Result<usize, RefError> {
        if !addr.is_multiple_of(4) {
            return Err(self.invariant(c, pc, &format!("unaligned global access at {addr:#x}")));
        }
        let idx = (addr / 4) as usize;
        if idx >= self.gmem.image().len() {
            return Err(self.invariant(c, pc, &format!("global access out of bounds at {addr:#x}")));
        }
        Ok(idx)
    }

    /// Execute one instruction of warp `w` of CTA `c`.
    fn step(&mut self, c: usize, w: usize) -> Result<(), RefError> {
        let pc = self.ctas[c].warps[w].stack.pc();
        let Some(inst) = self.kernel.insts.get(pc).cloned() else {
            return Err(self.invariant(c, pc, "pc past end of kernel"));
        };
        self.steps += 1;
        self.ctas[c].warps[w].retired += 1;
        let active = self.ctas[c].warps[w].stack.active();
        let warp_base = w * 32;

        // Guard evaluation.
        let mut exec = active;
        if let Some((p, want)) = inst.guard {
            let mut m = 0u32;
            for lane in bits(active) {
                if self.pred(c, warp_base + lane, p) == want {
                    m |= 1 << lane;
                }
            }
            exec = m;
        }

        match inst.op {
            Op::Mov
            | Op::Add(_)
            | Op::Sub(_)
            | Op::Mul(_)
            | Op::Mad(_)
            | Op::Div(_)
            | Op::Rem(_)
            | Op::Min(_)
            | Op::Max(_)
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Not
            | Op::Neg(_)
            | Op::Shl
            | Op::Shr
            | Op::Sra
            | Op::Sqrt
            | Op::CvtI2F
            | Op::CvtF2I => {
                let dst = inst.dst.expect("ALU dst");
                for lane in bits(exec) {
                    let t = warp_base + lane;
                    let a = inst.srcs.first().map(|s| self.value(s, c, w, t, lane)).unwrap_or(0);
                    let b = inst.srcs.get(1).map(|s| self.value(s, c, w, t, lane)).unwrap_or(0);
                    let cc = inst.srcs.get(2).map(|s| self.value(s, c, w, t, lane)).unwrap_or(0);
                    let v = eval_alu(inst.op, a, b, cc);
                    self.set_reg(c, t, dst, v);
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::Selp => {
                let dst = inst.dst.expect("selp dst");
                let p = inst.psrcs[0];
                for lane in bits(exec) {
                    let t = warp_base + lane;
                    let a = self.value(&inst.srcs[0], c, w, t, lane);
                    let b = self.value(&inst.srcs[1], c, w, t, lane);
                    let v = if self.pred(c, t, p) { a } else { b };
                    self.set_reg(c, t, dst, v);
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::Setp(cmp, ty) => {
                let pdst = inst.pdst.expect("setp pdst");
                for lane in bits(exec) {
                    let t = warp_base + lane;
                    let a = self.value(&inst.srcs[0], c, w, t, lane);
                    let b = self.value(&inst.srcs[1], c, w, t, lane);
                    self.set_pred(c, t, pdst, cmp.eval(ty, a, b));
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::PAnd | Op::POr | Op::PNot => {
                let pdst = inst.pdst.expect("pred dst");
                for lane in bits(exec) {
                    let t = warp_base + lane;
                    let a = self.pred(c, t, inst.psrcs[0]);
                    let v = match inst.op {
                        Op::PAnd => a && self.pred(c, t, inst.psrcs[1]),
                        Op::POr => a || self.pred(c, t, inst.psrcs[1]),
                        _ => !a,
                    };
                    self.set_pred(c, t, pdst, v);
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::Bra => {
                let target = inst.target.expect("resolved branch target");
                let rpc = self.kernel.reconv[pc];
                self.ctas[c].warps[w].stack.branch(exec, target, pc + 1, rpc);
            }
            Op::Exit => {
                let warp = &mut self.ctas[c].warps[w];
                warp.stack.exit_threads(exec);
                if warp.stack.is_empty() {
                    warp.done = true;
                    self.ctas[c].warps_done += 1;
                    // The CTA barrier counts live warps; a warp exiting can
                    // therefore release it.
                    self.release_barrier(c);
                } else if warp.stack.pc() == pc {
                    // Guarded exit: surviving lanes fall through.
                    warp.stack.advance(pc + 1);
                }
            }
            Op::Nop => self.ctas[c].warps[w].stack.advance(pc + 1),
            Op::Clock => {
                let dst = inst.dst.expect("clock dst");
                let ticks = self.ctas[c].warps[w].retired as u32;
                for lane in bits(exec) {
                    self.set_reg(c, warp_base + lane, dst, ticks);
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::Bar => {
                let warp = &mut self.ctas[c].warps[w];
                warp.at_barrier = true;
                warp.stack.advance(pc + 1);
                self.ctas[c].barrier_arrived += 1;
                self.release_barrier(c);
            }
            Op::Membar => {
                // Memory is sequentially consistent: every prior store is
                // already visible.
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::Ld(space, volatile) => {
                let dst = inst.dst.expect("load dst");
                for lane in bits(exec) {
                    let t = warp_base + lane;
                    let addr = self.addr_of(&inst, c, t);
                    let (v, word) = match space {
                        Space::Param => {
                            let slot = (addr / 4) as usize;
                            let v = *self.params.get(slot).ok_or_else(|| {
                                self.invariant(c, pc, &format!("ld.param slot {slot} out of range"))
                            })?;
                            (v, None)
                        }
                        Space::Shared => {
                            let slot = (addr / 4) as usize;
                            let v = *self.ctas[c].shared.get(slot).ok_or_else(|| {
                                self.invariant(c, pc, &format!("ld.shared out of bounds at {addr:#x}"))
                            })?;
                            (v, Some(WordKey::Shared(c, slot)))
                        }
                        Space::Global => {
                            self.check_global(c, pc, addr)?;
                            (self.gmem.read_u32(addr), Some(WordKey::Global(addr)))
                        }
                    };
                    if let (Some(hb), Some(word)) = (self.hb.as_mut(), word) {
                        if volatile {
                            hb.acquire(c, w, word);
                        } else {
                            hb.plain_read(c, w, word, pc, inst.line);
                        }
                    }
                    self.set_reg(c, t, dst, v);
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::St(space, volatile) => {
                for lane in bits(exec) {
                    let t = warp_base + lane;
                    let addr = self.addr_of(&inst, c, t);
                    let v = self.value(&inst.srcs[0], c, w, t, lane);
                    let word = match space {
                        Space::Param => {
                            return Err(self.invariant(c, pc, "store to param space"));
                        }
                        Space::Shared => {
                            let slot = (addr / 4) as usize;
                            let words = self.ctas[c].shared.len();
                            let Some(s) = self.ctas[c].shared.get_mut(slot) else {
                                return Err(self.invariant(
                                    c,
                                    pc,
                                    &format!("st.shared at {addr:#x} past {words} shared words"),
                                ));
                            };
                            *s = v;
                            WordKey::Shared(c, slot)
                        }
                        Space::Global => {
                            self.check_global(c, pc, addr)?;
                            self.gmem.write_u32(addr, v);
                            self.note_writer(addr, c, w, pc, inst.line);
                            WordKey::Global(addr)
                        }
                    };
                    if let Some(hb) = self.hb.as_mut() {
                        if volatile {
                            // A sync store is a pure release: not a race
                            // candidate itself.
                            hb.release(c, w, word);
                        } else {
                            hb.plain_write(c, w, word, pc, inst.line);
                        }
                    }
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
            Op::Atom(aop) => {
                let dst = inst.dst.expect("atomic dst");
                // Lane order is the serialization order, exactly as the
                // cycle-level L2 partitions apply a warp's lane ops.
                for lane in bits(exec) {
                    let t = warp_base + lane;
                    let addr = self.addr_of(&inst, c, t);
                    self.check_global(c, pc, addr)?;
                    let a = self.value(&inst.srcs[0], c, w, t, lane);
                    let b = inst.srcs.get(1).map(|s| self.value(s, c, w, t, lane)).unwrap_or(0);
                    let old = self.gmem.read_u32(addr);
                    let new = aop.apply(old, a, b);
                    if new != old {
                        self.gmem.write_u32(addr, new);
                        self.note_writer(addr, c, w, pc, inst.line);
                    }
                    if let Some(hb) = self.hb.as_mut() {
                        // An atomic RMW is both halves of a sync edge, even
                        // when the CAS fails: the read alone carries the
                        // winner's release to the spinning loser.
                        hb.acquire(c, w, WordKey::Global(addr));
                        hb.release(c, w, WordKey::Global(addr));
                    }
                    self.set_reg(c, t, dst, old);
                }
                self.ctas[c].warps[w].stack.advance(pc + 1);
            }
        }
        Ok(())
    }

    /// Release the CTA barrier if everyone arrived, recording the
    /// happens-before join across the participating warps first.
    fn release_barrier(&mut self, c: usize) {
        let cta = &self.ctas[c];
        let releasing = cta.live_warps() > 0 && cta.barrier_arrived >= cta.live_warps();
        if releasing {
            if let Some(hb) = self.hb.as_mut() {
                let participants: Vec<usize> = cta
                    .warps
                    .iter()
                    .enumerate()
                    .filter(|(_, warp)| !warp.done)
                    .map(|(i, _)| i)
                    .collect();
                hb.barrier(c, &participants);
            }
        }
        self.ctas[c].release_barrier_if_full();
    }

    fn note_writer(&mut self, addr: u64, c: usize, w: usize, pc: usize, line: u32) {
        self.writers.insert(
            addr,
            Writer {
                cta: self.ctas[c].id,
                warp: w,
                pc,
                line,
            },
        );
    }
}

/// Iterate the set lane indices of a mask.
fn bits(mask: u32) -> impl Iterator<Item = usize> {
    (0..32).filter(move |i| mask & (1 << i) != 0)
}

/// The ISA's ALU semantics, re-derived from the instruction set contract
/// (wrapping two's-complement integers, IEEE f32 on bit patterns, total
/// division, masked shift counts).
fn eval_alu(op: Op, a: u32, b: u32, c: u32) -> u32 {
    let fa = f32::from_bits(a);
    let fb = f32::from_bits(b);
    match op {
        Op::Mov => a,
        Op::Add(Ty::F32) => (fa + fb).to_bits(),
        Op::Add(_) => a.wrapping_add(b),
        Op::Sub(Ty::F32) => (fa - fb).to_bits(),
        Op::Sub(_) => a.wrapping_sub(b),
        Op::Mul(Ty::F32) => (fa * fb).to_bits(),
        Op::Mul(_) => a.wrapping_mul(b),
        Op::Mad(Ty::F32) => (fa * fb + f32::from_bits(c)).to_bits(),
        Op::Mad(_) => a.wrapping_mul(b).wrapping_add(c),
        Op::Div(Ty::F32) => (fa / fb).to_bits(),
        Op::Div(Ty::U32) => a.checked_div(b).unwrap_or(u32::MAX),
        Op::Div(Ty::S32) => {
            if b == 0 {
                u32::MAX
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        Op::Rem(Ty::U32) => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        Op::Rem(_) => {
            if b == 0 {
                a
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        Op::Min(Ty::F32) => fa.min(fb).to_bits(),
        Op::Min(Ty::U32) => a.min(b),
        Op::Min(_) => (a as i32).min(b as i32) as u32,
        Op::Max(Ty::F32) => fa.max(fb).to_bits(),
        Op::Max(Ty::U32) => a.max(b),
        Op::Max(_) => (a as i32).max(b as i32) as u32,
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Not => !a,
        Op::Neg(Ty::F32) => (-fa).to_bits(),
        Op::Neg(_) => (a as i32).wrapping_neg() as u32,
        Op::Shl => a.wrapping_shl(b & 31),
        Op::Shr => a.wrapping_shr(b & 31),
        Op::Sra => (a as i32).wrapping_shr(b & 31) as u32,
        Op::Sqrt => fa.sqrt().to_bits(),
        Op::CvtI2F => (a as i32 as f32).to_bits(),
        Op::CvtF2I => (fa as i32) as u32,
        other => unreachable!("{other:?} is not an ALU op"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::asm::assemble;

    fn launch(ctas: usize, tpc: usize, params: Vec<u32>) -> (RefLaunch<'static>, &'static [u32]) {
        let leaked: &'static [u32] = Box::leak(params.into_boxed_slice());
        (
            RefLaunch {
                grid_ctas: ctas,
                threads_per_cta: tpc,
                params: leaked,
            },
            leaked,
        )
    }

    #[test]
    fn thread_private_stores_and_final_registers() {
        let k = assemble(
            r#"
            .kernel private
            .regs 4
                ld.param r1, [0]
                mov r2, %gtid
                shl r3, r2, 2
                add r3, r3, r1
                mul r2, r2, 3
                st.global [r3], r2
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let buf = g.alloc(64);
        let (l, _) = launch(2, 32, vec![buf as u32]);
        let out = run_ref(&k, &l, g, 1 << 16).unwrap();
        for t in 0..64u64 {
            assert_eq!(out.gmem.read_u32(buf + t * 4), t as u32 * 3);
        }
        // r2 of thread 5 of CTA 1 holds gtid * 3 = 111.
        assert_eq!(out.ctas[1].reg(5, 2), 37 * 3);
        // Every store site is attributed.
        let wr = out.writers[&(buf + 4 * 37)];
        assert_eq!((wr.cta, wr.warp), (1, 0));
    }

    #[test]
    fn divergent_branch_reconverges() {
        let k = assemble(
            r#"
            .kernel diverge
            .regs 4
                ld.param r1, [0]
                mov r2, %tid
                and r3, r2, 1
                setp.eq.s32 p0, r3, 0
            @!p0 bra ODD
                mov r3, 100
                bra JOIN
            ODD:
                mov r3, 200
            JOIN:
                shl r2, r2, 2
                add r2, r2, r1
                st.global [r2], r3
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let buf = g.alloc(32);
        let (l, _) = launch(1, 32, vec![buf as u32]);
        let out = run_ref(&k, &l, g, 1 << 16).unwrap();
        for t in 0..32u64 {
            let expect = if t % 2 == 0 { 100 } else { 200 };
            assert_eq!(out.gmem.read_u32(buf + t * 4), expect, "thread {t}");
        }
    }

    #[test]
    fn spin_lock_across_warps_terminates_and_counts() {
        // Four warps of one CTA increment a shared counter under a CAS
        // lock; fair round-robin must drain every spinner.
        let k = assemble(
            r#"
            .kernel lock_count
            .regs 8
                ld.param r1, [0]      ; lock
                ld.param r2, [4]      ; counter
                mov r7, %laneid
                mov r6, 0             ; i = lane serializer
            SERIAL:
                setp.eq.s32 p2, r7, r6
            @!p2 bra NEXT
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.ne.s32 p0, r3, 0
            @p0 bra SPIN !sib
                ld.global.volatile r4, [r2]
                add r4, r4, 1
                st.global [r2], r4
                membar
                atom.global.exch r5, [r1], 0 !release
            NEXT:
                add r6, r6, 1
                setp.lt.s32 p1, r6, 32
            @p1 bra SERIAL
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let lock = g.alloc(1);
        let ctr = g.alloc(1);
        let (l, _) = launch(1, 128, vec![lock as u32, ctr as u32]);
        let out = run_ref(&k, &l, g, 1 << 22).unwrap();
        assert_eq!(out.gmem.read_u32(ctr), 128);
        assert_eq!(out.gmem.read_u32(lock), 0, "lock released");
    }

    #[test]
    fn barrier_synchronizes_warps() {
        // Warp 1 reads what warp 0 wrote before the barrier.
        let k = assemble(
            r#"
            .kernel barrier
            .regs 6
            .shared 64
                mov r1, %tid
                shl r2, r1, 2
                st.shared [r2], r1
                bar.sync
                mov r3, 63
                sub r3, r3, r1        ; partner = 63 - tid
                shl r4, r3, 2
                ld.shared r5, [r4]
                ld.param r2, [0]
                shl r4, r1, 2
                add r4, r4, r2
                st.global [r4], r5
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let buf = g.alloc(64);
        let (l, _) = launch(1, 64, vec![buf as u32]);
        let out = run_ref(&k, &l, g, 1 << 16).unwrap();
        for t in 0..64u64 {
            assert_eq!(out.gmem.read_u32(buf + t * 4), 63 - t as u32);
        }
    }

    #[test]
    fn simt_deadlock_exhausts_fuel() {
        // Intra-warp wait below the reconvergence point: lane 0 never
        // signals because it waits (diverged) for the spinners to finish.
        let k = assemble(
            r#"
            .kernel deadlock
            .regs 4
                ld.param r1, [0]
                mov r2, %laneid
                setp.eq.s32 p0, r2, 0
            @!p0 bra WAIT
                st.global [r1], 1     ; never runs: spinners execute first
                bra DONE
            WAIT:
                ld.global.volatile r3, [r1]
                setp.eq.s32 p1, r3, 0
            @p1 bra WAIT !sib
            DONE:
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let flag = g.alloc(1);
        let (l, _) = launch(1, 32, vec![flag as u32]);
        let err = run_ref(&k, &l, g, 1 << 14).unwrap_err();
        assert!(matches!(err, RefError::Fuel { .. }), "{err}");
    }

    #[test]
    fn guarded_exit_falls_through_for_survivors() {
        let k = assemble(
            r#"
            .kernel guarded
            .regs 4
                ld.param r1, [0]
                mov r2, %tid
                setp.gt.s32 p0, r2, 15
            @p0 exit
                shl r3, r2, 2
                add r3, r3, r1
                st.global [r3], 7
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let buf = g.alloc(32);
        let (l, _) = launch(1, 32, vec![buf as u32]);
        let out = run_ref(&k, &l, g, 1 << 16).unwrap();
        for t in 0..32u64 {
            let expect = if t < 16 { 7 } else { 0 };
            assert_eq!(out.gmem.read_u32(buf + t * 4), expect);
        }
    }

    #[test]
    fn traced_run_detects_unsynchronized_race() {
        // Two warps increment the same word with plain accesses: the
        // happens-before checker must observe the race even though the
        // fair interleaving produces *some* final value.
        let k = assemble(
            r#"
            .kernel racy
            .regs 6
                ld.param r1, [0]
                ld.global r2, [r1]
                add r2, r2, 1
                st.global [r1], r2
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let ctr = g.alloc(1);
        let (l, _) = launch(1, 64, vec![ctr as u32]);
        let traced = run_ref_traced(&k, &l, g, 1 << 16);
        traced.outcome.unwrap();
        assert!(!traced.races.is_empty(), "race observed");
    }

    #[test]
    fn traced_run_clean_on_lock_protected_counter() {
        let k = assemble(
            r#"
            .kernel locked
            .regs 10
                ld.param r1, [0]
                ld.param r2, [4]
                mov r9, 0
            SPIN:
                atom.global.cas r3, [r1], 0, 1 !acquire
                setp.eq.s32 p1, r3, 0
            @!p1 bra TEST
                ld.global r4, [r2]
                add r4, r4, 1
                st.global [r2], r4
                membar
                atom.global.exch r5, [r1], 0 !release
                mov r9, 1
            TEST:
                setp.eq.s32 p2, r9, 0
            @p2 bra SPIN !sib
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let lock = g.alloc(1);
        let ctr = g.alloc(1);
        let (l, _) = launch(1, 128, vec![lock as u32, ctr as u32]);
        let traced = run_ref_traced(&k, &l, g, 1 << 22);
        let out = traced.outcome.unwrap();
        assert_eq!(out.gmem.read_u32(ctr), 128);
        assert!(traced.races.is_empty(), "{:?}", traced.races);
    }

    #[test]
    fn traced_run_barrier_separates_publish() {
        // tid 0 publishes before the barrier; every warp reads after.
        let k = assemble(
            r#"
            .kernel publish
            .regs 8
                ld.param r1, [0]
                mov r2, %tid
                setp.ne.s32 p0, r2, 0
            @!p0 st.global [r1], 42
                bar.sync
                ld.global r3, [r1]
                exit
            "#,
        )
        .unwrap();
        let mut g = GlobalMem::new();
        let flag = g.alloc(1);
        let (l, _) = launch(1, 128, vec![flag as u32]);
        let traced = run_ref_traced(&k, &l, g, 1 << 16);
        let out = traced.outcome.unwrap();
        assert_eq!(out.ctas[0].reg(100, 3), 42, "read the published value");
        assert!(traced.races.is_empty(), "{:?}", traced.races);
    }

    #[test]
    fn fuel_error_reports_stuck_warps() {
        let k = assemble(
            r#"
            .kernel forever
            .regs 2
            L:  bra L
                exit              ; unreachable, satisfies the assembler
            "#,
        )
        .unwrap();
        let g = GlobalMem::new();
        let (l, _) = launch(1, 64, vec![]);
        match run_ref(&k, &l, g, 100).unwrap_err() {
            RefError::Fuel { steps, stuck } => {
                assert_eq!(steps, 100);
                assert_eq!(stuck.len(), 2, "both warps unfinished");
            }
            other => panic!("expected fuel exhaustion, got {other}"),
        }
    }
}
