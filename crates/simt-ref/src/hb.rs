//! Dynamic happens-before race checker (vector clocks).
//!
//! The reference interpreter is the repo's architectural ground truth, so
//! it is also the right place to *observe* synchronization instead of
//! guessing at it: this module maintains one vector clock per warp (the
//! same concurrency granularity as the static race model in
//! `simt-analyze`) and derives happens-before edges from what the kernel
//! actually does:
//!
//! * any store or atomic to a word is a **release** of that word — its
//!   clock joins into the word's sync clock (a plain store can carry a
//!   signal: the wait-and-signal corpus kernels publish with plain `st`);
//! * a volatile load or an atomic is an **acquire** — the word's sync
//!   clock joins into the warp's (a spinning CAS that fails still reads
//!   the word, which is exactly the edge that orders the winner's critical
//!   section before the loser's);
//! * a CTA barrier release joins the clocks of every participating warp.
//!
//! Races are only reported between **plain** (non-volatile, non-atomic)
//! accesses: volatile and atomic accesses are synchronization by
//! construction. Detection is order-independent — writes check prior
//! reads and the prior write, reads check the prior write — so a race is
//! caught no matter which side the fair round-robin happens to run first.

use std::collections::HashMap;

/// Identity of one memory word for the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WordKey {
    /// Global memory, byte address.
    Global(u64),
    /// Shared memory: (CTA id, word slot).
    Shared(usize, usize),
}

impl std::fmt::Display for WordKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WordKey::Global(a) => write!(f, "global:{a:#x}"),
            WordKey::Shared(c, s) => write!(f, "shared:cta{c}:{s}"),
        }
    }
}

/// Which access pattern raced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    WriteWrite,
    WriteRead,
    ReadWrite,
}

/// One dynamic race observation: the earlier access `a`, the later access
/// `b` (in observed execution order), and the word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceObs {
    pub kind: RaceKind,
    pub word: WordKey,
    /// Instruction index and source line of the earlier access.
    pub a_pc: usize,
    pub a_line: u32,
    /// Instruction index and source line of the later access.
    pub b_pc: usize,
    pub b_line: u32,
}

type Vc = Vec<u64>;

/// A plain access epoch: who, at what clock value, from which instruction.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    warp: usize,
    stamp: u64,
    pc: usize,
    line: u32,
}

#[derive(Default)]
struct WordState {
    /// Join of every releaser's clock.
    sync: Vc,
    /// Last plain write.
    write: Option<Epoch>,
    /// Last plain read per warp.
    reads: HashMap<usize, Epoch>,
}

/// Cap on recorded observations; a hot racy loop would otherwise flood.
const MAX_RACES: usize = 256;

/// The happens-before checker for one launch.
pub struct HbChecker {
    warps_per_cta: usize,
    /// Vector clocks, indexed by global warp id.
    vc: Vec<Vc>,
    words: HashMap<WordKey, WordState>,
    /// Deduplicated race observations, in observation order.
    pub races: Vec<RaceObs>,
}

fn join(into: &mut Vc, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (i, &v) in from.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

impl HbChecker {
    pub fn new(grid_ctas: usize, threads_per_cta: usize) -> HbChecker {
        let warps_per_cta = threads_per_cta.div_ceil(32);
        let n = grid_ctas * warps_per_cta;
        // Each warp's own component starts at 1: epochs must compare above
        // another warp's initial view (0) or the very first accesses would
        // look ordered.
        let vc = (0..n)
            .map(|t| {
                let mut v = vec![0; n];
                v[t] = 1;
                v
            })
            .collect();
        HbChecker {
            warps_per_cta,
            vc,
            words: HashMap::new(),
            races: Vec::new(),
        }
    }

    /// Global warp id of warp `w` of CTA `c`.
    pub fn warp_id(&self, c: usize, w: usize) -> usize {
        c * self.warps_per_cta + w
    }

    fn observe(&mut self, kind: RaceKind, word: WordKey, a: Epoch, b_pc: usize, b_line: u32) {
        if self.races.len() >= MAX_RACES {
            return;
        }
        let obs = RaceObs {
            kind,
            word,
            a_pc: a.pc,
            a_line: a.line,
            b_pc,
            b_line,
        };
        let dup = self
            .races
            .iter()
            .any(|r| r.kind == obs.kind && r.a_pc == obs.a_pc && r.b_pc == obs.b_pc);
        if !dup {
            self.races.push(obs);
        }
    }

    fn epoch(&self, warp: usize, pc: usize, line: u32) -> Epoch {
        Epoch {
            warp,
            stamp: self.vc[warp][warp],
            pc,
            line,
        }
    }

    /// Did epoch `e` happen before the current time of `warp`?
    fn ordered(&self, e: Epoch, warp: usize) -> bool {
        e.warp == warp || e.stamp <= self.vc[warp][e.warp]
    }

    /// A plain (non-volatile) load.
    pub fn plain_read(&mut self, c: usize, w: usize, word: WordKey, pc: usize, line: u32) {
        let t = self.warp_id(c, w);
        let e = self.epoch(t, pc, line);
        let prior = self.words.entry(word).or_default().write;
        if let Some(pw) = prior {
            if !self.ordered(pw, t) {
                self.observe(RaceKind::WriteRead, word, pw, pc, line);
            }
        }
        self.words.entry(word).or_default().reads.insert(t, e);
    }

    /// A plain (non-volatile) store: race-check, then release.
    pub fn plain_write(&mut self, c: usize, w: usize, word: WordKey, pc: usize, line: u32) {
        let t = self.warp_id(c, w);
        let e = self.epoch(t, pc, line);
        let st = self.words.entry(word).or_default();
        let prior_write = st.write;
        let prior_reads: Vec<Epoch> = st.reads.values().copied().collect();
        if let Some(pw) = prior_write {
            if !self.ordered(pw, t) {
                self.observe(RaceKind::WriteWrite, word, pw, pc, line);
            }
        }
        for pr in prior_reads {
            if !self.ordered(pr, t) {
                self.observe(RaceKind::ReadWrite, word, pr, pc, line);
            }
        }
        let st = self.words.entry(word).or_default();
        st.write = Some(e);
        st.reads.clear();
        self.release(c, w, word);
    }

    /// A synchronization read (volatile load, or the read half of an
    /// atomic): the word's sync clock joins into the warp's.
    pub fn acquire(&mut self, c: usize, w: usize, word: WordKey) {
        let t = self.warp_id(c, w);
        if let Some(st) = self.words.get(&word) {
            let sync = st.sync.clone();
            join(&mut self.vc[t], &sync);
        }
    }

    /// A synchronization write (any store or atomic): the warp's clock
    /// joins into the word's sync clock, then the warp's own component
    /// advances so later events are strictly after the release.
    pub fn release(&mut self, c: usize, w: usize, word: WordKey) {
        let t = self.warp_id(c, w);
        let vc = self.vc[t].clone();
        join(&mut self.words.entry(word).or_default().sync, &vc);
        self.vc[t][t] += 1;
    }

    /// A CTA barrier released: all participating warps join to a common
    /// clock and each advances.
    pub fn barrier(&mut self, c: usize, participants: &[usize]) {
        let mut all: Vc = Vec::new();
        for &w in participants {
            let t = self.warp_id(c, w);
            let vc = self.vc[t].clone();
            join(&mut all, &vc);
        }
        for &w in participants {
            let t = self.warp_id(c, w);
            self.vc[t] = all.clone();
            self.vc[t][t] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: WordKey = WordKey::Global(0x40);

    #[test]
    fn unordered_writes_race() {
        let mut hb = HbChecker::new(1, 64); // two warps
        hb.plain_write(0, 0, W, 5, 1);
        hb.plain_write(0, 1, W, 5, 1);
        assert_eq!(hb.races.len(), 1);
        assert_eq!(hb.races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn acquire_release_orders_accesses() {
        let mut hb = HbChecker::new(1, 64);
        let lock = WordKey::Global(0x0);
        // Warp 0: write data, release lock. Warp 1: acquire lock, read data.
        hb.plain_write(0, 0, W, 5, 1);
        hb.release(0, 0, lock);
        hb.acquire(0, 1, lock);
        hb.plain_read(0, 1, W, 9, 2);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn plain_store_carries_signal() {
        // The wait-and-signal idiom: producer stores plainly, consumer
        // volatile-loads (acquire) then reads other data.
        let mut hb = HbChecker::new(1, 64);
        let flag = WordKey::Global(0x0);
        hb.plain_write(0, 0, W, 3, 1); // data
        hb.plain_write(0, 0, flag, 4, 2); // signal (plain store = release)
        hb.acquire(0, 1, flag); // volatile wait loop sees it
        hb.plain_read(0, 1, W, 8, 3);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn unsynchronized_read_races_with_write() {
        let mut hb = HbChecker::new(1, 64);
        hb.plain_write(0, 0, W, 5, 1);
        hb.plain_read(0, 1, W, 9, 2);
        assert_eq!(hb.races.len(), 1);
        assert_eq!(hb.races[0].kind, RaceKind::WriteRead);
        assert_eq!((hb.races[0].a_pc, hb.races[0].b_pc), (5, 9));
    }

    #[test]
    fn read_then_unordered_write_races() {
        let mut hb = HbChecker::new(1, 64);
        hb.plain_read(0, 0, W, 2, 1);
        hb.plain_write(0, 1, W, 7, 2);
        assert_eq!(hb.races.len(), 1);
        assert_eq!(hb.races[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn barrier_orders_phases() {
        let mut hb = HbChecker::new(1, 64);
        hb.plain_write(0, 0, W, 3, 1);
        hb.barrier(0, &[0, 1]);
        hb.plain_read(0, 1, W, 8, 2);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn barrier_is_cta_scoped() {
        let mut hb = HbChecker::new(2, 32); // one warp per CTA
        hb.plain_write(0, 0, W, 3, 1);
        hb.barrier(0, &[0]);
        hb.barrier(1, &[0]);
        hb.plain_read(1, 0, W, 8, 2);
        assert_eq!(hb.races.len(), 1, "different CTAs: no edge");
    }

    #[test]
    fn same_warp_never_races_with_itself() {
        let mut hb = HbChecker::new(1, 32);
        hb.plain_write(0, 0, W, 3, 1);
        hb.plain_read(0, 0, W, 4, 2);
        hb.plain_write(0, 0, W, 5, 3);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn duplicate_observations_dedup() {
        let mut hb = HbChecker::new(1, 64);
        for _ in 0..10 {
            hb.plain_write(0, 0, W, 5, 1);
            hb.plain_write(0, 1, W, 5, 1);
        }
        assert_eq!(hb.races.len(), 1);
    }
}
