//! Deterministic parallel grid runner for the experiment binaries.
//!
//! Every figure/table binary iterates a grid of independent simulation
//! cells — (workload × scheduler config), (bucket count × variant), and so
//! on. Each cell builds its own [`simt_core::Gpu`], so cells share nothing
//! and can run on a thread pool. Results are reassembled in **submission
//! order**, which makes the rendered tables and CSV byte-identical to a
//! serial run at any thread count.
//!
//! The worker count is resolved once per process, in priority order:
//!
//! 1. `--jobs <n>` (parsed by [`crate::Opts::parse`]),
//! 2. the `BOWS_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolved worker count; 0 means "not yet resolved".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count (the `--jobs` flag; also used by tests).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The worker count grids run at (resolving it on first use).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("BOWS_JOBS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, usize::from)
                });
            JOBS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Map `f` over `items` on the configured thread pool; `f` receives
/// `(index, &item)`. Results come back in input order regardless of the
/// worker count or completion order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(jobs(), items, f)
}

/// [`parallel_map`] at an explicit worker count (determinism tests compare
/// 1/2/8-thread output directly).
///
/// # Panics
///
/// Propagates a panic from any cell (matching the serial behavior of the
/// `.expect("run")` idiom the binaries use).
pub fn parallel_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                done.lock().expect("grid result sink").push((i, r));
            });
        }
    });
    let mut v = done.into_inner().expect("grid result sink");
    assert_eq!(v.len(), n, "every cell reports exactly once");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_at_any_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        let serial = parallel_map_with(1, &items, |i, &x| i * 1000 + x * x);
        for workers in [2, 3, 8, 64] {
            let par = parallel_map_with(workers, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn set_jobs_floors_at_one() {
        set_jobs(0);
        assert_eq!(jobs(), 1);
        set_jobs(4);
        assert_eq!(jobs(), 4);
    }
}
