//! Tracked-performance report: runs one tiny-scale pass per figure group
//! (the same code paths the criterion benches cover, without needing the
//! registry) and writes `BENCH_<label>.json` — wall time per group plus
//! simulated-cycles-per-second throughput. With `--check <baseline>`, the
//! fresh run is compared against a committed baseline: any simulated-cycle
//! drift fails (the simulator is deterministic), wall-time drift only
//! warns. Not an experiment regenerator: `run_experiments.sh` skips it.

use experiments::{grid, SchedConfig};
use simt_core::{BasePolicy, Engine, GpuConfig};
use std::time::Instant;
use workloads::sync::{Hashtable, HtMode};
use workloads::{rodinia_suite, sync_suite, Scale};

/// Run every (workload × sched) cell of a suite, returning total cycles.
fn suite_cycles(cfg: &GpuConfig, suite: &[Box<dyn workloads::Workload>], scheds: &[SchedConfig]) -> u64 {
    experiments::run_suite_grid(cfg, suite, scheds)
        .iter()
        .flatten()
        .map(|r| r.cycles)
        .sum()
}

fn group_fig2() -> u64 {
    let cfg = GpuConfig::gtx480();
    let scheds: Vec<SchedConfig> = [BasePolicy::Lrr, BasePolicy::Gto, BasePolicy::Cawa]
        .iter()
        .map(|&p| SchedConfig::baseline(p))
        .collect();
    suite_cycles(&cfg, &sync_suite(Scale::Tiny), &scheds)
}

fn group_fig9() -> u64 {
    let cfg = GpuConfig::gtx480();
    let scheds = [
        SchedConfig::baseline(BasePolicy::Gto),
        SchedConfig::bows_adaptive(BasePolicy::Gto),
    ];
    suite_cycles(&cfg, &sync_suite(Scale::Tiny), &scheds)
}

fn group_fig14() -> u64 {
    let cfg = GpuConfig::gtx480();
    let mut modulo = SchedConfig::bows(BasePolicy::Gto, bows::DelayMode::Fixed(1000));
    modulo.ddos = bows::DdosConfig {
        hash: bows::HashKind::Modulo,
        ..bows::DdosConfig::default()
    };
    let scheds = [SchedConfig::baseline(BasePolicy::Gto), modulo];
    suite_cycles(&cfg, &rodinia_suite(Scale::Tiny), &scheds)
}

fn group_fig16() -> u64 {
    let cfg = GpuConfig::gtx480();
    let cells: Vec<(u32, u8)> = [32u32, 128, 512]
        .iter()
        .flat_map(|&b| (0u8..3).map(move |k| (b, k)))
        .collect();
    grid::parallel_map(&cells, |_, &(buckets, kind)| {
        let ht = Hashtable::with_params(1024, 1, buckets, 128);
        let res = match kind {
            0 => experiments::run(&cfg, &ht, SchedConfig::baseline(BasePolicy::Gto)),
            1 => experiments::run(&cfg, &ht, SchedConfig::bows_adaptive(BasePolicy::Gto)),
            _ => experiments::run(
                &cfg,
                &ht.with_mode(HtMode::IdealNoLock),
                SchedConfig::baseline(BasePolicy::Gto),
            ),
        };
        res.expect("fig16 group cell").cycles
    })
    .iter()
    .sum()
}

fn group_pascal() -> u64 {
    let cfg = GpuConfig::gtx1080ti();
    let scheds = [SchedConfig::baseline(BasePolicy::Gto)];
    suite_cycles(&cfg, &sync_suite(Scale::Tiny), &scheds)
}

/// A named figure group returning its total simulated cycles.
type Group = (&'static str, fn() -> u64);

const GROUPS: &[Group] = &[
    ("fig2_baseline_policies", group_fig2),
    ("fig9_bows_vs_baseline", group_fig9),
    ("fig14_modulo_false_detect", group_fig14),
    ("fig16_ideal_blocking", group_fig16),
    ("pascal_sync_suite", group_pascal),
];

const USAGE: &str = "usage: bench_report [--label <name>] [--out <dir>] [--check <baseline.json>] [--check-wall [<ratio>]] [--reps <n>] [--only <substr>] [--jobs <n>] [--engine cycle|skip] [--sm-threads <n>] [--profile]";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Cli {
    label: String,
    out_dir: String,
    check: Option<String>,
    /// Wall-time gate ratio for `--check`: regressions beyond it fail the
    /// check instead of warning. `None` keeps wall drift advisory.
    check_wall: Option<f64>,
    profile: bool,
    /// Timing repetitions per group; the best (minimum) wall time is
    /// reported. Simulated cycles must agree across reps (determinism).
    reps: usize,
    /// Run only groups whose name contains this substring.
    only: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        label: "local".to_string(),
        out_dir: ".".to_string(),
        check: None,
        check_wall: None,
        profile: false,
        reps: 1,
        only: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => match args.next() {
                Some(v) if v.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') => {
                    cli.label = v;
                }
                Some(v) => usage_error(&format!("label `{v}` must be [A-Za-z0-9_-]")),
                None => usage_error("--label requires a value"),
            },
            "--out" => match args.next() {
                Some(v) => cli.out_dir = v,
                None => usage_error("--out requires a value"),
            },
            "--check" => match args.next() {
                Some(v) => cli.check = Some(v),
                None => usage_error("--check requires a value"),
            },
            // The tolerance value is optional: a bare `--check-wall` gates
            // at the default 1.25x.
            "--check-wall" => match args.peek().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r.is_finite() && r >= 1.0 => {
                    args.next();
                    cli.check_wall = Some(r);
                }
                Some(_) => usage_error("--check-wall ratio must be >= 1.0 (e.g. 1.25)"),
                None => cli.check_wall = Some(1.25),
            },
            "--profile" => {
                cli.profile = true;
                experiments::set_profile(true);
            }
            "--reps" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cli.reps = n,
                _ => usage_error("--reps requires a positive integer"),
            },
            "--only" => match args.next() {
                Some(v) => cli.only = Some(v),
                None => usage_error("--only requires a value"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => grid::set_jobs(n),
                _ => usage_error("--jobs requires a positive integer"),
            },
            // Simulated cycles are engine-independent (the equivalence
            // suite enforces it); the flag exists here to measure the
            // wall-time delta between the two engines on identical work.
            "--engine" => match args.next().as_deref() {
                Some("cycle") => experiments::set_engine(Some(Engine::Cycle)),
                Some("skip") => experiments::set_engine(Some(Engine::Skip)),
                _ => usage_error("--engine requires `cycle` or `skip`"),
            },
            // Simulated cycles are also sm-thread-count-independent (the
            // determinism suite enforces it); the flag measures how in-run
            // SM parallelism trades against grid-level parallelism.
            "--sm-threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => experiments::set_sm_threads(Some(n)),
                _ => usage_error("--sm-threads requires a positive integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    cli
}

/// Render the per-group phase breakdown `--profile` collected: one row
/// per group, one column per phase, in milliseconds with the share of the
/// group's attributed time.
fn print_profiles(profiles: &[(&str, simt_core::ProfileReport)]) {
    if profiles.is_empty() {
        eprintln!("profile: no phase data collected");
        return;
    }
    println!("\nphase profile (ms, % of run-loop wall):");
    for (name, p) in profiles {
        let ms = |ns: u64| ns as f64 / 1e6;
        let pct = |ns: u64| 100.0 * ns as f64 / (p.total_ns.max(1)) as f64;
        let cells: Vec<String> = p
            .phases()
            .iter()
            .map(|&(ph, ns)| format!("{ph} {:.1} ({:.0}%)", ms(ns), pct(ns)))
            .collect();
        println!(
            "  {name}: total {:.1}  {}  other {:.1}",
            ms(p.total_ns),
            cells.join("  "),
            ms(p.other_ns())
        );
    }
}

fn main() {
    let cli = parse_cli();
    if cli.check_wall.is_some() && cli.check.is_none() {
        usage_error("--check-wall needs --check <baseline.json> to gate against");
    }
    let jobs = grid::jobs();
    let mut groups = Vec::new();
    let mut profiles: Vec<(&str, simt_core::ProfileReport)> = Vec::new();
    for (name, f) in GROUPS {
        if cli.only.as_ref().is_some_and(|s| !name.contains(s.as_str())) {
            continue;
        }
        // Wall time is best-of-`reps`: the minimum is the run least
        // disturbed by whatever else the host was doing, which is the
        // honest estimate of the code's speed. Cycles must not vary — the
        // simulator is deterministic, so a flicker here is a real bug.
        let mut wall_ms = f64::INFINITY;
        let mut cycles = 0u64;
        for rep in 0..cli.reps {
            experiments::take_profile_totals(); // drop any stale accumulation
            let t0 = Instant::now();
            let c = f();
            let rep_ms = t0.elapsed().as_secs_f64() * 1e3;
            if let Some(p) = experiments::take_profile_totals() {
                if rep == 0 {
                    profiles.push((name, p));
                }
            }
            if rep > 0 && c != cycles {
                eprintln!("FAIL: {name}: cycles flickered across reps ({cycles} vs {c})");
                std::process::exit(1);
            }
            cycles = c;
            wall_ms = wall_ms.min(rep_ms);
        }
        eprintln!("{name}: {wall_ms:.1}ms, {cycles} cycles");
        groups.push(bench::report::GroupResult {
            name: name.to_string(),
            wall_ms,
            cycles,
            cycles_per_sec: cycles as f64 / (wall_ms / 1e3).max(1e-9),
        });
    }
    if cli.profile {
        print_profiles(&profiles);
    }
    let report = bench::report::BenchReport {
        label: cli.label,
        scale: "tiny".to_string(),
        jobs,
        groups,
    };

    if let Some(baseline_path) = cli.check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read `{baseline_path}`: {e}")));
        let mut baseline = bench::report::BenchReport::from_json(&text)
            .unwrap_or_else(|e| usage_error(&format!("bad baseline `{baseline_path}`: {e}")));
        // `--only` narrows the baseline the same way it narrowed the run,
        // so a partial check compares the groups that ran instead of
        // failing on the ones it deliberately skipped.
        if let Some(only) = &cli.only {
            baseline.groups.retain(|g| g.name.contains(only.as_str()));
            if baseline.groups.is_empty() {
                usage_error(&format!("--only {only} matches no baseline group"));
            }
        }
        let (failures, warnings) = match cli.check_wall {
            Some(tol) => report.check_wall(&baseline, tol),
            None => report.check_against(&baseline),
        };
        for d in report.wall_deltas(&baseline) {
            eprintln!("wall: {d}");
        }
        for w in &warnings {
            eprintln!("WARNING: {w}");
        }
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if failures.is_empty() {
            println!(
                "bench check OK: {} groups match baseline `{}` ({} warnings)",
                baseline.groups.len(),
                baseline.label,
                warnings.len()
            );
        } else {
            eprintln!("bench check FAILED ({} failures)", failures.len());
            std::process::exit(1);
        }
        return;
    }

    let path = format!("{}/{}", cli.out_dir, report.file_name());
    std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("error: cannot write `{path}`: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The report format round-trips through the bench crate's parser
    /// (bench is workspace-excluded, so its own #[cfg(test)] suite is not
    /// reachable offline; this exercises it from a workspace member).
    #[test]
    fn report_json_roundtrip_via_bench_crate() {
        let r = bench::report::BenchReport {
            label: "x".into(),
            scale: "tiny".into(),
            jobs: 1,
            groups: vec![bench::report::GroupResult {
                name: GROUPS[0].0.to_string(),
                wall_ms: 1.5,
                cycles: 7,
                cycles_per_sec: 4666.7,
            }],
        };
        let parsed = bench::report::BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        let (failures, warnings) = r.check_against(&parsed);
        assert!(failures.is_empty() && warnings.is_empty());
    }
}
