//! Tracked-performance report: runs one tiny-scale pass per figure group
//! (the same code paths the criterion benches cover, without needing the
//! registry) and writes `BENCH_<label>.json` — wall time per group plus
//! simulated-cycles-per-second throughput. With `--check <baseline>`, the
//! fresh run is compared against a committed baseline: any simulated-cycle
//! drift fails (the simulator is deterministic), wall-time drift only
//! warns. Not an experiment regenerator: `run_experiments.sh` skips it.

use experiments::{grid, SchedConfig};
use simt_core::{BasePolicy, Engine, GpuConfig};
use std::time::Instant;
use workloads::sync::{Hashtable, HtMode};
use workloads::{rodinia_suite, sync_suite, Scale};

/// Run every (workload × sched) cell of a suite, returning total cycles.
fn suite_cycles(cfg: &GpuConfig, suite: &[Box<dyn workloads::Workload>], scheds: &[SchedConfig]) -> u64 {
    experiments::run_suite_grid(cfg, suite, scheds)
        .iter()
        .flatten()
        .map(|r| r.cycles)
        .sum()
}

fn group_fig2() -> u64 {
    let cfg = GpuConfig::gtx480();
    let scheds: Vec<SchedConfig> = [BasePolicy::Lrr, BasePolicy::Gto, BasePolicy::Cawa]
        .iter()
        .map(|&p| SchedConfig::baseline(p))
        .collect();
    suite_cycles(&cfg, &sync_suite(Scale::Tiny), &scheds)
}

fn group_fig9() -> u64 {
    let cfg = GpuConfig::gtx480();
    let scheds = [
        SchedConfig::baseline(BasePolicy::Gto),
        SchedConfig::bows_adaptive(BasePolicy::Gto),
    ];
    suite_cycles(&cfg, &sync_suite(Scale::Tiny), &scheds)
}

fn group_fig14() -> u64 {
    let cfg = GpuConfig::gtx480();
    let mut modulo = SchedConfig::bows(BasePolicy::Gto, bows::DelayMode::Fixed(1000));
    modulo.ddos = bows::DdosConfig {
        hash: bows::HashKind::Modulo,
        ..bows::DdosConfig::default()
    };
    let scheds = [SchedConfig::baseline(BasePolicy::Gto), modulo];
    suite_cycles(&cfg, &rodinia_suite(Scale::Tiny), &scheds)
}

fn group_fig16() -> u64 {
    let cfg = GpuConfig::gtx480();
    let cells: Vec<(u32, u8)> = [32u32, 128, 512]
        .iter()
        .flat_map(|&b| (0u8..3).map(move |k| (b, k)))
        .collect();
    grid::parallel_map(&cells, |_, &(buckets, kind)| {
        let ht = Hashtable::with_params(1024, 1, buckets, 128);
        let res = match kind {
            0 => experiments::run(&cfg, &ht, SchedConfig::baseline(BasePolicy::Gto)),
            1 => experiments::run(&cfg, &ht, SchedConfig::bows_adaptive(BasePolicy::Gto)),
            _ => experiments::run(
                &cfg,
                &ht.with_mode(HtMode::IdealNoLock),
                SchedConfig::baseline(BasePolicy::Gto),
            ),
        };
        res.expect("fig16 group cell").cycles
    })
    .iter()
    .sum()
}

fn group_pascal() -> u64 {
    let cfg = GpuConfig::gtx1080ti();
    let scheds = [SchedConfig::baseline(BasePolicy::Gto)];
    suite_cycles(&cfg, &sync_suite(Scale::Tiny), &scheds)
}

/// A named figure group returning its total simulated cycles.
type Group = (&'static str, fn() -> u64);

const GROUPS: &[Group] = &[
    ("fig2_baseline_policies", group_fig2),
    ("fig9_bows_vs_baseline", group_fig9),
    ("fig14_modulo_false_detect", group_fig14),
    ("fig16_ideal_blocking", group_fig16),
    ("pascal_sync_suite", group_pascal),
];

const USAGE: &str = "usage: bench_report [--label <name>] [--out <dir>] [--check <baseline.json>] [--jobs <n>] [--engine cycle|skip] [--sm-threads <n>]";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Cli {
    label: String,
    out_dir: String,
    check: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        label: "local".to_string(),
        out_dir: ".".to_string(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => match args.next() {
                Some(v) if v.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') => {
                    cli.label = v;
                }
                Some(v) => usage_error(&format!("label `{v}` must be [A-Za-z0-9_-]")),
                None => usage_error("--label requires a value"),
            },
            "--out" => match args.next() {
                Some(v) => cli.out_dir = v,
                None => usage_error("--out requires a value"),
            },
            "--check" => match args.next() {
                Some(v) => cli.check = Some(v),
                None => usage_error("--check requires a value"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => grid::set_jobs(n),
                _ => usage_error("--jobs requires a positive integer"),
            },
            // Simulated cycles are engine-independent (the equivalence
            // suite enforces it); the flag exists here to measure the
            // wall-time delta between the two engines on identical work.
            "--engine" => match args.next().as_deref() {
                Some("cycle") => experiments::set_engine(Some(Engine::Cycle)),
                Some("skip") => experiments::set_engine(Some(Engine::Skip)),
                _ => usage_error("--engine requires `cycle` or `skip`"),
            },
            // Simulated cycles are also sm-thread-count-independent (the
            // determinism suite enforces it); the flag measures how in-run
            // SM parallelism trades against grid-level parallelism.
            "--sm-threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => experiments::set_sm_threads(Some(n)),
                _ => usage_error("--sm-threads requires a positive integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let jobs = grid::jobs();
    let mut groups = Vec::new();
    for (name, f) in GROUPS {
        let t0 = Instant::now();
        let cycles = f();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!("{name}: {wall_ms:.1}ms, {cycles} cycles");
        groups.push(bench::report::GroupResult {
            name: name.to_string(),
            wall_ms,
            cycles,
            cycles_per_sec: cycles as f64 / (wall_ms / 1e3).max(1e-9),
        });
    }
    let report = bench::report::BenchReport {
        label: cli.label,
        scale: "tiny".to_string(),
        jobs,
        groups,
    };

    if let Some(baseline_path) = cli.check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read `{baseline_path}`: {e}")));
        let baseline = bench::report::BenchReport::from_json(&text)
            .unwrap_or_else(|e| usage_error(&format!("bad baseline `{baseline_path}`: {e}")));
        let (failures, warnings) = report.check_against(&baseline);
        for d in report.wall_deltas(&baseline) {
            eprintln!("wall: {d}");
        }
        for w in &warnings {
            eprintln!("WARNING: {w}");
        }
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if failures.is_empty() {
            println!(
                "bench check OK: {} groups match baseline `{}` ({} warnings)",
                baseline.groups.len(),
                baseline.label,
                warnings.len()
            );
        } else {
            eprintln!("bench check FAILED ({} failures)", failures.len());
            std::process::exit(1);
        }
        return;
    }

    let path = format!("{}/{}", cli.out_dir, report.file_name());
    std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("error: cannot write `{path}`: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The report format round-trips through the bench crate's parser
    /// (bench is workspace-excluded, so its own #[cfg(test)] suite is not
    /// reachable offline; this exercises it from a workspace member).
    #[test]
    fn report_json_roundtrip_via_bench_crate() {
        let r = bench::report::BenchReport {
            label: "x".into(),
            scale: "tiny".into(),
            jobs: 1,
            groups: vec![bench::report::GroupResult {
                name: GROUPS[0].0.to_string(),
                wall_ms: 1.5,
                cycles: 7,
                cycles_per_sec: 4666.7,
            }],
        };
        let parsed = bench::report::BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        let (failures, warnings) = r.check_against(&parsed);
        assert!(failures.is_empty() && warnings.is_empty());
    }
}
