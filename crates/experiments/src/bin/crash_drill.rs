//! `crash_drill` — kill-drill recovery for the durable simulation service.
//!
//! The drill SIGKILLs a real `bows-serve` process mid-load at seeded
//! points, restarts it on the same `--state-dir`, and checks the two
//! durability invariants end to end, over real HTTP:
//!
//! 1. **zero wrong bodies** — every 200 the service ever returns is
//!    byte-identical to the local serial oracle ([`simt_serve::run_request`]
//!    on the same request), before and after every crash;
//! 2. **zero committed-entry loss** — a result whose response was received
//!    is committed (the store fsyncs before the worker replies), so after
//!    a SIGKILL + restart the same request must be a cache *hit* with the
//!    same bytes, not a re-simulation.
//!
//! A final round arms the persistence-path chaos injector (torn, short,
//! and bit-flipped appends) and demands graceful degradation: every
//! response still correct, the server never crashes, and the next restart
//! recovers a consistent prefix.
//!
//! ```sh
//! cargo build --release -p simt-serve -p experiments
//! target/release/crash_drill --seed 7
//! ```
//!
//! Exits 0 only if every invariant held; prints a JSON summary either way.

use simt_serve::chaos::splitmix64;
use simt_serve::http::client;
use simt_serve::{run_request, RunOutcome, SimRequest};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const VEC_KERNEL: &str = ".kernel inc\n.regs 8\n.params 1\n    ld.param r1, [0]\n    mov r2, %gtid\n    shl r2, r2, 2\n    add r1, r1, r2\n    ld.global r3, [r1]\n    add r3, r3, 1\n    st.global [r1], r3\n    exit\n";

const LOCK_KERNEL: &str = ".kernel locked_inc\n.regs 10\n.params 2\n    ld.param r1, [0]\n    ld.param r2, [4]\n    mov r9, 0\nSPIN:\n    atom.global.cas r3, [r1], 0, 1 !acquire !sync\n    setp.eq.s32 p1, r3, 0\n@!p1 bra TEST\n    ld.global.volatile r4, [r2]\n    add r4, r4, 1\n    st.global [r2], r4\n    membar\n    atom.global.exch r5, [r1], 0 !release !sync\n    mov r9, 1\nTEST:\n    setp.eq.s32 p2, r9, 0 !sync\n@p2 bra SPIN !sib !sync\n    exit\n";

fn usage() -> ! {
    eprintln!(
        "usage: crash_drill [--seed N] [--requests N] [--serve-bin PATH] [--state-dir DIR]"
    );
    std::process::exit(2);
}

struct Drill {
    seed: u64,
    serve_bin: PathBuf,
    state_dir: PathBuf,
    /// (request JSON, oracle body) per distinct request.
    corpus: Vec<(String, String)>,
    violations: Vec<String>,
    kills: u32,
}

fn json_string(s: &str) -> String {
    simt_serve::Json::Str(s.to_string()).render()
}

fn build_corpus(n: usize) -> Vec<(String, String)> {
    let mut corpus = Vec::new();
    for i in 0..n {
        let body = if i % 4 == 3 {
            // Every 4th request is a contended spin lock under adaptive
            // BOWS — long enough to be mid-run when the SIGKILL lands.
            format!(
                "{{\"kernel\":{},\"ctas\":2,\"tpc\":32,\"bows\":\"adaptive\",\
                 \"params\":[{{\"buf\":1,\"fill\":0}},{{\"buf\":{},\"fill\":0}}],\
                 \"dumps\":[[1,1]]}}",
                json_string(LOCK_KERNEL),
                1 + i / 4
            )
        } else {
            format!(
                "{{\"kernel\":{},\"tpc\":32,\"params\":[{{\"buf\":32,\"fill\":{}}}],\
                 \"dumps\":[[0,4]]}}",
                json_string(VEC_KERNEL),
                i + 1
            )
        };
        let req = SimRequest::from_json(&body).expect("corpus request must parse");
        let oracle = match run_request(&req, None) {
            RunOutcome::Ok(b) => b,
            other => panic!("oracle run failed for request {i}: {other:?}"),
        };
        corpus.push((body, oracle));
    }
    corpus
}

/// Spawn `bows-serve` on an OS-assigned port and parse the bound address
/// from its startup line. Stderr keeps draining on a background thread so
/// the child can never block on a full pipe.
fn spawn_server(drill: &Drill, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(&drill.serve_bin);
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--state-dir",
        drill.state_dir.to_str().expect("utf-8 state dir"),
        "--checkpoint-every-cycles",
        "4096",
    ])
    .args(extra)
    .stdin(Stdio::null())
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    let mut child = cmd.spawn().unwrap_or_else(|e| {
        eprintln!("cannot spawn {}: {e}", drill.serve_bin.display());
        std::process::exit(2);
    });
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let mut addr = None;
    for line in lines.by_ref() {
        let line = line.unwrap_or_default();
        if let Some(rest) = line.strip_prefix("bows-serve listening on ") {
            addr = rest.split_whitespace().next().map(str::to_string);
            break;
        }
    }
    std::thread::spawn(move || for _ in lines.by_ref() {});
    let Some(addr) = addr else {
        let _ = child.kill();
        eprintln!("server never reported its address");
        std::process::exit(2);
    };
    // The listener is up before the line prints, but give the pool a beat.
    wait_healthy(&addr);
    (child, addr)
}

fn wait_healthy(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if client::get(addr, "/healthz").map(|r| r.status) == Ok(200) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    eprintln!("server at {addr} never became healthy");
    std::process::exit(2);
}

fn stat_u64(addr: &str, field: &str) -> u64 {
    let stats = client::get(addr, "/stats").map(|r| r.body).unwrap_or_default();
    simt_serve::Json::parse(&stats)
        .ok()
        .and_then(|j| j.get(field).ok().cloned())
        .and_then(|v| v.as_u64(field).ok())
        .unwrap_or(0)
}

impl Drill {
    fn check(&mut self, ok: bool, what: String) {
        if !ok {
            eprintln!("VIOLATION: {what}");
            self.violations.push(what);
        }
    }

    /// One kill-restart round: submit the corpus in a seeded order,
    /// SIGKILL after a seeded number of responses (leaving one request
    /// deliberately in flight), restart, then verify nothing responded-to
    /// was lost and nothing served is wrong.
    fn round(&mut self, round: u64, chaos: &[&str]) {
        let corpus = self.corpus.clone();
        let n = corpus.len();
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..n).collect();
            // Seeded Fisher–Yates: the drill replays exactly per seed.
            for i in (1..n).rev() {
                let j = (splitmix64(self.seed ^ (round << 32) ^ i as u64) % (i as u64 + 1))
                    as usize;
                idx.swap(i, j);
            }
            idx
        };
        let kill_after = 1 + (splitmix64(self.seed ^ round ^ 0xdead) % (n as u64 - 1)) as usize;

        let (mut child, addr) = spawn_server(self, chaos);
        let mut responded: Vec<usize> = Vec::new();
        for (done, &i) in order.iter().enumerate() {
            if done == kill_after {
                break;
            }
            let (body, oracle) = &corpus[i];
            match client::post(&addr, "/simulate", body) {
                Ok(resp) => {
                    self.check(
                        resp.status == 200,
                        format!("round {round}: request {i} returned {}", resp.status),
                    );
                    self.check(
                        resp.body == *oracle,
                        format!("round {round}: WRONG BODY for request {i} pre-kill"),
                    );
                    responded.push(i);
                }
                Err(e) => {
                    // Transport failure against a live server is a drill
                    // bug, not a durability finding.
                    self.check(false, format!("round {round}: transport error pre-kill: {e}"));
                }
            }
        }
        // Leave one request in flight so the SIGKILL lands mid-simulation,
        // then kill without ceremony. The in-flight client must see a
        // transport error — never a wrong body.
        let in_flight = order[kill_after % n];
        let flight_body = corpus[in_flight].0.clone();
        let flight_oracle = corpus[in_flight].1.clone();
        let flight_addr = addr.clone();
        let flight = std::thread::spawn(move || {
            client::post(&flight_addr, "/simulate", &flight_body)
                .map(|r| (r.status, r.body == flight_oracle))
        });
        std::thread::sleep(Duration::from_millis(
            splitmix64(self.seed ^ round ^ 0xbeef) % 20,
        ));
        let _ = child.kill();
        let _ = child.wait();
        self.kills += 1;
        if let Ok(Ok((status, body_matches))) = flight.join() {
            self.check(
                status != 200 || body_matches,
                format!("round {round}: WRONG BODY on the in-flight request"),
            );
        }

        // Restart on the same state dir: everything responded-to must be
        // a warm hit with the oracle's exact bytes. Under store chaos a
        // response may ride a faulted append, so only the no-chaos rounds
        // may demand the hit; correct bytes are demanded always.
        let (mut child, addr) = spawn_server(self, chaos);
        let recovered = stat_u64(&addr, "store_recovered_entries");
        if chaos.is_empty() {
            self.check(
                recovered >= responded.len() as u64,
                format!(
                    "round {round}: only {recovered} entries recovered after kill, \
                     {} were committed (responses received)",
                    responded.len()
                ),
            );
        }
        for &i in &responded {
            let (body, oracle) = &corpus[i];
            match client::post(&addr, "/simulate", body) {
                Ok(resp) => {
                    self.check(
                        resp.status == 200 && resp.body == *oracle,
                        format!("round {round}: request {i} wrong after restart"),
                    );
                    if chaos.is_empty() {
                        self.check(
                            resp.x_cache.as_deref() == Some("HIT"),
                            format!(
                                "round {round}: COMMITTED ENTRY LOST — request {i} \
                                 re-simulated after restart (X-Cache {:?})",
                                resp.x_cache
                            ),
                        );
                    }
                }
                Err(e) => self.check(false, format!("round {round}: post-restart error: {e}")),
            }
        }
        // The rest of the corpus must also serve correctly (cold or warm).
        for &i in &order {
            let (body, oracle) = &corpus[i];
            match client::post(&addr, "/simulate", body) {
                Ok(resp) => self.check(
                    resp.status == 200 && resp.body == *oracle,
                    format!("round {round}: request {i} wrong on full sweep"),
                ),
                Err(e) => self.check(false, format!("round {round}: sweep error: {e}")),
            }
        }
        let _ = child.kill();
        let _ = child.wait();
        self.kills += 1;
    }
}

fn main() {
    let mut seed = 1u64;
    let mut requests = 12usize;
    let mut serve_bin = None;
    let mut state_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| args.next().unwrap_or_else(|| {
            eprintln!("missing value for {what}");
            usage()
        });
        match a.as_str() {
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--requests" => requests = val("--requests").parse().unwrap_or_else(|_| usage()),
            "--serve-bin" => serve_bin = Some(PathBuf::from(val("--serve-bin"))),
            "--state-dir" => state_dir = Some(PathBuf::from(val("--state-dir"))),
            _ => usage(),
        }
    }
    if requests < 2 {
        eprintln!("--requests must be at least 2");
        usage();
    }
    let serve_bin = serve_bin.unwrap_or_else(|| {
        // Sibling binary in the same target profile directory.
        std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("bows-serve")))
            .filter(|p| p.exists())
            .unwrap_or_else(|| {
                eprintln!("bows-serve not found next to crash_drill; pass --serve-bin");
                std::process::exit(2);
            })
    });
    let state_dir = state_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("bows-crash-drill-{seed}-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&state_dir);

    eprintln!("crash drill: seed {seed}, {requests} requests, state dir {}", state_dir.display());
    let mut drill = Drill {
        seed,
        serve_bin,
        state_dir,
        corpus: build_corpus(requests),
        violations: Vec::new(),
        kills: 0,
    };

    // Two clean kill-restart rounds at seed-dependent points, then one
    // round with every persistence fault armed at a high rate.
    drill.round(0, &[]);
    drill.round(1, &[]);
    drill.round(
        2,
        &[
            "--chaos-seed",
            "9",
            "--chaos-store-torn-ppm",
            "300000",
            "--chaos-store-short-ppm",
            "300000",
            "--chaos-store-flip-ppm",
            "300000",
        ],
    );

    let passed = drill.violations.is_empty();
    println!(
        "{{\"drill\":\"crash\",\"seed\":{seed},\"requests\":{requests},\"kills\":{},\
         \"violations\":{},\"passed\":{passed}}}",
        drill.kills,
        drill.violations.len()
    );
    let _ = std::fs::remove_dir_all(&drill.state_dir);
    std::process::exit(i32::from(!passed));
}
