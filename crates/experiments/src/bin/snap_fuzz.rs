//! `snap_fuzz` — seeded corruption fuzz for the snapshot decoder.
//!
//! Takes real mid-run snapshots of a contended sync kernel, then feeds
//! seeded truncations and bit-flips through the two decode layers and
//! demands graceful failure at each:
//!
//! * **envelope layer** — any damaged *file* image (truncated anywhere,
//!   any single bit flipped) must be rejected by
//!   [`simt_snap::decode_envelope`] with a structured
//!   [`simt_snap::SnapshotError`]; the FNV-1a checksum makes this total.
//! * **body layer** — a damaged snapshot *body* handed to
//!   `Gpu::run_with_checkpoints` as a resume image must never panic; when
//!   it is rejected the error must be `SimError::Snapshot`, and the
//!   rejection must leave the GPU unmutated — a fresh run on the same GPU
//!   afterwards must be bit-identical to a control run. (A flip that
//!   lands in a don't-care or still-plausible field may restore and run;
//!   determinism then makes the outcome well-defined, and the fuzz only
//!   demands it be panic-free and structured.)
//!
//! The whole run is a pure function of `--seed`/`--count`, so CI replays
//! the identical corruption corpus on every commit. Exits 0 when every
//! case degrades gracefully, 1 otherwise, 2 on usage errors.

use simt_core::{sched::BasePolicy, CheckpointCtl, Gpu, GpuConfig, LaunchSpec, SimError};
use simt_isa::asm::assemble;
use simt_isa::Kernel;
use simt_serve::chaos::splitmix64 as snap_mix;
use simt_snap::{decode_envelope, encode_envelope};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

const LOCK_KERNEL: &str = r#"
    .kernel locked_inc
    .regs 10
    .params 2
        ld.param r1, [0]
        ld.param r2, [4]
        mov r9, 0
    SPIN:
        atom.global.cas r3, [r1], 0, 1 !acquire !sync
        setp.eq.s32 p1, r3, 0
    @!p1 bra TEST
        ld.global.volatile r4, [r2]
        add r4, r4, 1
        st.global [r2], r4
        membar
        atom.global.exch r5, [r1], 0 !release !sync
        mov r9, 1
    TEST:
        setp.eq.s32 p2, r9, 0 !sync
    @p2 bra SPIN !sib !sync
        exit
"#;

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\nflags: --seed <n>   --count <n>");
    std::process::exit(2);
}

fn setup() -> (Gpu, LaunchSpec) {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let mutex = gpu.mem_mut().gmem_mut().alloc(1);
    let counter = gpu.mem_mut().gmem_mut().alloc(1);
    let launch = LaunchSpec {
        grid_ctas: 2,
        threads_per_cta: 64,
        params: vec![mutex as u32, counter as u32],
    };
    (gpu, launch)
}

fn run(gpu: &mut Gpu, kernel: &Kernel, launch: &LaunchSpec, ctl: Option<CheckpointCtl<'_>>) -> Result<simt_core::KernelReport, SimError> {
    gpu.run_with_checkpoints(
        kernel,
        launch,
        &|| BasePolicy::Gto.build(50_000),
        &|k: &Kernel| -> Box<dyn simt_core::SpinDetector> {
            Box::new(simt_core::StaticSibDetector::new(k.true_sibs.clone()))
        },
        ctl,
    )
}

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut count = 500u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage_error("bad --seed")),
            "--count" => {
                count = val("--count").parse().unwrap_or_else(|_| usage_error("bad --count"));
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    let kernel = assemble(LOCK_KERNEL).expect("fixture kernel assembles");

    // Harvest real snapshots and the control outcome.
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    let (mut gpu, launch) = setup();
    let mut sink = |_c: u64, b: &[u8]| bodies.push(b.to_vec());
    let control = run(
        &mut gpu,
        &kernel,
        &launch,
        Some(CheckpointCtl {
            every: 128,
            sink: &mut sink,
            resume: None,
        }),
    )
    .expect("control run completes");
    let control_mem = gpu.mem().gmem().image().to_vec();
    assert!(!bodies.is_empty(), "fixture must produce mid-run snapshots");

    let mut violations = 0u64;
    let mut envelope_cases = 0u64;
    let mut body_rejected = 0u64;
    let mut body_restored = 0u64;
    for case in 0..count {
        let r = snap_mix(seed.wrapping_add(case.wrapping_mul(0x9e37_79b9)));
        let body = &bodies[(r as usize) % bodies.len()];

        if case % 2 == 0 {
            // Envelope layer: corrupt the file image.
            let mut file = encode_envelope(body);
            if r & 1 == 0 {
                file.truncate((snap_mix(r) as usize) % file.len());
            } else {
                let bit = (snap_mix(r) as usize) % (file.len() * 8);
                file[bit / 8] ^= 1 << (bit % 8);
            }
            envelope_cases += 1;
            match catch_unwind(AssertUnwindSafe(|| decode_envelope(&file).map(<[u8]>::to_vec))) {
                Ok(Err(_structured)) => {}
                Ok(Ok(_)) => {
                    eprintln!("case {case}: corrupted envelope decoded successfully");
                    violations += 1;
                }
                Err(_) => {
                    eprintln!("case {case}: decode_envelope panicked");
                    violations += 1;
                }
            }
        } else {
            // Body layer: corrupt the decoded body and try to resume it.
            let mut bad = body.clone();
            if r & 1 == 0 {
                bad.truncate((snap_mix(r) as usize) % bad.len());
            } else {
                let bit = (snap_mix(r) as usize) % (bad.len() * 8);
                bad[bit / 8] ^= 1 << (bit % 8);
            }
            let (mut victim, victim_launch) = setup();
            let mut nosink = |_c: u64, _b: &[u8]| {};
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run(
                    &mut victim,
                    &kernel,
                    &victim_launch,
                    Some(CheckpointCtl {
                        every: 0,
                        sink: &mut nosink,
                        resume: Some(&bad),
                    }),
                )
            }));
            match outcome {
                Err(_) => {
                    eprintln!("case {case}: resume of corrupted body panicked");
                    violations += 1;
                }
                Ok(Err(SimError::Snapshot { .. })) => {
                    // Structured rejection. The GPU must be unmutated: a
                    // fresh run on it must match the control bit-exactly.
                    body_rejected += 1;
                    match run(&mut victim, &kernel, &victim_launch, None) {
                        Ok(rep)
                            if rep.cycles == control.cycles
                                && rep.sim == control.sim
                                && victim.mem().gmem().image() == &control_mem[..] => {}
                        Ok(_) => {
                            eprintln!(
                                "case {case}: rejected resume left partial state behind \
                                 (fresh run diverged from control)"
                            );
                            violations += 1;
                        }
                        Err(e) => {
                            eprintln!("case {case}: GPU unusable after rejected resume: {e}");
                            violations += 1;
                        }
                    }
                }
                Ok(Err(e)) => {
                    // A flip that survives parsing may put the machine in a
                    // state that then fails deterministically (deadlock,
                    // cycle limit…). Structured is what matters.
                    let _ = e;
                    body_restored += 1;
                }
                Ok(Ok(_)) => body_restored += 1,
            }
        }
    }

    println!(
        "{{\"drill\":\"snap_fuzz\",\"seed\":{seed},\"count\":{count},\
         \"envelope_cases\":{envelope_cases},\"body_rejected\":{body_rejected},\
         \"body_restored_or_failed_structured\":{body_restored},\
         \"violations\":{violations}}}"
    );
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
