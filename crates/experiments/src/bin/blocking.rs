//! Blocking-lock comparison (the paper's Section VII / Figure 16b
//! narrative): BOWS vs an *idealized* HQL-style queue-lock mechanism at the
//! L2 partitions (warps park instead of spinning) across the hashtable
//! contention sweep. The paper argues BOWS approximates the benefits of
//! queue-based locking without its hardware; this experiment quantifies the
//! remaining gap against a best-case (constraint-free) queue lock.

use experiments::{grid, r3, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync::Hashtable;
use workloads::Scale;

fn main() {
    let opts = Opts::parse();
    let (threads, per_thread, tpc) = match opts.scale {
        Scale::Tiny => (1024, 1, 128),
        Scale::Small => (12288, 2, 256),
        Scale::Full => (24576, 4, 256),
    };
    let buckets_sweep: &[u32] = match opts.scale {
        Scale::Tiny => &[32, 128],
        // 32 buckets fit one cache line (parking fully engages); larger
        // counts span several lines, where the mechanism degrades to
        // spinning exactly as HQL does with many concurrent locks.
        _ => &[32, 128, 512, 2048],
    };
    println!(
        "BOWS vs idealized queue-based blocking locks (hashtable sweep)\n\
         (time and dynamic instructions normalized to the GTO baseline)\n"
    );
    let mut t = Table::new(&[
        "buckets",
        "bows_time",
        "blocking_time",
        "bows_inst",
        "blocking_inst",
        "blocking_fails",
    ]);
    // Three cells per bucket count: GTO baseline, BOWS, and the
    // blocking-lock GPU variant.
    let cells: Vec<(u32, u8)> = buckets_sweep
        .iter()
        .flat_map(|&b| (0u8..3).map(move |k| (b, k)))
        .collect();
    let results = grid::parallel_map(&cells, |_, &(buckets, kind)| {
        let ht = Hashtable::with_params(threads, per_thread, buckets, tpc);
        match kind {
            0 => experiments::run(
                &GpuConfig::gtx480(),
                &ht,
                SchedConfig::baseline(BasePolicy::Gto),
            )
            .expect("gto"),
            1 => experiments::run(
                &GpuConfig::gtx480(),
                &ht,
                SchedConfig::bows_adaptive(BasePolicy::Gto),
            )
            .expect("bows"),
            _ => {
                let mut blk_cfg = GpuConfig::gtx480();
                blk_cfg.blocking_locks = true;
                experiments::run(&blk_cfg, &ht, SchedConfig::baseline(BasePolicy::Gto))
                    .expect("blocking")
            }
        }
    });
    for (i, &buckets) in buckets_sweep.iter().enumerate() {
        let (base, bows, blocking) =
            (&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]);
        assert!(base.verified.is_ok());
        assert!(bows.verified.is_ok());
        assert!(blocking.verified.is_ok(), "{:?}", blocking.verified);
        t.row(vec![
            buckets.to_string(),
            r3(bows.cycles as f64 / base.cycles as f64),
            r3(blocking.cycles as f64 / base.cycles as f64),
            r3(bows.sim.thread_inst as f64 / base.sim.thread_inst as f64),
            r3(blocking.sim.thread_inst as f64 / base.sim.thread_inst as f64),
            (blocking.mem.lock_inter_fail + blocking.mem.lock_intra_fail).to_string(),
        ]);
    }
    t.emit(&opts);
    println!(
        "Expected shape: where parking engages (few buckets, locks within a\n\
         warp's line reach) blocking is the time/instruction floor; as locks\n\
         spread over more lines the mechanism reverts to spinning and loses\n\
         its edge — the same degradation-with-many-locks the paper (Sec. VII)\n\
         reports for HQL past 512 buckets, while BOWS keeps working. That is\n\
         the paper's case for scheduler-side spin management."
    );
}
