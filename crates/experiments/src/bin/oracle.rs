//! `oracle`: cross-validate DDOS detection against the static spin-loop
//! oracle from `simt-analyze`.
//!
//! Runs every workload (8 sync + 14 Rodinia) twice under a passive DDOS
//! (GTO scheduling, detection only) — once with XOR history hashing, once
//! with MODULO — and joins the dynamic confirmations per kernel against
//! the `!sib` annotations and the static classification. Prints the
//! per-kernel join and a precision/recall summary per hashing scheme, then
//! checks the paper's claims:
//!
//! * the static classification reproduces the annotations exactly,
//! * XOR never confirms a branch the oracle rejects (zero false
//!   detections; its few misses are branches that happened not to spin),
//! * MODULO's extra confirmations are all rejected by the oracle
//!   (Figure 14's power-of-two-stride aliasing, reported as such).
//!
//! Exits 1 if any claim fails, so CI can gate on it.

use bows::HashKind;
use experiments::oracle::{oracle_stages, precision_recall, OracleStage};
use experiments::{pct, Opts, Table};
use simt_core::GpuConfig;
use std::process::ExitCode;

fn pcs(v: &[usize]) -> String {
    if v.is_empty() {
        "-".to_string()
    } else {
        v.iter()
            .map(|pc| pc.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn main() -> ExitCode {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    let mut suite = workloads::sync_suite(opts.scale);
    suite.extend(workloads::rodinia_suite(opts.scale));
    let stages = oracle_stages(&cfg, &suite);

    println!(
        "oracle: static spin-loop classification vs DDOS confirmations \
         (passive GTO runs on {})\n",
        cfg.name
    );
    let mut t = Table::new(&[
        "workload", "kernel", "annotated", "static", "executed", "xor", "modulo",
        "xor-false", "mod-false",
    ]);
    for s in &stages {
        t.row(vec![
            s.workload.clone(),
            s.kernel.clone(),
            pcs(&s.true_sibs),
            pcs(&s.static_sibs),
            pcs(&s.executed),
            pcs(&s.xor_confirmed),
            pcs(&s.modulo_confirmed),
            pcs(&s.xor_false()),
            pcs(&s.modulo_false()),
        ]);
    }
    t.emit(&opts);

    let mut sum = Table::new(&["detector", "suite", "tp", "fp", "fn", "precision", "recall"]);
    for hash in [HashKind::Xor, HashKind::Modulo] {
        for (label, sync_only) in [("sync", Some(true)), ("rodinia", Some(false)), ("all", None)]
        {
            let pr = precision_recall(&stages, hash, sync_only);
            sum.row(vec![
                hash.name().to_string(),
                label.to_string(),
                pr.tp.to_string(),
                pr.fp.to_string(),
                pr.fn_.to_string(),
                pct(pr.precision()),
                pct(pr.recall()),
            ]);
        }
    }
    sum.emit(&opts);

    verdicts(&stages)
}

/// Check the cross-validation claims, printing one line per verdict.
fn verdicts(stages: &[OracleStage]) -> ExitCode {
    let mut ok = true;
    let mut check = |name: &str, pass: bool, detail: String| {
        println!("{} {name}{detail}", if pass { "PASS" } else { "FAIL" });
        ok &= pass;
    };

    let mismatched: Vec<String> = stages
        .iter()
        .filter(|s| !s.static_matches_annotation())
        .map(|s| format!("{}/{}", s.workload, s.kernel))
        .collect();
    check(
        "static classification == !sib annotations on every kernel",
        mismatched.is_empty(),
        if mismatched.is_empty() {
            String::new()
        } else {
            format!(": {mismatched:?}")
        },
    );

    let xor_fp = precision_recall(stages, HashKind::Xor, None).fp;
    check(
        "XOR confirmations all statically classified (zero false detections)",
        xor_fp == 0,
        format!(" [{xor_fp} rejected]"),
    );

    let static_on_rodinia: Vec<String> = stages
        .iter()
        .filter(|s| !s.is_sync && !s.static_sibs.is_empty())
        .map(|s| format!("{}/{}", s.workload, s.kernel))
        .collect();
    check(
        "no static spin claims on the synchronization-free suite",
        static_on_rodinia.is_empty(),
        if static_on_rodinia.is_empty() {
            String::new()
        } else {
            format!(": {static_on_rodinia:?}")
        },
    );

    let mod_pr = precision_recall(stages, HashKind::Modulo, None);
    let mod_false_ok = stages.iter().all(|s| {
        s.modulo_confirmed
            .iter()
            .all(|pc| s.static_sibs.contains(pc) || s.modulo_false().contains(pc))
    });
    check(
        "MODULO extras reported as false detections",
        mod_false_ok,
        format!(" [{} false detections attributed]", mod_pr.fp),
    );

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
