//! Figure 15: the Figure 9 experiment on the GTX1080Ti (Pascal) config.
//!
//! Paper reference points: BOWS speedups of 1.9x / 1.7x / 1.5x over
//! LRR / GTO / CAWA; behavior is flatter across baselines because the same
//! inputs under-subscribe Pascal (about a quarter of the warps per
//! scheduler compared to Fermi).

use experiments::{perf_energy_figure, Opts};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    perf_energy_figure(&GpuConfig::gtx1080ti(), &opts, "Figure 15");
}
