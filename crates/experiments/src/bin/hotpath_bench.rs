//! Microbenchmarks isolating the two hot-path changes of the overhaul on
//! synthetic traces, outside the full simulator:
//!
//! 1. **decode-dispatch vs enum-dispatch** — the per-issue cost of reading
//!    a flat [`simt_isa::DecodedInst`] (precomputed scoreboard masks,
//!    resolved operands) against re-matching the nested `Inst`/`Operand`
//!    enums the way the pre-overhaul executor did on every eligibility
//!    check.
//! 2. **slab vs HashMap** — the pending-memory (`TagSlab`) and line-keyed
//!    (`ProbeMap`) access patterns against the `HashMap`s they replaced.
//!
//! Wall times are best-of-`REPS` over `ITERS`-step loops; a checksum from
//! every loop is printed so the work cannot be optimized away. Run with
//! `cargo run --release -p experiments --bin hotpath_bench`.

use simt_core::Scoreboard;
use simt_isa::asm::assemble;
use simt_isa::DecodedKernel;
use simt_mem::{ProbeMap, TagSlab};
use std::collections::HashMap;
use std::time::Instant;

const ITERS: usize = 2_000_000;
const REPS: usize = 5;

/// Deterministic pseudo-random stream (same LCG family as the chaos
/// engine) so every variant of a comparison replays one identical trace.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Best-of-REPS wall time of `f`, in nanoseconds per iteration, folding
/// each rep's checksum so the optimizer must keep the loop.
fn time(label: &str, mut f: impl FnMut() -> u64) {
    let mut best = f64::INFINITY;
    let mut sum = 0u64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        sum = sum.wrapping_add(f());
        let ns = t0.elapsed().as_nanos() as f64;
        best = best.min(ns / ITERS as f64);
    }
    println!("  {label:<28} {best:>8.2} ns/op   (checksum {sum:#x})");
}

/// A kernel body with the instruction mix the sync workloads issue:
/// address math, loads, compare/branch, an atomic, a store.
fn sample_kernel() -> simt_isa::Kernel {
    assemble(
        r#"
        .kernel hotpath
        .regs 16
        .params 2
            ld.param r1, [0]
            ld.param r2, [1]
            mov r3, %gtid
            shl r4, r3, 2
            add r5, r1, r4
        LOOP:
            ld.global r6, [r5]
            add r6, r6, 1
            setp.lt.s32 p1, r6, r2
            atom.global.cas r7, [r5], 0, 1
            st.global [r5], r6
        @p1 bra LOOP
            exit
        "#,
    )
    .expect("sample kernel assembles")
}

fn bench_dispatch() {
    let kernel = sample_kernel();
    let decoded = DecodedKernel::decode(&kernel);
    let n = decoded.insts.len();
    let mut sb = Scoreboard::new();
    // A live scoreboard so neither hazard path short-circuits on "empty".
    sb.reserve_reg(simt_isa::Reg(6));
    sb.reserve_pred(simt_isa::Pred(1));

    println!("dispatch ({} insts, {} steps):", n, ITERS);
    // Identical pc trace for both variants.
    let pcs: Vec<usize> = {
        let mut rng = Lcg(0x5eed);
        (0..ITERS).map(|_| rng.next() as usize % n).collect()
    };
    time("enum has_hazard", || {
        let mut acc = 0u64;
        for &pc in &pcs {
            acc = acc.wrapping_add(sb.has_hazard(&kernel.insts[pc]) as u64);
        }
        acc
    });
    time("decoded has_hazard_masks", || {
        let mut acc = 0u64;
        for &pc in &pcs {
            let d = &decoded.insts[pc];
            acc = acc.wrapping_add(sb.has_hazard_masks(&d.reg_mask, d.pred_mask) as u64);
        }
        acc
    });
    // Operand resolution: the enum path re-matches `Operand` per read the
    // way the old per-lane loop did; the decoded path reads flat fields.
    time("enum operand walk", || {
        let mut acc = 0u64;
        for &pc in &pcs {
            for op in &kernel.insts[pc].srcs {
                acc = acc.wrapping_add(match *op {
                    simt_isa::Operand::Reg(r) => r.0 as u64,
                    simt_isa::Operand::Imm(v) => v as u64,
                    simt_isa::Operand::Special(_) => 7,
                });
            }
        }
        acc
    });
    time("decoded operand walk", || {
        let mut acc = 0u64;
        for &pc in &pcs {
            let d = &decoded.insts[pc];
            for op in &d.srcs {
                acc = acc.wrapping_add(match *op {
                    simt_isa::Operand::Reg(r) => r.0 as u64,
                    simt_isa::Operand::Imm(v) => v as u64,
                    simt_isa::Operand::Special(_) => 7,
                });
            }
        }
        acc
    });
}

fn bench_tag_maps() {
    println!("pending-tag map, {} ops (insert/get_mut/remove churn):", ITERS);
    // The Sm::pending pattern: allocate a tag at issue, hit it once per
    // completing request, remove when drained. Working set stays small
    // (tens of in-flight entries), which is exactly where hashing loses.
    time("HashMap<u64, u64>", || {
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut next_tag = 0u64;
        let mut rng = Lcg(0xfeed);
        let mut tags: Vec<u64> = Vec::new();
        let mut acc = 0u64;
        for _ in 0..ITERS {
            if tags.len() < 24 || rng.next() % 2 == 0 {
                m.insert(next_tag, next_tag ^ 0xabcd);
                tags.push(next_tag);
                next_tag += 1;
            } else {
                let i = rng.next() as usize % tags.len();
                let t = tags.swap_remove(i);
                if let Some(v) = m.get_mut(&t) {
                    acc = acc.wrapping_add(*v);
                }
                m.remove(&t);
            }
        }
        acc
    });
    time("TagSlab<u64>", || {
        let mut m: TagSlab<u64> = TagSlab::new();
        let mut next_tag = 0u64;
        let mut rng = Lcg(0xfeed);
        let mut tags: Vec<u64> = Vec::new();
        let mut acc = 0u64;
        for _ in 0..ITERS {
            if tags.len() < 24 || rng.next() % 2 == 0 {
                let t = m.insert(next_tag ^ 0xabcd);
                tags.push(t);
                next_tag += 1;
            } else {
                let i = rng.next() as usize % tags.len();
                let t = tags.swap_remove(i);
                if let Some(v) = m.get_mut(t) {
                    acc = acc.wrapping_add(*v);
                }
                m.remove(t);
            }
        }
        acc
    });
}

fn bench_line_maps() {
    println!("line-keyed map, {} ops (lock_owners/parked pattern):", ITERS);
    // Line addresses: 128-byte aligned, small hot set plus a cold tail.
    let addrs: Vec<u64> = {
        let mut rng = Lcg(0x10c);
        (0..ITERS)
            .map(|_| {
                let line = if rng.next() % 4 == 0 {
                    rng.next() % 4096
                } else {
                    rng.next() % 32
                };
                line * 128
            })
            .collect()
    };
    time("HashMap<u64, u64>", || {
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut acc = 0u64;
        for &a in &addrs {
            match m.get(&a) {
                Some(&v) => {
                    acc = acc.wrapping_add(v);
                    m.remove(&a);
                }
                None => {
                    m.insert(a, a ^ 0x5a5a);
                }
            }
        }
        acc
    });
    time("ProbeMap<u64>", || {
        let mut m: ProbeMap<u64> = ProbeMap::new();
        let mut acc = 0u64;
        for &a in &addrs {
            match m.get(a) {
                Some(&v) => {
                    acc = acc.wrapping_add(v);
                    m.remove(a);
                }
                None => {
                    m.insert(a, a ^ 0x5a5a);
                }
            }
        }
        acc
    });
}

fn main() {
    println!("hotpath_bench: best of {REPS} reps\n");
    bench_dispatch();
    println!();
    bench_tag_maps();
    println!();
    bench_line_maps();
}
