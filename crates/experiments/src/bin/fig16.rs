//! Figure 16: sensitivity to contention. Hashtable bucket sweep:
//! (a) BOWS speedup over GTO, (b) dynamic instruction count vs GTO plus the
//! "ideal blocking" proxy (a lock that always succeeds on the first try).

use experiments::{grid, r3, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync::{Hashtable, HtMode};
use workloads::Scale;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    let (threads, per_thread, tpc) = match opts.scale {
        Scale::Tiny => (1024, 1, 128),
        Scale::Small => (12288, 2, 256),
        Scale::Full => (24576, 4, 256),
    };
    let buckets_sweep: &[u32] = match opts.scale {
        Scale::Tiny => &[32, 128, 512],
        _ => &[128, 256, 512, 1024, 2048, 4096],
    };
    println!("Figure 16: BOWS sensitivity to contention (hashtable bucket sweep)\n");
    let mut t = Table::new(&[
        "buckets",
        "bows_speedup",
        "bows_inst_ratio",
        "ideal_block_inst_ratio",
    ]);
    // Three cells per bucket count: GTO baseline, BOWS, and the
    // ideal-no-lock instruction proxy.
    let cells: Vec<(u32, u8)> = buckets_sweep
        .iter()
        .flat_map(|&b| (0u8..3).map(move |k| (b, k)))
        .collect();
    let results = grid::parallel_map(&cells, |_, &(buckets, kind)| {
        let ht = Hashtable::with_params(threads, per_thread, buckets, tpc);
        match kind {
            0 => experiments::run(&cfg, &ht, SchedConfig::baseline(BasePolicy::Gto))
                .expect("gto"),
            1 => experiments::run(&cfg, &ht, SchedConfig::bows_adaptive(BasePolicy::Gto))
                .expect("bows"),
            _ => experiments::run(
                &cfg,
                &ht.with_mode(HtMode::IdealNoLock),
                SchedConfig::baseline(BasePolicy::Gto),
            )
            .expect("ideal"),
        }
    });
    for (i, &buckets) in buckets_sweep.iter().enumerate() {
        let (base, bows, ideal) = (&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]);
        t.row(vec![
            buckets.to_string(),
            r3(base.cycles as f64 / bows.cycles.max(1) as f64),
            r3(bows.sim.thread_inst as f64 / base.sim.thread_inst.max(1) as f64),
            r3(ideal.sim.thread_inst as f64 / base.sim.thread_inst.max(1) as f64),
        ]);
    }
    t.emit(&opts);
    println!(
        "Paper's shape: speedup and instruction savings are largest at high\n\
         contention (few buckets) and shrink toward 1x as buckets grow; the\n\
         ideal-blocking gap narrows with bucket count."
    );
}
