//! Figure 16: sensitivity to contention. Hashtable bucket sweep:
//! (a) BOWS speedup over GTO, (b) dynamic instruction count vs GTO plus the
//! "ideal blocking" proxy (a lock that always succeeds on the first try).

use experiments::{r3, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync::{Hashtable, HtMode};
use workloads::Scale;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    let (threads, per_thread, tpc) = match opts.scale {
        Scale::Tiny => (1024, 1, 128),
        Scale::Small => (12288, 2, 256),
        Scale::Full => (24576, 4, 256),
    };
    let buckets_sweep: &[u32] = match opts.scale {
        Scale::Tiny => &[32, 128, 512],
        _ => &[128, 256, 512, 1024, 2048, 4096],
    };
    println!("Figure 16: BOWS sensitivity to contention (hashtable bucket sweep)\n");
    let mut t = Table::new(&[
        "buckets",
        "bows_speedup",
        "bows_inst_ratio",
        "ideal_block_inst_ratio",
    ]);
    for &buckets in buckets_sweep {
        let ht = Hashtable::with_params(threads, per_thread, buckets, tpc);
        let base = experiments::run(&cfg, &ht, SchedConfig::baseline(BasePolicy::Gto))
            .expect("gto");
        let bows = experiments::run(&cfg, &ht, SchedConfig::bows_adaptive(BasePolicy::Gto))
            .expect("bows");
        let ideal = experiments::run(
            &cfg,
            &ht.clone().with_mode(HtMode::IdealNoLock),
            SchedConfig::baseline(BasePolicy::Gto),
        )
        .expect("ideal");
        t.row(vec![
            buckets.to_string(),
            r3(base.cycles as f64 / bows.cycles.max(1) as f64),
            r3(bows.sim.thread_inst as f64 / base.sim.thread_inst.max(1) as f64),
            r3(ideal.sim.thread_inst as f64 / base.sim.thread_inst.max(1) as f64),
        ]);
    }
    t.emit(&opts);
    println!(
        "Paper's shape: speedup and instruction savings are largest at high\n\
         contention (few buckets) and shrink toward 1x as buckets grow; the\n\
         ideal-blocking gap narrows with bucket count."
    );
}
