//! Ablation studies for the design choices DESIGN.md calls out (not a
//! paper figure — the paper asserts these designs, we isolate them):
//!
//! 1. **BOWS components**: deprioritization only (the backed-off queue),
//!    throttling only (the pending back-off delay), and both — on the
//!    contended hashtable.
//! 2. **DDOS value history**: path-only detection falsely classifies every
//!    loop as spinning; the value registers are what make detection sound.

use bows::{Bows, BowsComponents, DdosConfig, DelayMode};
use experiments::{grid, pct, r3, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync::Hashtable;
use workloads::{rodinia_suite, run_workload, Scale};

fn main() {
    let opts = Opts::parse();
    let mut cfg = GpuConfig::gtx480();
    // This binary calls run_workload directly (custom BOWS components), so
    // the --engine override is applied here rather than in experiments::run.
    experiments::apply_engine(&mut cfg);
    let (threads, per_thread, buckets, tpc) = match opts.scale {
        Scale::Tiny => (1024, 1, 32, 128),
        Scale::Small => (12288, 2, 256, 256),
        Scale::Full => (24576, 4, 1024, 256),
    };
    let ht = Hashtable::with_params(threads, per_thread, buckets, tpc);

    println!("Ablation 1: BOWS mechanisms in isolation (hashtable, GTO base)\n");
    let mut t = Table::new(&["variant", "time_vs_gto", "inst_vs_gto", "lock_fail_vs_gto"]);
    let variants = [
        ("deprioritize only", BowsComponents { deprioritize: true, throttle: false }),
        ("throttle only", BowsComponents { deprioritize: false, throttle: true }),
        ("full BOWS", BowsComponents::default()),
    ];
    // Cell 0 is the GTO baseline; cells 1..=3 are the component variants.
    let cells: Vec<usize> = (0..=variants.len()).collect();
    let results = grid::parallel_map(&cells, |_, &v| {
        if v == 0 {
            return experiments::run(&cfg, &ht, SchedConfig::baseline(BasePolicy::Gto))
                .expect("baseline");
        }
        let comps = variants[v - 1].1;
        let rotate = cfg.gto_rotate_period;
        run_workload(
            &cfg,
            &ht,
            &move || {
                Box::new(Bows::with_components(
                    BasePolicy::Gto.build(rotate),
                    DelayMode::Adaptive(bows::AdaptiveConfig::default()),
                    comps,
                ))
            },
            &bows::ddos_factory(DdosConfig::default(), cfg.warps_per_sm()),
        )
        .expect("ablation run")
    });
    let base = &results[0];
    for ((name, _), res) in variants.iter().zip(&results[1..]) {
        assert!(res.verified.is_ok(), "{name} broke correctness");
        let fails = |r: &workloads::WorkloadResult| {
            (r.mem.lock_inter_fail + r.mem.lock_intra_fail).max(1) as f64
        };
        t.row(vec![
            name.to_string(),
            r3(res.cycles as f64 / base.cycles as f64),
            r3(res.sim.thread_inst as f64 / base.sim.thread_inst as f64),
            r3(fails(res) / fails(base)),
        ]);
    }
    t.emit(&opts);

    println!("Ablation 2: DDOS without value history (path-only detection)\n");
    let mut t = Table::new(&["kernel", "sync?", "full_ddos_FSDR", "path_only_FSDR"]);
    let mut full = SchedConfig::baseline(BasePolicy::Gto);
    full.force_ddos = true;
    let mut path_only = full;
    path_only.ddos = DdosConfig {
        track_values: false,
        ..DdosConfig::default()
    };
    let suite: Vec<_> = rodinia_suite(Scale::Tiny).into_iter().take(6).collect();
    for row_results in experiments::run_suite_grid(&cfg, &suite, &[full, path_only]) {
        let (full_res, path_res) = (&row_results[0], &row_results[1]);
        let m_full = experiments::detection_metrics(full_res);
        let m_path = experiments::detection_metrics(path_res);
        t.row(vec![
            full_res.name.clone(),
            "no".to_string(),
            pct(m_full.fsdr),
            pct(m_path.fsdr),
        ]);
    }
    t.emit(&opts);
    println!(
        "Expected: path-only detection flags ordinary loops as spin loops\n\
         (FSDR >> 0), demonstrating why DDOS tracks setp source values."
    );
}
