//! Stall-cycle breakdown (not a paper figure — supporting analysis for the
//! paper's Sections II–III): where every resident warp-cycle goes under GTO
//! vs GTO+BOWS on the sync suite. Shows the mechanism of BOWS's win: issue
//! and data-stall cycles spent on failed spin iterations turn into
//! backed-off cycles, freeing the machine for lock holders.

use experiments::{pct, run_suite_grid, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync_suite;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    println!("Warp-cycle breakdown per kernel (fractions of resident warp-cycles)\n");
    let mut t = Table::new(&[
        "kernel",
        "sched",
        "issued",
        "data_stall",
        "barrier",
        "membar",
        "backoff",
        "arb_loss",
    ]);
    let scheds = [
        SchedConfig::baseline(BasePolicy::Gto),
        SchedConfig::bows_adaptive(BasePolicy::Gto),
    ];
    let suite = sync_suite(opts.scale);
    for row_results in run_suite_grid(&cfg, &suite, &scheds) {
        for (sched, res) in scheds.iter().zip(&row_results) {
            let b = res.sim.stall_breakdown();
            t.row(vec![
                res.name.clone(),
                sched.label(),
                pct(b[0]),
                pct(b[1]),
                pct(b[2]),
                pct(b[3]),
                pct(b[4]),
                pct(b[5]),
            ]);
        }
    }
    t.emit(&opts);
}
