//! Figure 2: distribution of lock-acquire and wait-exit outcomes across the
//! eight synchronization kernels under LRR, GTO and CAWA.

use experiments::{pct, run_suite_grid, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync_suite;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    println!("Figure 2: synchronization status distribution (GTX480)\n");
    let mut t = Table::new(&[
        "kernel",
        "policy",
        "lock_success",
        "inter_warp_fail",
        "intra_warp_fail",
        "wait_exit_ok",
        "wait_exit_fail",
        "attempts_per_success",
    ]);
    let policies = [BasePolicy::Lrr, BasePolicy::Gto, BasePolicy::Cawa];
    let scheds: Vec<SchedConfig> = policies.iter().map(|&p| SchedConfig::baseline(p)).collect();
    let suite = sync_suite(opts.scale);
    for row_results in run_suite_grid(&cfg, &suite, &scheds) {
        for (policy, res) in policies.iter().zip(&row_results) {
            let lock_total =
                res.mem.lock_success + res.mem.lock_inter_fail + res.mem.lock_intra_fail;
            let wait_total = res.sim.wait_exit_success + res.sim.wait_exit_fail;
            let total = (lock_total + wait_total).max(1) as f64;
            let aps = if res.mem.lock_success > 0 {
                lock_total as f64 / res.mem.lock_success as f64
            } else {
                0.0
            };
            t.row(vec![
                res.name.clone(),
                policy.name().to_string(),
                pct(res.mem.lock_success as f64 / total),
                pct(res.mem.lock_inter_fail as f64 / total),
                pct(res.mem.lock_intra_fail as f64 / total),
                pct(res.sim.wait_exit_success as f64 / total),
                pct(res.sim.wait_exit_fail as f64 / total),
                format!("{aps:.2}"),
            ]);
        }
    }
    t.emit(&opts);
    println!(
        "Paper's observations to check: most lock failures are inter-warp,\n\
         and the failure volume varies strongly with the scheduling policy."
    );
}
