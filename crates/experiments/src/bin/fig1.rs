//! Figure 1: the motivation study. Hashtable insertions vs. bucket count:
//! (b) GPU (Fermi & Pascal configs) vs. a native serial CPU implementation,
//! (c) dynamic-instruction synchronization overhead,
//! (d) memory-traffic synchronization overhead,
//! (e) SIMD efficiency with a single warp vs. the full machine.

use experiments::{grid, pct, r3, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use std::time::Instant;
use workloads::sync::Hashtable;
use workloads::{Lcg, Scale};

/// Native serial CPU hashtable insertion (the paper's Intel i7 baseline).
/// Returns milliseconds for `insertions` chained-list insertions.
fn cpu_hashtable_ms(insertions: usize, buckets: usize) -> f64 {
    #[derive(Clone, Copy)]
    #[allow(dead_code)]
    struct Node {
        key: u32,
        next: u32,
    }
    let mut heads = vec![0u32; buckets];
    let mut pool: Vec<Node> = Vec::with_capacity(insertions);
    let mut lcg = Lcg::new(1);
    let t0 = Instant::now();
    for _ in 0..insertions {
        let key = lcg.next_u32();
        let b = (key % buckets as u32) as usize;
        pool.push(Node {
            key,
            next: heads[b],
        });
        heads[b] = pool.len() as u32;
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    // Keep the work observable.
    assert_eq!(pool.len(), insertions);
    std::hint::black_box(&heads);
    ms
}

fn main() {
    let opts = Opts::parse();
    let (threads, per_thread, tpc) = match opts.scale {
        Scale::Tiny => (1024, 1, 128),
        Scale::Small => (12288, 2, 256),
        Scale::Full => (24576, 4, 256),
    };
    let buckets_sweep: &[u32] = match opts.scale {
        Scale::Tiny => &[32, 128, 512],
        _ => &[128, 256, 512, 1024, 2048, 4096],
    };
    let insertions = threads * per_thread;
    println!(
        "Figure 1: hashtable motivation ({insertions} insertions, {threads} threads)\n"
    );

    let mut t = Table::new(&[
        "buckets",
        "cpu_ms",
        "fermi_ms",
        "pascal_ms",
        "sync_inst",
        "sync_mem",
        "simd_eff",
    ]);
    // Three GPU cells per bucket count: Fermi multi-warp (reused for
    // Fig 1e's "multi" column), Pascal multi-warp, and the single-warp run.
    // The serial CPU reference stays on this thread: it is a wall-clock
    // timing measurement and must not compete with simulator workers.
    let cells: Vec<(u32, u8)> = buckets_sweep
        .iter()
        .flat_map(|&b| (0u8..3).map(move |k| (b, k)))
        .collect();
    let results = grid::parallel_map(&cells, |_, &(buckets, kind)| {
        let sched = SchedConfig::baseline(BasePolicy::Gto);
        match kind {
            0 => experiments::run(
                &GpuConfig::gtx480(),
                &Hashtable::with_params(threads, per_thread, buckets, tpc),
                sched,
            )
            .expect("fermi run"),
            1 => experiments::run(
                &GpuConfig::gtx1080ti(),
                &Hashtable::with_params(threads, per_thread, buckets, tpc),
                sched,
            )
            .expect("pascal run"),
            _ => experiments::run(
                &GpuConfig::gtx480(),
                &Hashtable::with_params(32, per_thread, buckets, 32),
                sched,
            )
            .expect("single-warp run"),
        }
    });
    for (i, &buckets) in buckets_sweep.iter().enumerate() {
        let (fermi, pascal) = (&results[3 * i], &results[3 * i + 1]);
        let cpu_ms = cpu_hashtable_ms(insertions, buckets as usize);
        t.row(vec![
            buckets.to_string(),
            r3(cpu_ms),
            r3(fermi.time_ms(&GpuConfig::gtx480())),
            r3(pascal.time_ms(&GpuConfig::gtx1080ti())),
            pct(fermi.sim.sync_inst_fraction()),
            pct(fermi.mem.sync_fraction()),
            pct(fermi.sim.simd_efficiency()),
        ]);
    }
    println!("Fig 1b-d: execution time and synchronization overheads");
    t.emit(&opts);

    // Fig 1e: single warp vs multiple warps (multi = the Fermi run above).
    let mut t = Table::new(&["buckets", "simd_eff_1warp", "simd_eff_multi"]);
    for (i, &buckets) in buckets_sweep.iter().enumerate() {
        let (m, s) = (&results[3 * i], &results[3 * i + 2]);
        t.row(vec![
            buckets.to_string(),
            pct(s.sim.simd_efficiency()),
            pct(m.sim.simd_efficiency()),
        ]);
    }
    println!("Fig 1e: divergence overheads (inter-warp lock conflicts)");
    t.emit(&opts);
}
