//! Table I: DDOS sensitivity to its design parameters — hashing function,
//! hash width, confidence threshold, history length, and time sharing.
//! Reports, per configuration, the average True Spin Detection Rate (TSDR),
//! False Spin Detection Rate (FSDR) and Detection Phase Ratio (DPR) over
//! the benchmark suite (sync kernels for TSDR; both suites for FSDR).
//!
//! All DDOS variants observe the *same* execution passively (a fan-out
//! detector), so the whole table costs one simulation per workload.

use bows::{Ddos, DdosConfig, HashKind};
use experiments::{grid, pct, r3, Opts, Table};
use simt_core::{BasePolicy, Gpu, GpuConfig, SpinDetector};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use workloads::{rodinia_suite, sync_suite, Workload};

/// `(config index, branch pc) -> earliest confirmation cycle` across SMs.
type Sink = Arc<Mutex<HashMap<(usize, usize), u64>>>;

/// Runs many DDOS instances against one execution; is_sib is always false
/// (pure observation — scheduling is unaffected). Confirmations are merged
/// into the shared sink when the simulator collects per-SM reports at the
/// end of the run ([`SpinDetector::confirmed_sibs`]): an explicit,
/// idempotent min-merge rather than a Drop-time side effect, so the merge
/// point is deterministic and safe to drive from harness worker threads.
struct FanOut {
    dets: Vec<Ddos>,
    sink: Sink,
}

impl FanOut {
    fn merge_into_sink(&self) {
        let mut sink = self.sink.lock().expect("sink lock");
        for (i, d) in self.dets.iter().enumerate() {
            for (pc, at) in d.confirmed_sibs() {
                sink.entry((i, pc))
                    .and_modify(|c| *c = (*c).min(at))
                    .or_insert(at);
            }
        }
    }
}

impl SpinDetector for FanOut {
    fn on_setp(&mut self, now: u64, warp: usize, pc: usize, srcs: [u32; 2]) {
        for d in &mut self.dets {
            d.on_setp(now, warp, pc, srcs);
        }
    }

    fn on_branch(&mut self, now: u64, warp: usize, pc: usize, target: usize, taken: bool) {
        for d in &mut self.dets {
            d.on_branch(now, warp, pc, target, taken);
        }
    }

    fn is_sib(&self, _pc: usize) -> bool {
        false
    }

    fn warp_reset(&mut self, warp: usize) {
        for d in &mut self.dets {
            d.warp_reset(warp);
        }
    }

    fn confirmed_sibs(&self) -> Vec<(usize, u64)> {
        self.merge_into_sink();
        // The fan-out rows are reported via the sink, not the kernel report.
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "ddos-fanout"
    }
}

/// One Table I row: a named DDOS configuration.
struct Variant {
    group: &'static str,
    label: String,
    cfg: DdosConfig,
}

fn variants() -> Vec<Variant> {
    let mut v = Vec::new();
    let base = DdosConfig::default(); // XOR, m=k=8, l=8, t=4, no sharing
    let mk = |group, label: String, cfg| Variant { group, label, cfg };
    // Hashing function at t=4, l=8.
    for (h, bits) in [
        (HashKind::Xor, 4),
        (HashKind::Xor, 8),
        (HashKind::Modulo, 4),
        (HashKind::Modulo, 8),
    ] {
        v.push(mk(
            "hash h (t=4, l=8)",
            format!("{}, m=k={}", h.name(), bits),
            DdosConfig {
                hash: h,
                path_bits: bits,
                value_bits: bits,
                ..base
            },
        ));
    }
    // Hash width at XOR.
    for bits in [2u8, 3, 4, 8] {
        v.push(mk(
            "width m=k (t=4, l=8, xor)",
            format!("m=k={bits}"),
            DdosConfig {
                path_bits: bits,
                value_bits: bits,
                ..base
            },
        ));
    }
    // Confidence threshold.
    for t in [2u32, 4, 8, 12] {
        v.push(mk(
            "threshold t (m=k=8, l=8, xor)",
            format!("t={t}"),
            DdosConfig {
                confidence: t,
                ..base
            },
        ));
    }
    // History length.
    for l in [1usize, 2, 4, 8] {
        v.push(mk(
            "history length l (t=4, m=k=8, xor)",
            format!("l={l}"),
            DdosConfig {
                history_len: l,
                ..base
            },
        ));
    }
    // Time sharing.
    for (sh, bits) in [(false, 8u8), (true, 4), (true, 8)] {
        v.push(mk(
            "time sharing (l=8, t=4, xor, epoch=1000)",
            format!("sh={}, m=k={}", u8::from(sh), bits),
            DdosConfig {
                path_bits: bits,
                value_bits: bits,
                time_share_epoch: sh.then_some(1000),
                ..base
            },
        ));
    }
    v
}

#[derive(Default, Clone, Copy)]
struct Acc {
    tsdr_sum: f64,
    tsdr_n: usize,
    fsdr_sum: f64,
    fsdr_n: usize,
    dpr_true_sum: f64,
    dpr_true_n: usize,
    dpr_false_sum: f64,
    dpr_false_n: usize,
}

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    let vars = variants();
    println!(
        "Table I: DDOS sensitivity ({} configurations observed passively)\n",
        vars.len()
    );

    let mut acc = vec![Acc::default(); vars.len()];
    let mut workload_list: Vec<(Box<dyn Workload>, bool)> = Vec::new();
    for w in sync_suite(opts.scale) {
        workload_list.push((w, true));
    }
    for w in rodinia_suite(opts.scale) {
        workload_list.push((w, false));
    }

    // One harness cell per workload: every DDOS variant observes that
    // workload's single execution through the fan-out detector, so the
    // whole table still costs one simulation per workload.
    let det_cfgs: Vec<DdosConfig> = vars.iter().map(|v| v.cfg).collect();
    let cell_results = grid::parallel_map(&workload_list, |_, (w, _)| {
        let sink: Sink = Arc::new(Mutex::new(HashMap::new()));
        let warps = cfg.warps_per_sm();
        let sink_for_factory = Arc::clone(&sink);
        let det_cfgs = &det_cfgs;
        let mut gpu = Gpu::new(cfg.clone());
        let prepared = w.prepare(&mut gpu);
        let rotate = cfg.gto_rotate_period;
        let mut stages_meta = Vec::new();
        for stage in &prepared.stages {
            let report = gpu
                .run(
                    &stage.kernel,
                    &stage.launch,
                    &move || BasePolicy::Gto.build(rotate),
                    &|_k| {
                        Box::new(FanOut {
                            dets: det_cfgs.iter().map(|&c| Ddos::new(c, warps)).collect(),
                            sink: Arc::clone(&sink_for_factory),
                        })
                    },
                )
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            stages_meta.push((
                stage.kernel.true_sibs.clone(),
                stage.kernel.backward_branches(),
                report,
            ));
        }
        let verify_err = (prepared.verify)(&gpu).err();
        let confirmed = sink.lock().expect("sink lock").clone();
        (stages_meta, confirmed, verify_err)
    });

    for ((w, is_sync), (stages_meta, confirmed, verify_err)) in
        workload_list.iter().zip(&cell_results)
    {
        if let Some(e) = verify_err {
            eprintln!("WARNING: {} failed verification: {e}", w.name());
        }
        for (i, a) in acc.iter_mut().enumerate() {
            for (true_sibs, backs, report) in stages_meta {
                for &pc in backs {
                    let Some(tl) = report.branch_log.get(pc) else {
                        continue;
                    };
                    let hit = confirmed.get(&(i, pc));
                    let lifetime = (tl.last - tl.first).max(1) as f64;
                    if true_sibs.contains(&pc) {
                        if *is_sync {
                            a.tsdr_n += 1;
                            if let Some(&at) = hit {
                                a.tsdr_sum += 1.0;
                                a.dpr_true_sum +=
                                    (at.saturating_sub(tl.first) as f64 / lifetime).min(1.0);
                                a.dpr_true_n += 1;
                            }
                        }
                    } else {
                        a.fsdr_n += 1;
                        if let Some(&at) = hit {
                            a.fsdr_sum += 1.0;
                            a.dpr_false_sum +=
                                (at.saturating_sub(tl.first) as f64 / lifetime).min(1.0);
                            a.dpr_false_n += 1;
                        }
                    }
                }
            }
        }
    }

    let mut t = Table::new(&[
        "sweep",
        "config",
        "avg_TSDR",
        "avg_DPR(true)",
        "avg_FSDR",
        "avg_DPR(false)",
    ]);
    for (v, a) in vars.iter().zip(&acc) {
        let div = |s: f64, n: usize| if n == 0 { 0.0 } else { s / n as f64 };
        t.row(vec![
            v.group.to_string(),
            v.label.clone(),
            pct(div(a.tsdr_sum, a.tsdr_n)),
            r3(div(a.dpr_true_sum, a.dpr_true_n)),
            pct(div(a.fsdr_sum, a.fsdr_n)),
            r3(div(a.dpr_false_sum, a.dpr_false_n)),
        ]);
    }
    t.emit(&opts);
    println!(
        "Paper reference: XOR m=k=8 reaches TSDR=100% with FSDR=0%; MODULO\n\
         hashing false-detects (MS/HL); l<=2 detects nothing; larger t\n\
         lowers FSDR but lengthens the detection phase."
    );
}
