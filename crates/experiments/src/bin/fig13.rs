//! Figure 13: BOWS's impact on dynamic overheads across the delay sweep —
//! (a) dynamic instruction count, (b) memory transactions, (c) SIMD
//! efficiency (all relative to GTO).
//!
//! Paper reference points: 2.1x fewer dynamic instructions and 19% fewer
//! memory transactions on average; HT/ATM SIMD efficiency up 3.4x / 1.85x.

use experiments::{pct, r3, Opts, Table};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    println!("Figure 13: dynamic overheads vs back-off delay (normalized to GTO)\n");
    let (labels, results) = experiments::delay_sweep(&cfg, opts.scale);
    let mut header = vec!["kernel", "metric"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(&header);
    let mut geo_inst = vec![0.0f64; labels.len()];
    let mut geo_mem = vec![0.0f64; labels.len()];
    for (name, runs) in &results {
        let base_inst = runs[0].sim.thread_inst.max(1) as f64;
        let base_mem = runs[0].mem.total_transactions.max(1) as f64;
        let mut row = vec![name.clone(), "inst".to_string()];
        for (i, r) in runs.iter().enumerate() {
            let v = r.sim.thread_inst as f64 / base_inst;
            geo_inst[i] += v.ln();
            row.push(r3(v));
        }
        t.row(row);
        let mut row = vec![name.clone(), "mem_tx".to_string()];
        for (i, r) in runs.iter().enumerate() {
            let v = r.mem.total_transactions as f64 / base_mem;
            geo_mem[i] += v.ln();
            row.push(r3(v));
        }
        t.row(row);
        let mut row = vec![name.clone(), "simd_eff".to_string()];
        for r in runs {
            row.push(pct(r.sim.simd_efficiency()));
        }
        t.row(row);
    }
    let n = results.len() as f64;
    let mut row = vec!["Gmean".to_string(), "inst".to_string()];
    row.extend(geo_inst.iter().map(|&x| r3((x / n).exp())));
    t.row(row);
    let mut row = vec!["Gmean".to_string(), "mem_tx".to_string()];
    row.extend(geo_mem.iter().map(|&x| r3((x / n).exp())));
    t.row(row);
    t.emit(&opts);
}
