//! Combined regenerator for Figures 10–13: runs the back-off delay sweep
//! once and prints all four figures' tables (each figure also has its own
//! standalone binary; this one exists so a full-suite run does not repeat
//! the most expensive sweep four times).

use experiments::{pct, r3, Opts, Table};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    let (labels, results) = experiments::delay_sweep(&cfg, opts.scale);
    let n = results.len() as f64;
    let mut header = vec!["kernel"];
    header.extend(labels.iter().map(String::as_str));

    // ---- Figure 10: normalized execution time ----
    println!("Figure 10: execution time vs back-off delay limit (normalized to GTO)\n");
    let mut t = Table::new(&header);
    let mut geo = vec![0.0f64; labels.len()];
    for (name, runs) in &results {
        let base = runs[0].cycles.max(1) as f64;
        let mut row = vec![name.clone()];
        for (i, r) in runs.iter().enumerate() {
            let v = r.cycles as f64 / base;
            geo[i] += v.ln();
            row.push(r3(v));
        }
        t.row(row);
    }
    let mut row = vec!["Gmean".to_string()];
    row.extend(geo.iter().map(|&x| r3((x / n).exp())));
    t.row(row);
    t.emit(&opts);

    // ---- Figure 11: backed-off warp distribution ----
    println!("Figure 11: fraction of resident warps in the backed-off state\n");
    let mut t = Table::new(&header);
    for (name, runs) in &results {
        let mut row = vec![name.clone()];
        for r in runs {
            row.push(pct(r.sim.backed_off_fraction()));
        }
        t.row(row);
    }
    t.emit(&opts);

    // ---- Figure 12: lock/wait outcomes ----
    println!(
        "Figure 12: lock/wait outcomes, normalized to the GTO baseline's\n\
         total attempts\n"
    );
    let mut header12 = vec!["kernel", "outcome"];
    header12.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(&header12);
    for (name, runs) in &results {
        let norm = (runs[0].mem.lock_success
            + runs[0].mem.lock_inter_fail
            + runs[0].mem.lock_intra_fail
            + runs[0].sim.wait_exit_success
            + runs[0].sim.wait_exit_fail)
            .max(1) as f64;
        for (label, sel) in [
            ("success", 0usize),
            ("inter_fail", 1),
            ("intra_fail", 2),
            ("wait_ok", 3),
            ("wait_fail", 4),
        ] {
            let mut row = vec![name.clone(), label.to_string()];
            for r in runs {
                let v = match sel {
                    0 => r.mem.lock_success,
                    1 => r.mem.lock_inter_fail,
                    2 => r.mem.lock_intra_fail,
                    3 => r.sim.wait_exit_success,
                    _ => r.sim.wait_exit_fail,
                };
                row.push(r3(v as f64 / norm));
            }
            t.row(row);
        }
    }
    t.emit(&opts);

    // ---- Figure 13: dynamic overheads ----
    println!("Figure 13: dynamic overheads vs back-off delay (normalized to GTO)\n");
    let mut t = Table::new(&header12);
    let mut geo_inst = vec![0.0f64; labels.len()];
    let mut geo_mem = vec![0.0f64; labels.len()];
    for (name, runs) in &results {
        let base_inst = runs[0].sim.thread_inst.max(1) as f64;
        let base_mem = runs[0].mem.total_transactions.max(1) as f64;
        let mut row = vec![name.clone(), "inst".to_string()];
        for (i, r) in runs.iter().enumerate() {
            let v = r.sim.thread_inst as f64 / base_inst;
            geo_inst[i] += v.ln();
            row.push(r3(v));
        }
        t.row(row);
        let mut row = vec![name.clone(), "mem_tx".to_string()];
        for (i, r) in runs.iter().enumerate() {
            let v = r.mem.total_transactions as f64 / base_mem;
            geo_mem[i] += v.ln();
            row.push(r3(v));
        }
        t.row(row);
        let mut row = vec![name.clone(), "simd_eff".to_string()];
        for r in runs {
            row.push(pct(r.sim.simd_efficiency()));
        }
        t.row(row);
    }
    let mut row = vec!["Gmean".to_string(), "inst".to_string()];
    row.extend(geo_inst.iter().map(|&x| r3((x / n).exp())));
    t.row(row);
    let mut row = vec!["Gmean".to_string(), "mem_tx".to_string()];
    row.extend(geo_mem.iter().map(|&x| r3((x / n).exp())));
    t.row(row);
    t.emit(&opts);
}
