//! Figure 14: overheads due to DDOS detection errors. Under MODULO hashing
//! (k = 8), Merge Sort and Heart Wall's power-of-two loop strides alias to
//! constants and are falsely detected as spin loops; BOWS then throttles
//! innocent loops. XOR hashing has no false detections, so results are
//! identical to the baseline.

use bows::{DdosConfig, DelayMode, HashKind};
use experiments::{r3, run_suite_grid, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::rodinia_suite;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    println!(
        "Figure 14: sync-free kernels under BOWS with MODULO hashing\n\
         (execution time normalized to GTO; 1.000 means unaffected)\n"
    );
    let delays: &[u64] = &[0, 500, 1000, 3000, 5000];
    let mut header = vec!["kernel".to_string(), "falsely_detected".to_string()];
    header.extend(delays.iter().map(|d| format!("bows({d})")));
    header.push("bows(5000)+xor".to_string());
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr);
    let mut geo = vec![0.0f64; delays.len()];
    let mut n = 0usize;
    // Per-workload config row: GTO baseline, the MODULO-hashing delay
    // sweep, and the XOR control at the largest delay (must be exactly 1.0).
    let mut scheds = vec![SchedConfig::baseline(BasePolicy::Gto)];
    for &d in delays {
        let mut sc = SchedConfig::bows(BasePolicy::Gto, DelayMode::Fixed(d));
        sc.ddos = DdosConfig {
            hash: HashKind::Modulo,
            ..DdosConfig::default()
        };
        scheds.push(sc);
    }
    scheds.push(SchedConfig::bows(BasePolicy::Gto, DelayMode::Fixed(5000)));
    let suite = rodinia_suite(opts.scale);
    for row_results in run_suite_grid(&cfg, &suite, &scheds) {
        let base = &row_results[0];
        let base_cycles = base.cycles.max(1) as f64;
        let mut row = vec![base.name.clone()];
        let mut detected = false;
        let mut cells = Vec::new();
        for (i, r) in row_results[1..=delays.len()].iter().enumerate() {
            detected |= r.stages.iter().any(|s| !s.report.confirmed_sibs.is_empty());
            let v = r.cycles as f64 / base_cycles;
            geo[i] += v.ln();
            cells.push(r3(v));
        }
        n += 1;
        row.push(if detected { "yes" } else { "no" }.to_string());
        row.extend(cells);
        let xor = &row_results[delays.len() + 1];
        row.push(r3(xor.cycles as f64 / base_cycles));
        t.row(row);
    }
    let mut row = vec!["Gmean".to_string(), "-".to_string()];
    row.extend(geo.iter().map(|&x| r3((x / n as f64).exp())));
    row.push("1.000".to_string());
    t.row(row);
    t.emit(&opts);
    println!(
        "Paper's shape: only MS and HL are falsely detected; the slowdown\n\
         grows with the delay limit, and the 14-kernel mean stays small\n\
         (paper: ~2.1% at 5000 cycles)."
    );
}
