//! Figure 12: lock-acquire / wait outcome distribution across the back-off
//! delay sweep (GTO baseline).

use experiments::{r3, Opts, Table};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    println!(
        "Figure 12: lock/wait outcomes per config, normalized to the GTO\n\
         baseline's total attempts (success stays constant; failures shrink)\n"
    );
    let (labels, results) = experiments::delay_sweep(&cfg, opts.scale);
    let mut header = vec!["kernel", "outcome"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(&header);
    for (name, runs) in &results {
        let norm = (runs[0].mem.lock_success
            + runs[0].mem.lock_inter_fail
            + runs[0].mem.lock_intra_fail
            + runs[0].sim.wait_exit_success
            + runs[0].sim.wait_exit_fail)
            .max(1) as f64;
        for (label, get) in [
            ("success", 0usize),
            ("inter_fail", 1),
            ("intra_fail", 2),
            ("wait_ok", 3),
            ("wait_fail", 4),
        ] {
            let mut row = vec![name.clone(), label.to_string()];
            for r in runs {
                let v = match get {
                    0 => r.mem.lock_success,
                    1 => r.mem.lock_inter_fail,
                    2 => r.mem.lock_intra_fail,
                    3 => r.sim.wait_exit_success,
                    _ => r.sim.wait_exit_fail,
                };
                row.push(r3(v as f64 / norm));
            }
            t.row(row);
        }
    }
    t.emit(&opts);
}
