//! `differ`: the differential correctness oracle CLI.
//!
//! Sweeps the full workload corpus (8 sync + 14 Rodinia analogs) through
//! both engines — the cycle-level simulator and the functional reference
//! interpreter — across a {scheduler × BOWS × DDOS hash × chaos} matrix,
//! then re-judges every committed fixture under `tests/fixtures/differential`
//! against its `expect` directive.
//!
//! Exits 0 when the corpus agrees everywhere and every fixture reproduces
//! its expected divergence; 1 otherwise (CI gates on it); 2 on usage
//! errors.

use experiments::differ::{check_suite, matrix, DifferCell, DEFAULT_FUEL};
use experiments::fixture::check_fixture;
use experiments::{grid, Table};
use simt_core::GpuConfig;
use std::process::ExitCode;
use workloads::Scale;

const USAGE: &str = "flags: --scale tiny|small|full   --matrix small|full   --jobs <n>   \
--fuel <n>   --timeout-cycles <n>   --fixtures <dir>   --no-fixtures";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Args {
    scale: Scale,
    full_matrix: bool,
    fuel: u64,
    timeout_cycles: Option<u64>,
    fixtures: Option<String>,
    run_fixtures: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: Scale::Tiny,
        full_matrix: false,
        fuel: DEFAULT_FUEL,
        timeout_cycles: None,
        fixtures: None,
        run_fixtures: true,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                a.scale = match value(&mut args, "--scale").as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => usage_error(&format!("unknown scale `{other}`")),
                }
            }
            "--matrix" => {
                a.full_matrix = match value(&mut args, "--matrix").as_str() {
                    "full" => true,
                    "small" => false,
                    other => usage_error(&format!("unknown matrix `{other}`")),
                }
            }
            "--jobs" => {
                let v = value(&mut args, "--jobs");
                grid::set_jobs(v.parse().unwrap_or_else(|_| usage_error("bad --jobs")));
            }
            "--fuel" => {
                a.fuel = value(&mut args, "--fuel")
                    .parse()
                    .unwrap_or_else(|_| usage_error("bad --fuel"));
            }
            "--timeout-cycles" => {
                let v = value(&mut args, "--timeout-cycles");
                a.timeout_cycles =
                    Some(v.parse().unwrap_or_else(|_| usage_error("bad --timeout-cycles")));
            }
            "--fixtures" => a.fixtures = Some(value(&mut args, "--fixtures")),
            "--no-fixtures" => a.run_fixtures = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    a
}

fn base_config(scale: Scale, timeout_cycles: Option<u64>) -> GpuConfig {
    let mut cfg = match scale {
        Scale::Tiny => GpuConfig::test_tiny(),
        _ => GpuConfig::gtx480(),
    };
    if let Some(t) = timeout_cycles {
        cfg.max_cycles = t;
    }
    cfg
}

fn run_fixtures(cfg: &GpuConfig, dir: &str, fuel: u64) -> Result<usize, usize> {
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "s"))
            .collect(),
        Err(e) => {
            eprintln!("differ: cannot read fixture dir {dir}: {e}");
            return Err(0);
        }
    };
    entries.sort();
    let mut t = Table::new(&["fixture", "expect", "observed", "status"]);
    let mut failed = 0usize;
    for path in &entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("differ: {}: {e}", path.display());
                failed += 1;
                continue;
            }
        };
        match check_fixture(cfg, &name, &src, fuel) {
            Ok(out) => {
                let observed = out
                    .reports
                    .first()
                    .map_or("agree", |r| r.divergence.kind())
                    .to_string();
                let status = match out.verdict() {
                    Ok(()) => "ok".to_string(),
                    Err(e) => {
                        failed += 1;
                        format!("FAIL: {e}")
                    }
                };
                t.row(vec![name, out.fixture.expect.clone(), observed, status]);
            }
            Err(e) => {
                failed += 1;
                t.row(vec![name, "-".into(), "-".into(), format!("FAIL: {e}")]);
            }
        }
    }
    println!("{}", t.text());
    if failed == 0 { Ok(entries.len()) } else { Err(failed) }
}

fn main() -> ExitCode {
    let args = parse_args();
    let cfg = base_config(args.scale, args.timeout_cycles);
    let cells: Vec<DifferCell> = matrix(args.full_matrix);

    let mut suite = workloads::sync_suite(args.scale);
    suite.extend(workloads::rodinia_suite(args.scale));
    println!(
        "differ: {} workloads x {} cells on {} (fuel {})",
        suite.len(),
        cells.len(),
        cfg.name,
        args.fuel
    );
    let reports = check_suite(&cfg, &suite, &cells, args.fuel);
    let mut failed = !reports.is_empty();
    if reports.is_empty() {
        println!("corpus: engines agree on all {} runs\n", suite.len() * cells.len());
    } else {
        println!("corpus: {} divergence(s):", reports.len());
        for r in &reports {
            println!("  {r}");
        }
        println!();
    }

    if args.run_fixtures {
        let dir = args
            .fixtures
            .clone()
            .unwrap_or_else(|| "tests/fixtures/differential".to_string());
        if std::path::Path::new(&dir).is_dir() || args.fixtures.is_some() {
            // Fixtures encode residency-limit expectations against the
            // test_tiny machine; they do not scale with --scale.
            match run_fixtures(&GpuConfig::test_tiny(), &dir, args.fuel) {
                Ok(n) => println!("fixtures: {n} reproduced their expected divergence"),
                Err(n) => {
                    println!("fixtures: {n} FAILED");
                    failed = true;
                }
            }
        } else {
            println!("fixtures: directory {dir} not found, skipped");
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
