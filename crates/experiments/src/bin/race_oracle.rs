//! `race_oracle`: cross-validate the static race/deadlock analyzer
//! against the reference interpreter's happens-before checker.
//!
//! Three legs, joined the way the SIB `oracle` binary joins static
//! classification against DDOS confirmations:
//!
//! * **Precision** — every kernel of the 22-kernel paper corpus must lint
//!   completely clean (no errors *and* no warnings: the corpus is the
//!   analyzer's false-positive budget, and it is zero), and a traced
//!   reference run of every workload must observe zero dynamic races.
//! * **Recall** — for each seed, the planted-defect mutants
//!   ([`experiments::mutants`]) must each report their expected
//!   error-severity lint, while their un-mutated base kernels lint clean.
//! * **Dynamic agreement** — the happens-before checker must agree with
//!   every dynamic-race verdict: hoisted-publish mutants race dynamically
//!   on the flag word named by the static witness, dropped-release
//!   mutants hang (fuel exhaustion), order-swapped mutants and all base
//!   kernels run to completion with zero observations.
//!
//! Exits 2 on any false positive, missed mutant, or static/dynamic
//! disagreement, so CI can gate on it.

use experiments::mutants::{sync_mutant, Mutation, SyncMutant};
use experiments::{pct, Opts, Table};
use simt_analyze::{analyze_insts, AnalyzeExt, LintKind, Severity, Witness};
use simt_core::{Gpu, GpuConfig};
use simt_isa::asm::assemble;
use simt_mem::GlobalMem;
use simt_ref::{run_ref_traced, RefError, RefLaunch, TracedRun, WordKey};
use std::process::ExitCode;
use workloads::Scale;

/// Fuel for runs expected to finish. The mutant kernels are small (≤128
/// threads, two critical sections) — this is far above their worst case.
const RUN_FUEL: u64 = 1 << 24;
/// Fuel for runs expected to hang: a dropped release deadlocks every
/// remaining thread deterministically, so any generous budget suffices.
const HANG_FUEL: u64 = 1 << 21;

fn seeds_for(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 3,
        Scale::Small => 6,
        Scale::Full => 12,
    }
}

/// Run `src` on the traced reference with the standard mutant memory
/// layout: four words — lock A, lock B, data, flag — passed as params.
fn run_mutant_kernel(src: &str, tpc: usize, fuel: u64) -> (TracedRun, u64, [u64; 4]) {
    let kernel = assemble(src).expect("mutant assembles");
    let mut gmem = GlobalMem::new();
    let base = gmem.alloc(16);
    let words = [base, base + 4, base + 8, base + 12];
    let params: Vec<u32> = words.iter().map(|&w| w as u32).collect();
    let launch = RefLaunch {
        grid_ctas: 1,
        threads_per_cta: tpc,
        params: &params,
    };
    (run_ref_traced(&kernel, &launch, gmem, fuel), base, words)
}

struct Leg {
    name: &'static str,
    checked: usize,
    failures: usize,
}

impl Leg {
    fn new(name: &'static str) -> Leg {
        Leg {
            name,
            checked: 0,
            failures: 0,
        }
    }

    fn check(&mut self, ok: bool, what: &str) {
        self.checked += 1;
        if !ok {
            self.failures += 1;
            println!("FAIL [{}] {what}", self.name);
        }
    }
}

/// Leg 1: the paper corpus is the zero-false-positive budget, statically
/// and dynamically.
fn corpus_precision(opts: &Opts) -> Leg {
    let mut leg = Leg::new("corpus-precision");
    let cfg = GpuConfig::test_tiny();
    let mut suite = workloads::sync_suite(opts.scale);
    suite.extend(workloads::rodinia_suite(opts.scale));
    for w in &suite {
        let mut gpu = Gpu::new(cfg.clone());
        let prepared = w.prepare(&mut gpu);
        for stage in &prepared.stages {
            let analysis = stage.kernel.analyze();
            leg.check(
                analysis.diagnostics.is_empty(),
                &format!(
                    "{}/{}: static diagnostics on clean corpus: {:?}",
                    w.name(),
                    stage.kernel.name,
                    analysis.diagnostics
                ),
            );
        }
        // Dynamic leg: trace every stage of the workload in sequence.
        let plan = workloads::reference_plan(&cfg, w.as_ref());
        let mut gmem = plan.initial_gmem;
        for stage in &plan.stages {
            let launch = RefLaunch {
                grid_ctas: stage.launch.grid_ctas,
                threads_per_cta: stage.launch.threads_per_cta,
                params: &stage.launch.params,
            };
            let traced = run_ref_traced(&stage.kernel, &launch, gmem, experiments::differ::DEFAULT_FUEL);
            leg.check(
                traced.races.is_empty(),
                &format!(
                    "{}/{}: dynamic races on clean corpus: {:?}",
                    w.name(),
                    stage.kernel.name,
                    traced.races
                ),
            );
            match traced.outcome {
                Ok(out) => gmem = out.gmem,
                Err(e) => {
                    leg.check(false, &format!("{}: reference run failed: {e:?}", w.name()));
                    break;
                }
            }
        }
    }
    leg
}

/// The static verdict on a mutant: does the expected lint fire at error
/// severity, and what does its witness point at?
fn static_verdict(m: &SyncMutant) -> (bool, Option<String>) {
    let kernel = assemble(&m.mutated).expect("mutant assembles");
    let analysis = analyze_insts(&kernel.insts);
    let hit = analysis.diagnostics.iter().find(|d| {
        d.severity == Severity::Error && d.kind.name() == m.mutation.expected_lint()
    });
    let location = hit.and_then(|d| match &d.witness {
        Some(Witness::Race { location, .. }) => Some(location.clone()),
        _ => None,
    });
    (hit.is_some(), location)
}

fn main() -> ExitCode {
    let opts = Opts::parse();
    println!("race_oracle: static race/deadlock verdicts vs happens-before observations\n");

    let mut legs = vec![corpus_precision(&opts)];
    let mut recall = Leg::new("mutant-recall");
    let mut agree = Leg::new("dynamic-agreement");

    let mut t = Table::new(&[
        "seed", "mutation", "expected", "static", "dynamic", "agree",
    ]);
    for seed in 0..seeds_for(opts.scale) {
        // The base kernel is shared by all three mutations of a seed:
        // statically clean, runs to completion, zero observations, and the
        // data/flag words land on their single-schedule values.
        let b = sync_mutant(seed, Mutation::HoistStore);
        let base_kernel = assemble(&b.base).expect("base assembles");
        recall.check(
            analyze_insts(&base_kernel.insts).diagnostics.is_empty(),
            &format!("seed {seed}: base kernel not lint-clean"),
        );
        let (run, _, words) = run_mutant_kernel(&b.base, b.threads_per_cta, RUN_FUEL);
        let clean_end = match run.outcome {
            Ok(out) => {
                let data = out.gmem.read_u32(words[2]);
                let flag = out.gmem.read_u32(words[3]);
                data == b.expected_data && flag == b.flag_value
            }
            Err(_) => false,
        };
        agree.check(
            clean_end && run.races.is_empty(),
            &format!("seed {seed}: base kernel must run clean (races {:?})", run.races),
        );

        for mu in Mutation::ALL {
            let m = sync_mutant(seed, mu);
            let (hit, witness_loc) = static_verdict(&m);
            recall.check(
                hit,
                &format!("seed {seed} {}: expected lint {} missing", mu.name(), m.mutation.expected_lint()),
            );

            let fuel = if mu.expects_hang() { HANG_FUEL } else { RUN_FUEL };
            let (run, _, words) = run_mutant_kernel(&m.mutated, m.threads_per_cta, fuel);
            let flag_word = WordKey::Global(words[3]);
            let (dynamic, ok) = if mu.expects_hang() {
                (
                    "hang".to_string(),
                    matches!(run.outcome, Err(RefError::Fuel { .. })) && run.races.is_empty(),
                )
            } else if mu.expects_dynamic_race() {
                // Every observation must be on the flag word the static
                // witness names (param[12] resolves to words[3]).
                let on_flag =
                    !run.races.is_empty() && run.races.iter().all(|r| r.word == flag_word);
                let witness_names_flag = witness_loc.as_deref() == Some("param[12]");
                (
                    format!("{} race(s)", run.races.len()),
                    run.outcome.is_ok() && on_flag && witness_names_flag,
                )
            } else {
                (
                    "clean".to_string(),
                    run.outcome.is_ok() && run.races.is_empty(),
                )
            };
            agree.check(ok, &format!("seed {seed} {}: dynamic verdict disagrees ({dynamic})", mu.name()));

            t.row(vec![
                seed.to_string(),
                mu.name().to_string(),
                m.mutation.expected_lint().to_string(),
                if hit { "hit" } else { "MISS" }.to_string(),
                dynamic,
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.emit(&opts);
    legs.push(recall);
    legs.push(agree);

    println!();
    let mut sum = Table::new(&["leg", "checked", "failures", "pass"]);
    let mut failures = 0;
    for leg in &legs {
        failures += leg.failures;
        sum.row(vec![
            leg.name.to_string(),
            leg.checked.to_string(),
            leg.failures.to_string(),
            pct(1.0 - leg.failures as f64 / leg.checked.max(1) as f64),
        ]);
    }
    sum.emit(&opts);

    // Quiet-but-load-bearing: the lint names asserted above must stay in
    // sync with the analyzer's vocabulary.
    assert_eq!(LintKind::RaceUnlocked.name(), "data-race");

    if failures > 0 {
        println!("\nrace_oracle: {failures} failure(s)");
        ExitCode::from(2)
    } else {
        println!("\nrace_oracle: all verdicts agree");
        ExitCode::SUCCESS
    }
}
