//! Figure 11: average distribution of warps at the scheduler — backed-off
//! vs not — across the back-off delay sweep.

use experiments::{pct, Opts, Table};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    println!("Figure 11: fraction of resident warps in the backed-off state\n");
    let (labels, results) = experiments::delay_sweep(&cfg, opts.scale);
    let mut header = vec!["kernel"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(&header);
    for (name, runs) in &results {
        let mut row = vec![name.clone()];
        for r in runs {
            row.push(pct(r.sim.backed_off_fraction()));
        }
        t.row(row);
    }
    t.emit(&opts);
    println!(
        "Paper's shape: 0% without BOWS; the backed-off share grows with the\n\
         delay limit once it exceeds each kernel's natural iteration gap."
    );
}
