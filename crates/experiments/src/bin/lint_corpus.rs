//! `lint_corpus`: run the `simt-analyze` lints over every kernel of the
//! workload corpus (8 sync + 14 Rodinia workloads, as prepared at Tiny
//! scale) and check the static spin classification against the `!sib`
//! annotations.
//!
//! The workload kernels live as assembler text inside the `workloads`
//! crate, so unlike `bows-run --lint` (which lints a kernel *file*) this
//! binary prepares each workload and lints the assembled result. Exits 2
//! when any error-severity diagnostic fires or any kernel's static spin
//! set disagrees with its annotations — CI runs this to keep the corpus
//! clean and the classifier honest.

use experiments::Opts;
use simt_analyze::AnalyzeExt;
use simt_core::{Gpu, GpuConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = Opts::parse();
    let cfg = GpuConfig::test_tiny();
    let mut kernels = 0usize;
    let mut failures = 0usize;
    let mut suite = workloads::sync_suite(opts.scale);
    suite.extend(workloads::rodinia_suite(opts.scale));
    for w in &suite {
        let mut gpu = Gpu::new(cfg.clone());
        let prepared = w.prepare(&mut gpu);
        for stage in &prepared.stages {
            kernels += 1;
            let analysis = stage.kernel.analyze();
            for d in &analysis.diagnostics {
                println!("{}/{}: {d}", w.name(), stage.kernel.name);
            }
            if analysis.has_errors() {
                failures += 1;
                continue;
            }
            if analysis.sib_pcs() != stage.kernel.true_sibs {
                println!(
                    "{}/{}: static spin set {:?} != annotated {:?}",
                    w.name(),
                    stage.kernel.name,
                    analysis.sib_pcs(),
                    stage.kernel.true_sibs
                );
                failures += 1;
            }
        }
    }
    println!("linted {kernels} kernels across {} workloads: {failures} failing", suite.len());
    if failures > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
