//! Table III: implementation cost of DDOS and BOWS, derived from the
//! configuration (bit-accurate against the paper's reference numbers).
//! The body lives in [`experiments::table3_report`] so the determinism
//! suite can compare serial and parallel output byte for byte.

use experiments::Opts;

fn main() {
    let opts = Opts::parse();
    println!("Table III: DDOS and BOWS implementation costs per SM\n");
    print!("{}", experiments::table3_report(opts.csv));
}
