//! Table III: implementation cost of DDOS and BOWS, derived from the
//! configuration (bit-accurate against the paper's reference numbers).

use bows::{DdosConfig, ImplementationCost};
use experiments::{Opts, Table};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    println!("Table III: DDOS and BOWS implementation costs per SM\n");
    for cfg in [GpuConfig::gtx480(), GpuConfig::gtx1080ti()] {
        let warps = cfg.warps_per_sm() as u64;
        let mut ddos = DdosConfig::default();
        println!("{} ({} warps/SM):", cfg.name, warps);
        let mut t = Table::new(&["component", "bits", "notes"]);
        let c = ImplementationCost::per_sm(&ddos, warps);
        t.row(vec![
            "SIB-PT".into(),
            c.sibpt_bits.to_string(),
            format!("{} entries x 35 bits", ddos.sibpt_entries),
        ]);
        t.row(vec![
            "history registers".into(),
            c.history_bits.to_string(),
            format!("{} warps x {} bits", warps, ddos.history_bits_per_warp()),
        ]);
        t.row(vec![
            "detector FSM".into(),
            c.fsm_bits.to_string(),
            format!("{warps} x 4-state FSM"),
        ]);
        t.row(vec![
            "pending delay counters".into(),
            c.delay_counter_bits.to_string(),
            format!("{warps} x 14 bits (delays to 10000)"),
        ]);
        t.row(vec![
            "backed-off queue".into(),
            c.backed_off_queue_bits.to_string(),
            format!("{warps} x 5 bits"),
        ]);
        t.row(vec![
            "TOTAL".into(),
            c.total_bits().to_string(),
            format!("{} bytes", c.total_bytes()),
        ]);
        t.emit(&opts);
        // The cost-reduction option the paper mentions: time sharing.
        ddos.time_share_epoch = Some(1000);
        let shared = ImplementationCost::per_sm(&ddos, warps);
        println!(
            "with time-shared history registers: {} bits total ({} bytes)\n",
            shared.total_bits(),
            shared.total_bytes()
        );
    }
}
