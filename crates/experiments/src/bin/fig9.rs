//! Figure 9: normalized execution time and dynamic energy on the GTX480
//! (Fermi) for LRR/GTO/CAWA with and without BOWS (adaptive delay, DDOS).
//!
//! Paper reference points: BOWS speedups of 2.2x / 1.4x / 1.5x and energy
//! savings of 2.3x / 1.7x / 1.6x over LRR / GTO / CAWA respectively.

use experiments::{perf_energy_figure, Opts};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    perf_energy_figure(&GpuConfig::gtx480(), &opts, "Figure 9");
}
