//! Figure 10: normalized execution time at different back-off delay limit
//! values (GTO baseline; BOWS with DDOS at 0/500/1000/3000/5000/adaptive).

use experiments::{r3, Opts, Table};
use simt_core::GpuConfig;

fn main() {
    let opts = Opts::parse();
    let cfg = GpuConfig::gtx480();
    println!("Figure 10: execution time vs back-off delay limit (normalized to GTO)\n");
    let (labels, results) = experiments::delay_sweep(&cfg, opts.scale);
    let mut header = vec!["kernel"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(&header);
    let mut geo = vec![0.0f64; labels.len()];
    for (name, runs) in &results {
        let base = runs[0].cycles.max(1) as f64;
        let mut row = vec![name.clone()];
        for (i, r) in runs.iter().enumerate() {
            let v = r.cycles as f64 / base;
            geo[i] += v.ln();
            row.push(r3(v));
        }
        t.row(row);
    }
    let mut row = vec!["Gmean".to_string()];
    row.extend(geo.iter().map(|&x| r3((x / results.len() as f64).exp())));
    t.row(row);
    t.emit(&opts);
    println!(
        "Paper's shape: large fixed delays help contended kernels (HT, ATM)\n\
         but hurt TSP; adaptive tracks the best fixed value per kernel."
    );
}
