//! Figure 3: software-only back-off delay (the clock-polling loop of
//! Fig. 3a) on the hashtable — the paper's point is that it does NOT help
//! on recent GPUs because the delay code itself wastes issue slots.

use experiments::{grid, r3, Opts, SchedConfig, Table};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync::{Hashtable, HtMode};
use workloads::Scale;

fn main() {
    let opts = Opts::parse();
    // The paper measured this on a Pascal GTX1080.
    let cfg = GpuConfig::gtx1080ti();
    let (threads, per_thread, tpc) = match opts.scale {
        Scale::Tiny => (1024, 1, 128),
        Scale::Small => (12288, 2, 256),
        Scale::Full => (24576, 4, 256),
    };
    let buckets_sweep: &[u32] = match opts.scale {
        Scale::Tiny => &[32, 512],
        _ => &[128, 512, 2048],
    };
    println!("Figure 3: software back-off delay on the hashtable (Pascal)\n");
    let mut t = Table::new(&[
        "buckets",
        "delay_factor",
        "time_ms",
        "vs_no_delay",
        "thread_inst",
    ]);
    let factors = [0u32, 50, 100, 500, 1000];
    let cells: Vec<(u32, u32)> = buckets_sweep
        .iter()
        .flat_map(|&b| factors.iter().map(move |&f| (b, f)))
        .collect();
    let results = grid::parallel_map(&cells, |_, &(buckets, factor)| {
        let mode = if factor == 0 {
            HtMode::Normal
        } else {
            HtMode::SwBackoff { factor }
        };
        let ht = Hashtable::with_params(threads, per_thread, buckets, tpc).with_mode(mode);
        experiments::run(&cfg, &ht, SchedConfig::baseline(BasePolicy::Gto)).expect("run")
    });
    let mut no_delay_ms = 0.0;
    for (&(buckets, factor), res) in cells.iter().zip(&results) {
        let ms = res.time_ms(&cfg);
        if factor == 0 {
            no_delay_ms = ms;
        }
        t.row(vec![
            buckets.to_string(),
            factor.to_string(),
            r3(ms),
            r3(ms / no_delay_ms),
            res.sim.thread_inst.to_string(),
        ]);
    }
    t.emit(&opts);
    println!(
        "Paper's shape: delay factors >= 50 do not beat no-delay except at\n\
         extreme contention — the delay loop burns the issue slots it saves."
    );
}
