//! `fuzz`: seeded random-kernel fuzzer for the differential oracle.
//!
//! Deterministically generates a window of structured kernels starting at
//! `--seed` (`--scale` picks 500/5 000/20 000 seeds; `--count` overrides
//! exactly), runs each through the reference interpreter and the
//! cycle-level simulator under a seed-derived scheduler/chaos cell, and
//! reports any divergence. Diverging kernels are shrunk to a minimal
//! reproducer; with `--emit <dir>` the shrunken kernel is written as a
//! committable `.s` fixture whose `expect` directive records the observed
//! divergence kind.
//!
//! The whole run is a pure function of `--seed`/`--count`: CI replays the
//! same window on every commit (`fuzz-smoke`). Exits 0 when every kernel
//! agrees, 1 on any divergence, 2 on usage errors.

use experiments::fuzz::{run_seed, shrink, FuzzCase};
use experiments::grid;
use simt_core::GpuConfig;
use std::process::ExitCode;

const USAGE: &str = "flags: --scale tiny|small|full   --seed <n>   --count <n>   --jobs <n>   \
--fuel <n>   --timeout-cycles <n>   --shrink-steps <n>   --emit <dir>";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Args {
    seed: u64,
    count: Option<u64>,
    scale_count: u64,
    fuel: u64,
    timeout_cycles: Option<u64>,
    shrink_steps: usize,
    emit: Option<String>,
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 1,
        count: None,
        scale_count: 500,
        fuel: experiments::differ::DEFAULT_FUEL,
        timeout_cycles: None,
        shrink_steps: 64,
        emit: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} requires a value")))
    };
    macro_rules! num {
        ($args:expr, $flag:literal) => {
            value($args, $flag)
                .parse()
                .unwrap_or_else(|_| usage_error(concat!("bad ", $flag)))
        };
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // The harness always fuzzes on the test_tiny config (generated
            // grids are tiny by construction); scale picks the seed-window
            // size instead. An explicit --count overrides it.
            "--scale" => {
                a.scale_count = match value(&mut args, "--scale").as_str() {
                    "tiny" => 500,
                    "small" => 5_000,
                    "full" => 20_000,
                    other => usage_error(&format!("unknown scale `{other}` (tiny|small|full)")),
                }
            }
            "--seed" => a.seed = num!(&mut args, "--seed"),
            "--count" => a.count = Some(num!(&mut args, "--count")),
            "--jobs" => grid::set_jobs(num!(&mut args, "--jobs")),
            "--fuel" => a.fuel = num!(&mut args, "--fuel"),
            "--timeout-cycles" => a.timeout_cycles = Some(num!(&mut args, "--timeout-cycles")),
            "--shrink-steps" => a.shrink_steps = num!(&mut args, "--shrink-steps"),
            "--emit" => a.emit = Some(value(&mut args, "--emit")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    a
}

/// Render a shrunk diverging case as a committable fixture: the generated
/// source with `expect agree` rewritten to the observed divergence kind
/// and the seed-derived chaos cell (if any) made explicit.
fn fixture_source(case: &FuzzCase) -> String {
    let kind = case
        .reports
        .first()
        .map_or("agree", |r| r.divergence.kind());
    let mut out = String::new();
    for line in case.kernel.source().lines() {
        if line.trim() == ";; differ: expect agree" {
            if let Some((seed, level)) = case.kernel.cell().chaos {
                out.push_str(&format!(";; differ: chaos {seed} {level}\n"));
            }
            out.push_str(&format!(";; differ: expect {kind}\n"));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let count = args.count.unwrap_or(args.scale_count);
    let mut cfg = GpuConfig::test_tiny();
    if let Some(t) = args.timeout_cycles {
        cfg.max_cycles = t;
    }
    println!(
        "fuzz: seeds {}..{} on {} (fuel {})",
        args.seed,
        args.seed + count,
        cfg.name,
        args.fuel
    );

    let seeds: Vec<u64> = (args.seed..args.seed + count).collect();
    let cases = grid::parallel_map(&seeds, |_, &s| run_seed(&cfg, s, args.fuel));
    let rejected = cases.iter().filter(|c| c.is_none()).count();
    let diverging: Vec<&FuzzCase> = cases
        .iter()
        .flatten()
        .filter(|c| !c.reports.is_empty())
        .collect();
    println!(
        "fuzz: {} kernels checked, {} rejected by the lint filter, {} diverging",
        cases.len() - rejected,
        rejected,
        diverging.len()
    );

    for case in &diverging {
        println!("\nseed {} diverged: {}", case.kernel.seed, case.reports[0]);
        let small = shrink(&cfg, case, args.fuel, args.shrink_steps);
        println!(
            "  shrunk to {} nodes, ctas={} tpc={}",
            small.kernel.node_count(),
            small.kernel.ctas,
            small.kernel.tpc
        );
        if let Some(dir) = &args.emit {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("fuzz: cannot create {dir}: {e}");
                return ExitCode::FAILURE;
            }
            let path = format!("{dir}/fuzz_{}.s", small.kernel.seed);
            if let Err(e) = std::fs::write(&path, fixture_source(&small)) {
                eprintln!("fuzz: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("  wrote {path}");
        } else {
            println!("  reproduce with: fuzz --seed {} --count 1", small.kernel.seed);
        }
    }

    if diverging.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
