//! The differential correctness oracle.
//!
//! Runs every corpus workload through two independent engines — the
//! cycle-level simulator (`simt-core`) and the functional reference
//! interpreter (`simt-ref`) — and compares final architectural state:
//!
//! * **Exact** workloads (schedule-independent final memory) are compared
//!   bytewise on global memory; non-sync workloads additionally compare
//!   every thread's final registers, predicates and shared memory.
//! * **Racy** workloads declare [`workloads::Postcond`]s, which both
//!   engines' final memories must satisfy — the *chaos timing-equivalence
//!   invariant*: no legal timing (scheduler choice, BOWS back-off, chaos
//!   fault injection) may break an architectural postcondition.
//!
//! A mismatch produces a structured [`DivergenceReport`]: the first
//! differing address or register, the warp that last wrote it, and the
//! kernel source line of that write.

use crate::{grid, SchedConfig};
use bows::HashKind;
use simt_core::{BasePolicy, GpuConfig, SimError};
use simt_isa::Kernel;
use simt_mem::ChaosConfig;
use simt_ref::{run_ref, RefCta, RefError, RefLaunch, Writer};
use std::collections::HashMap;
use std::fmt;
use workloads::{
    reference_plan, run_workload_captured, CapturedRun, Equivalence, Postcond, Stage, Workload,
};

/// Default reference-interpreter fuel (total instructions across warps).
/// Tiny-scale corpus workloads execute well under a million instructions;
/// this leaves two orders of magnitude of headroom before a livelock is
/// declared.
pub const DEFAULT_FUEL: u64 = 1 << 27;

/// One cell of the differential matrix: a scheduling configuration plus an
/// optional chaos `(seed, level)`.
#[derive(Debug, Clone, Copy)]
pub struct DifferCell {
    /// Scheduler/BOWS/DDOS configuration.
    pub sched: SchedConfig,
    /// Chaos fault injection, if any.
    pub chaos: Option<(u64, u8)>,
}

impl DifferCell {
    /// Human-readable cell label, e.g. `gto+bows(adaptive)/chaos(42,2)`.
    pub fn label(&self) -> String {
        let mut s = self.sched.label();
        if self.sched.force_ddos && matches!(self.sched.ddos.hash, HashKind::Modulo) {
            s.push_str("+ddos(mod)");
        }
        match self.chaos {
            None => s,
            Some((seed, level)) => format!("{s}/chaos({seed},{level})"),
        }
    }

    /// The GPU configuration for this cell: `base` with final-state capture
    /// on and this cell's chaos settings.
    pub fn gpu_config(&self, base: &GpuConfig) -> GpuConfig {
        let mut cfg = base.clone();
        cfg.capture_final_state = true;
        if let Some((seed, level)) = self.chaos {
            cfg.mem.chaos = ChaosConfig::with_level(seed, level);
        }
        cfg
    }
}

/// The chaos `(seed, level)` points the full matrix sweeps (the same seeds
/// as `tests/chaos.rs`, at escalating severity).
pub const CHAOS_POINTS: [(u64, u8); 3] = [(1, 1), (42, 2), (0xDEAD_BEEF, 3)];

/// The differential configuration matrix.
///
/// `full` is the CI acceptance matrix: {GTO, LRR, CAWA} × {BOWS off,
/// BOWS adaptive} × {chaos off, three chaos seed/level points}, plus
/// Modulo-hash DDOS cells — 27 cells. The small matrix is a 7-cell
/// subset for per-commit smoke use.
pub fn matrix(full: bool) -> Vec<DifferCell> {
    let bases = [BasePolicy::Gto, BasePolicy::Lrr, BasePolicy::Cawa];
    let mut cells = Vec::new();
    if full {
        for base in bases {
            for sched in [SchedConfig::baseline(base), SchedConfig::bows_adaptive(base)] {
                cells.push(DifferCell { sched, chaos: None });
                for chaos in CHAOS_POINTS {
                    cells.push(DifferCell {
                        sched,
                        chaos: Some(chaos),
                    });
                }
            }
        }
        // DDOS with the cheaper Modulo hash misclassifies more branches;
        // back-off decisions change, architectural results must not.
        for chaos in [None, Some(CHAOS_POINTS[0]), Some(CHAOS_POINTS[1])] {
            cells.push(DifferCell {
                sched: modulo_ddos(BasePolicy::Gto),
                chaos,
            });
        }
    } else {
        cells.push(DifferCell {
            sched: SchedConfig::baseline(BasePolicy::Gto),
            chaos: None,
        });
        cells.push(DifferCell {
            sched: SchedConfig::bows_adaptive(BasePolicy::Gto),
            chaos: Some(CHAOS_POINTS[1]),
        });
        cells.push(DifferCell {
            sched: SchedConfig::baseline(BasePolicy::Lrr),
            chaos: Some(CHAOS_POINTS[0]),
        });
        cells.push(DifferCell {
            sched: SchedConfig::bows_adaptive(BasePolicy::Cawa),
            chaos: None,
        });
        cells.push(DifferCell {
            sched: SchedConfig::baseline(BasePolicy::Cawa),
            chaos: Some(CHAOS_POINTS[2]),
        });
        cells.push(DifferCell {
            sched: SchedConfig::bows_adaptive(BasePolicy::Lrr),
            chaos: Some(CHAOS_POINTS[2]),
        });
        cells.push(DifferCell {
            sched: modulo_ddos(BasePolicy::Gto),
            chaos: None,
        });
    }
    cells
}

fn modulo_ddos(base: BasePolicy) -> SchedConfig {
    let mut sched = SchedConfig::bows_adaptive(base);
    sched.ddos.hash = HashKind::Modulo;
    sched.force_ddos = true;
    sched
}

/// Which engine a side-specific finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The functional reference interpreter.
    Reference,
    /// The cycle-level simulator.
    Simulator,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Reference => "reference",
            Side::Simulator => "simulator",
        })
    }
}

/// The first observed disagreement between the two engines.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// Final global memory differs at `addr` (lowest differing byte
    /// address). `writer` is the reference's last writer of that word.
    Memory {
        /// Byte address of the first differing word.
        addr: u64,
        /// The reference interpreter's value.
        ref_val: u32,
        /// The simulator's value.
        sim_val: u32,
        /// Stage index and warp that last wrote the word in the reference.
        writer: Option<(usize, Writer)>,
    },
    /// A thread's final register differs.
    Register {
        /// Stage (kernel) index within the workload.
        stage: usize,
        /// Global CTA id.
        cta: usize,
        /// Thread index within the CTA.
        thread: usize,
        /// Register index.
        reg: usize,
        /// The reference interpreter's value.
        ref_val: u32,
        /// The simulator's value.
        sim_val: u32,
    },
    /// A thread's final predicate bitmask differs.
    Predicate {
        /// Stage (kernel) index within the workload.
        stage: usize,
        /// Global CTA id.
        cta: usize,
        /// Thread index within the CTA.
        thread: usize,
        /// The reference interpreter's bitmask.
        ref_val: u8,
        /// The simulator's bitmask.
        sim_val: u8,
    },
    /// A CTA's final shared-memory word differs.
    Shared {
        /// Stage (kernel) index within the workload.
        stage: usize,
        /// Global CTA id.
        cta: usize,
        /// Shared-memory word index.
        word: usize,
        /// The reference interpreter's value.
        ref_val: u32,
        /// The simulator's value.
        sim_val: u32,
    },
    /// A declared postcondition failed on one engine's final memory.
    Postcondition {
        /// The postcondition's name.
        name: String,
        /// Which engine violated it.
        side: Side,
        /// The checker's error message.
        error: String,
    },
    /// The reference interpreter could not complete the workload
    /// (fuel exhaustion = livelock under fair scheduling, or an invariant
    /// violation such as an out-of-bounds access).
    RefFailed {
        /// The reference error, rendered.
        error: String,
    },
    /// The simulator could not complete the workload (watchdog hang,
    /// cycle limit, launch error).
    SimFailed {
        /// The simulator error, rendered.
        error: String,
    },
}

impl Divergence {
    /// Short kind tag, used in tables and fixture expectations.
    pub fn kind(&self) -> &'static str {
        match self {
            Divergence::Memory { .. } => "memory",
            Divergence::Register { .. } => "register",
            Divergence::Predicate { .. } => "predicate",
            Divergence::Shared { .. } => "shared",
            Divergence::Postcondition { .. } => "postcondition",
            Divergence::RefFailed { .. } => "ref-failed",
            Divergence::SimFailed { .. } => "sim-failed",
        }
    }
}

/// A structured mismatch report: what diverged, where, and who wrote it.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Workload (or fixture/fuzz kernel) name.
    pub workload: String,
    /// Matrix-cell label the simulator ran under.
    pub config: String,
    /// The disagreement itself.
    pub divergence: Divergence,
    /// Kernel name owning the divergence site, when attributable.
    pub kernel: Option<String>,
    /// Kernel source line of the last write, when attributable.
    pub line: Option<u32>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: ", self.workload, self.config)?;
        match &self.divergence {
            Divergence::Memory {
                addr,
                ref_val,
                sim_val,
                writer,
            } => {
                write!(
                    f,
                    "memory[{addr:#x}] ref={ref_val:#x} sim={sim_val:#x}"
                )?;
                if let Some((stage, w)) = writer {
                    write!(
                        f,
                        " (last ref writer: stage {stage} cta {} warp {} pc {})",
                        w.cta, w.warp, w.pc
                    )?;
                }
            }
            Divergence::Register {
                stage,
                cta,
                thread,
                reg,
                ref_val,
                sim_val,
            } => write!(
                f,
                "stage {stage} cta {cta} thread {thread} r{reg}: ref={ref_val:#x} sim={sim_val:#x}"
            )?,
            Divergence::Predicate {
                stage,
                cta,
                thread,
                ref_val,
                sim_val,
            } => write!(
                f,
                "stage {stage} cta {cta} thread {thread} preds: ref={ref_val:#x} sim={sim_val:#x}"
            )?,
            Divergence::Shared {
                stage,
                cta,
                word,
                ref_val,
                sim_val,
            } => write!(
                f,
                "stage {stage} cta {cta} shared[{word}]: ref={ref_val:#x} sim={sim_val:#x}"
            )?,
            Divergence::Postcondition { name, side, error } => {
                write!(f, "postcondition `{name}` failed on {side}: {error}")?
            }
            Divergence::RefFailed { error } => write!(f, "reference failed: {error}")?,
            Divergence::SimFailed { error } => write!(f, "simulator failed: {error}")?,
        }
        if let (Some(k), Some(l)) = (&self.kernel, self.line) {
            write!(f, " at {k}:{l}")?;
        }
        Ok(())
    }
}

/// A completed reference execution of a whole workload (all stages).
pub struct RefRun {
    /// Final global memory after the last stage.
    pub gmem: simt_mem::GlobalMem,
    /// Per-stage final CTA states.
    pub stage_states: Vec<Vec<RefCta>>,
    /// Last writer of each global word, with the stage that wrote it.
    pub writers: HashMap<u64, (usize, Writer)>,
    /// Comparison mode declared by the workload.
    pub equivalence: Equivalence,
    /// Kernel names per stage (for attribution).
    pub kernels: Vec<String>,
    /// Total reference instructions executed.
    pub steps: u64,
}

impl RefRun {
    /// Kernel name and source line of the last reference write to `addr`.
    fn attribution(&self, addr: u64) -> (Option<String>, Option<u32>) {
        match self.writers.get(&addr) {
            Some(&(stage, w)) => (Some(self.kernels[stage].clone()), Some(w.line)),
            None => (None, None),
        }
    }
}

/// Execute `workload`'s stages on the reference interpreter.
///
/// # Errors
///
/// Propagates the first stage's [`RefError`] (fuel exhaustion or invariant
/// violation); the equivalence mode is returned alongside so the caller
/// can still classify the failure.
pub fn run_reference(
    cfg: &GpuConfig,
    workload: &dyn Workload,
    fuel: u64,
) -> Result<RefRun, (RefError, Equivalence)> {
    let plan = reference_plan(cfg, workload);
    run_reference_stages(&plan.stages, plan.initial_gmem, plan.equivalence, fuel)
}

/// Reference-execute a pre-built stage list over an initial memory image.
///
/// # Errors
///
/// See [`run_reference`].
pub fn run_reference_stages(
    stages: &[Stage],
    initial_gmem: simt_mem::GlobalMem,
    equivalence: Equivalence,
    fuel: u64,
) -> Result<RefRun, (RefError, Equivalence)> {
    let mut gmem = initial_gmem;
    let mut stage_states = Vec::new();
    let mut writers: HashMap<u64, (usize, Writer)> = HashMap::new();
    let mut kernels = Vec::new();
    let mut steps = 0;
    for (i, stage) in stages.iter().enumerate() {
        let launch = RefLaunch {
            grid_ctas: stage.launch.grid_ctas,
            threads_per_cta: stage.launch.threads_per_cta,
            params: &stage.launch.params,
        };
        let out = match run_ref(&stage.kernel, &launch, gmem, fuel) {
            Ok(out) => out,
            Err(e) => return Err((e, equivalence)),
        };
        gmem = out.gmem;
        stage_states.push(out.ctas);
        for (addr, w) in out.writers {
            writers.insert(addr, (i, w));
        }
        kernels.push(stage.kernel.name.clone());
        steps += out.steps;
    }
    Ok(RefRun {
        gmem,
        stage_states,
        writers,
        equivalence,
        kernels,
        steps,
    })
}

/// Run one simulator cell of the matrix with final-state capture.
///
/// # Errors
///
/// Propagates [`SimError`] (hang, cycle limit, launch error).
pub fn run_sim_cell(
    base_cfg: &GpuConfig,
    workload: &dyn Workload,
    cell: &DifferCell,
) -> Result<CapturedRun, SimError> {
    let cfg = cell.gpu_config(base_cfg);
    let rotate = cfg.gto_rotate_period;
    let warps = cfg.warps_per_sm();
    let sched = cell.sched;
    let policy = bows::policy_factory(sched.base, sched.bows, rotate);
    if sched.bows.is_some() || sched.force_ddos {
        run_workload_captured(&cfg, workload, &policy, &bows::ddos_factory(sched.ddos, warps))
    } else {
        run_workload_captured(&cfg, workload, &policy, &|k: &Kernel| {
            if k.true_sibs.is_empty() {
                Box::new(simt_core::NullDetector)
            } else {
                Box::new(simt_core::StaticSibDetector::new(k.true_sibs.clone()))
            }
        })
    }
}

/// Compare a finished simulator run against the reference run.
///
/// `compare_regs` additionally compares per-thread registers, predicates
/// and shared memory (sound only for workloads whose per-thread state is
/// schedule-independent — the non-sync corpus and atomics-free fuzz
/// kernels; sync workloads carry schedule-dependent CAS results in
/// registers even when their memory is deterministic).
pub fn compare(
    workload: &str,
    config: &str,
    reference: &RefRun,
    sim: &CapturedRun,
    compare_regs: bool,
) -> Vec<DivergenceReport> {
    let mut reports = Vec::new();
    let report = |divergence: Divergence, kernel: Option<String>, line: Option<u32>| {
        DivergenceReport {
            workload: workload.to_string(),
            config: config.to_string(),
            divergence,
            kernel,
            line,
        }
    };
    match &reference.equivalence {
        Equivalence::Exact => {
            if let Some(addr) = reference.gmem.first_diff(&sim.gmem) {
                let (kernel, line) = reference.attribution(addr);
                reports.push(report(
                    Divergence::Memory {
                        addr,
                        ref_val: word_at(&reference.gmem, addr),
                        sim_val: word_at(&sim.gmem, addr),
                        writer: reference.writers.get(&addr).copied(),
                    },
                    kernel,
                    line,
                ));
            }
        }
        Equivalence::Postconditions(posts) => {
            check_postconds(posts, reference, sim, workload, config, &mut reports);
        }
    }
    if compare_regs {
        compare_states(reference, sim, workload, config, &mut reports);
    }
    reports
}

fn word_at(g: &simt_mem::GlobalMem, addr: u64) -> u32 {
    let idx = (addr / 4) as usize;
    g.image().get(idx).copied().unwrap_or(0)
}

fn check_postconds(
    posts: &[Postcond],
    reference: &RefRun,
    sim: &CapturedRun,
    workload: &str,
    config: &str,
    reports: &mut Vec<DivergenceReport>,
) {
    for p in posts {
        for (side, g) in [(Side::Reference, &reference.gmem), (Side::Simulator, &sim.gmem)] {
            if let Err(error) = (p.check)(g) {
                reports.push(DivergenceReport {
                    workload: workload.to_string(),
                    config: config.to_string(),
                    divergence: Divergence::Postcondition {
                        name: p.name.clone(),
                        side,
                        error,
                    },
                    kernel: None,
                    line: None,
                });
            }
        }
    }
}

fn compare_states(
    reference: &RefRun,
    sim: &CapturedRun,
    workload: &str,
    config: &str,
    reports: &mut Vec<DivergenceReport>,
) {
    for (stage, (ref_ctas, stage_res)) in reference
        .stage_states
        .iter()
        .zip(&sim.result.stages)
        .enumerate()
    {
        let Some(sim_ctas) = &stage_res.report.final_state else {
            continue; // capture was off for this run
        };
        for (rc, sc) in ref_ctas.iter().zip(sim_ctas) {
            debug_assert_eq!(rc.cta_id, sc.cta_id);
            let mk = |divergence| DivergenceReport {
                workload: workload.to_string(),
                config: config.to_string(),
                divergence,
                kernel: Some(reference.kernels[stage].clone()),
                line: None,
            };
            if rc.regs != sc.regs {
                let i = rc.regs.iter().zip(&sc.regs).position(|(a, b)| a != b).unwrap();
                reports.push(mk(Divergence::Register {
                    stage,
                    cta: rc.cta_id,
                    thread: i / rc.regs_per_thread,
                    reg: i % rc.regs_per_thread,
                    ref_val: rc.regs[i],
                    sim_val: sc.regs[i],
                }));
                return; // first divergence only; later state is noise
            }
            if rc.preds != sc.preds {
                let i = rc.preds.iter().zip(&sc.preds).position(|(a, b)| a != b).unwrap();
                reports.push(mk(Divergence::Predicate {
                    stage,
                    cta: rc.cta_id,
                    thread: i,
                    ref_val: rc.preds[i],
                    sim_val: sc.preds[i],
                }));
                return;
            }
            if rc.shared != sc.shared {
                let i = rc
                    .shared
                    .iter()
                    .zip(&sc.shared)
                    .position(|(a, b)| a != b)
                    .unwrap();
                reports.push(mk(Divergence::Shared {
                    stage,
                    cta: rc.cta_id,
                    word: i,
                    ref_val: rc.shared[i],
                    sim_val: sc.shared[i],
                }));
                return;
            }
        }
    }
}

/// Differentially check one workload under one matrix cell, given a
/// precomputed reference run (the reference is timing-free, so one run
/// serves every cell).
pub fn check_cell(
    base_cfg: &GpuConfig,
    workload: &dyn Workload,
    cell: &DifferCell,
    reference: &Result<RefRun, (RefError, Equivalence)>,
) -> Vec<DivergenceReport> {
    let config = cell.label();
    let name = workload.name();
    match reference {
        Err((e, _)) => vec![DivergenceReport {
            workload: name.to_string(),
            config,
            divergence: Divergence::RefFailed {
                error: e.to_string(),
            },
            kernel: None,
            line: None,
        }],
        Ok(r) => match run_sim_cell(base_cfg, workload, cell) {
            Err(e) => vec![DivergenceReport {
                workload: name.to_string(),
                config,
                divergence: Divergence::SimFailed {
                    error: e.to_string(),
                },
                kernel: None,
                line: None,
            }],
            Ok(sim) => compare(name, &config, r, &sim, !workload.is_sync()),
        },
    }
}

/// Differentially check a whole suite against a matrix: the reference runs
/// once per workload, every (workload × cell) simulator run goes through
/// the deterministic parallel grid. Returns all divergences, in
/// submission order.
pub fn check_suite(
    base_cfg: &GpuConfig,
    suite: &[Box<dyn Workload>],
    cells: &[DifferCell],
    fuel: u64,
) -> Vec<DivergenceReport> {
    // Reference runs are independent of the matrix; compute them in
    // parallel too (indexed, so order is deterministic).
    let idx: Vec<usize> = (0..suite.len()).collect();
    let refs = grid::parallel_map(&idx, |_, &w| run_reference(base_cfg, suite[w].as_ref(), fuel));
    let pairs: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|w| (0..cells.len()).map(move |c| (w, c)))
        .collect();
    let nested = grid::parallel_map(&pairs, |_, &(w, c)| {
        check_cell(base_cfg, suite[w].as_ref(), &cells[c], &refs[w])
    });
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Scale;

    fn tiny() -> GpuConfig {
        GpuConfig::test_tiny()
    }

    #[test]
    fn exact_sync_workload_matches_bytewise() {
        // ST: deterministic final memory even though it synchronizes.
        let w = workloads::sync_suite(Scale::Tiny).remove(1);
        let r = run_reference(&tiny(), w.as_ref(), DEFAULT_FUEL).map_err(|(e, _)| e).unwrap();
        assert!(matches!(r.equivalence, Equivalence::Exact));
        let cell = DifferCell {
            sched: SchedConfig::baseline(BasePolicy::Gto),
            chaos: None,
        };
        let sim = run_sim_cell(&tiny(), w.as_ref(), &cell).unwrap();
        let reports = compare(w.name(), &cell.label(), &r, &sim, false);
        assert!(reports.is_empty(), "{:?}", reports.first());
    }

    #[test]
    fn racy_workload_postconditions_hold_on_both_engines() {
        // HT: chain order is schedule-dependent; postconditions must hold.
        let w = workloads::sync_suite(Scale::Tiny).remove(4);
        let r = run_reference(&tiny(), w.as_ref(), DEFAULT_FUEL).map_err(|(e, _)| e).unwrap();
        assert!(r.equivalence.postconditions().is_some());
        let cell = DifferCell {
            sched: SchedConfig::bows_adaptive(BasePolicy::Gto),
            chaos: Some((42, 2)),
        };
        let reports = check_cell(&tiny(), w.as_ref(), &cell, &Ok(r));
        assert!(reports.is_empty(), "{:?}", reports.first());
    }

    #[test]
    fn rodinia_matches_registers_too() {
        let w = workloads::rodinia_suite(Scale::Tiny).remove(0);
        let cell = DifferCell {
            sched: SchedConfig::baseline(BasePolicy::Lrr),
            chaos: Some((1, 1)),
        };
        let r = run_reference(&tiny(), w.as_ref(), DEFAULT_FUEL);
        assert!(r.is_ok());
        let reports = check_cell(&tiny(), w.as_ref(), &cell, &r);
        assert!(reports.is_empty(), "{:?}", reports.first());
    }

    #[test]
    fn matrix_sizes() {
        assert_eq!(matrix(true).len(), 27);
        assert_eq!(matrix(false).len(), 7);
        // Full matrix covers 3 schedulers × BOWS on/off × ≥3 chaos points.
        let full = matrix(true);
        let chaos_points: std::collections::HashSet<_> =
            full.iter().filter_map(|c| c.chaos).collect();
        assert!(chaos_points.len() >= 3);
    }

    #[test]
    fn divergence_report_renders_attribution() {
        let r = DivergenceReport {
            workload: "HT".into(),
            config: "gto".into(),
            divergence: Divergence::Memory {
                addr: 0x40,
                ref_val: 1,
                sim_val: 2,
                writer: Some((
                    0,
                    Writer {
                        cta: 3,
                        warp: 1,
                        pc: 9,
                        line: 12,
                    },
                )),
            },
            kernel: Some("ht_insert".into()),
            line: Some(12),
        };
        let s = r.to_string();
        assert!(s.contains("memory[0x40]"), "{s}");
        assert!(s.contains("ht_insert:12"), "{s}");
        assert!(s.contains("warp 1"), "{s}");
    }
}
