//! Shared harness for the per-figure/per-table experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--scale tiny|small|full` — problem sizes (default `small`; `tiny` is
//!   for smoke-testing the harness itself),
//! * `--csv` — emit machine-readable CSV after the human-readable table,
//! * `--jobs <n>` — worker threads for the simulation grid (default:
//!   `BOWS_JOBS` or the machine's available parallelism),
//! * `--sm-threads <n>` — SM worker threads *inside* each simulation
//!   (default: `BOWS_SM_THREADS` or serial, budgeted against `--jobs` so
//!   the two levels of parallelism don't multiply past the machine).
//!
//! Results are printed as the same rows/series the paper's figures plot.
//! Every grid of independent (workload × config) cells runs through
//! [`grid::parallel_map`], which reassembles results in submission order so
//! output is byte-identical to a serial run at any `--jobs` value.

pub mod differ;
pub mod fixture;
pub mod fuzz;
pub mod grid;
pub mod mutants;
pub mod oracle;

use bows::{AdaptiveConfig, DdosConfig, DelayMode};
use simt_core::{BasePolicy, Engine, GpuConfig, ProfileReport, SimError};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use workloads::{run_workload, Scale, Workload, WorkloadResult};

/// Process-global `--engine` override (mirrors [`grid::set_jobs`]): the
/// experiment binaries build their `GpuConfig`s internally per figure, so
/// the flag is applied at the single [`run`] chokepoint rather than
/// threaded through every signature. 0 = unset, 1 = cycle, 2 = skip.
static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Set (or clear) the process-global engine override.
pub fn set_engine(engine: Option<Engine>) {
    let v = match engine {
        None => 0,
        Some(Engine::Cycle) => 1,
        Some(Engine::Skip) => 2,
    };
    ENGINE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The engine selected by `--engine`, if any.
pub fn engine_override() -> Option<Engine> {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(Engine::Cycle),
        2 => Some(Engine::Skip),
        _ => None,
    }
}

/// Apply the `--engine` override to a configuration in place (no-op when
/// the flag was not given). For callers that bypass [`run`].
pub fn apply_engine(cfg: &mut GpuConfig) {
    if let Some(e) = engine_override() {
        cfg.engine = e;
    }
}

/// Process-global `--sm-threads` override (mirrors [`set_engine`]):
/// in-run SM worker count, applied at the [`run`] chokepoint. 0 = unset.
static SM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set (or clear) the process-global SM worker-count override. An
/// explicit override is used as given (each run still clamps it to its
/// `num_sms`), bypassing the grid budget.
pub fn set_sm_threads(n: Option<usize>) {
    SM_THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The SM worker count selected by `--sm-threads`, if any.
pub fn sm_threads_override() -> Option<usize> {
    match SM_THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Process-global `--profile` switch (mirrors [`set_engine`]): when on,
/// every configuration [`run`] builds has `GpuConfig::profile` set and
/// each finished run's phase breakdown is folded into a global
/// accumulator (simulation grids run cells on worker threads, so the fold
/// must be a shared sink rather than a return value).
static PROFILE: AtomicBool = AtomicBool::new(false);

/// Accumulated phase breakdown of every profiled run since the last
/// [`take_profile_totals`], over all grid workers.
static PROFILE_TOTALS: Mutex<Option<ProfileReport>> = Mutex::new(None);

/// Turn process-global profiling on or off.
pub fn set_profile(on: bool) {
    PROFILE.store(on, Ordering::Relaxed);
}

/// True when `--profile` is in effect.
pub fn profile_enabled() -> bool {
    PROFILE.load(Ordering::Relaxed)
}

/// Drain the accumulated phase totals (`None` when no profiled run has
/// finished since the last drain).
pub fn take_profile_totals() -> Option<ProfileReport> {
    PROFILE_TOTALS.lock().expect("profile totals poisoned").take()
}

fn fold_profile(p: &ProfileReport) {
    let mut g = PROFILE_TOTALS.lock().expect("profile totals poisoned");
    g.get_or_insert_with(ProfileReport::default).add(p);
}

/// Resolve the `sm_threads` value [`run`] will hand to a cell's
/// `GpuConfig`:
///
/// 1. an explicit `--sm-threads` override wins, unbudgeted — the user
///    asked for exactly that shape;
/// 2. a value set programmatically on the config (`sm_threads > 0`) is
///    honored as-is — tests sweep it deliberately;
/// 3. an ambient `BOWS_SM_THREADS` default is budgeted against the grid:
///    the grid already runs `--jobs` cells concurrently, so each cell
///    gets at most `max(1, cores / jobs)` SM workers. Without the budget
///    the two knobs would multiply into `jobs × sm_threads` runnable
///    threads and oversubscription would slow every cell down.
pub fn cell_sm_threads(cfg: &GpuConfig) -> usize {
    if let Some(n) = sm_threads_override() {
        return n;
    }
    if cfg.sm_threads > 0 {
        return cfg.sm_threads;
    }
    let ambient = cfg.effective_sm_threads();
    if ambient <= 1 {
        return cfg.sm_threads;
    }
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    ambient.min((cores / grid::jobs().max(1)).max(1))
}

/// Scheduling configuration under test: a baseline policy, optionally
/// wrapped in BOWS.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// The baseline policy.
    pub base: BasePolicy,
    /// BOWS delay mode, if BOWS is enabled.
    pub bows: Option<DelayMode>,
    /// DDOS configuration (ignored without BOWS unless `force_ddos`).
    pub ddos: DdosConfig,
    /// Run DDOS even without BOWS (detection-accuracy experiments).
    pub force_ddos: bool,
}

impl SchedConfig {
    /// A bare baseline.
    pub fn baseline(base: BasePolicy) -> SchedConfig {
        SchedConfig {
            base,
            bows: None,
            ddos: DdosConfig::default(),
            force_ddos: false,
        }
    }

    /// Baseline + BOWS with the given delay mode and default DDOS.
    pub fn bows(base: BasePolicy, delay: DelayMode) -> SchedConfig {
        SchedConfig {
            base,
            bows: Some(delay),
            ddos: DdosConfig::default(),
            force_ddos: false,
        }
    }

    /// The paper's default BOWS: adaptive delay.
    pub fn bows_adaptive(base: BasePolicy) -> SchedConfig {
        SchedConfig::bows(base, DelayMode::Adaptive(AdaptiveConfig::default()))
    }

    /// Column label, e.g. `gto`, `gto+bows(1000)`.
    pub fn label(&self) -> String {
        match self.bows {
            None => self.base.name().to_string(),
            Some(d) => format!("{}+bows({})", self.base.name(), d.label()),
        }
    }
}

/// Run one workload under one scheduling configuration.
///
/// # Errors
///
/// Propagates simulator errors (deadlock, cycle limit).
pub fn run(
    cfg: &GpuConfig,
    w: &dyn Workload,
    sched: SchedConfig,
) -> Result<WorkloadResult, SimError> {
    let override_storage;
    let engine = engine_override().unwrap_or(cfg.engine);
    let sm_threads = cell_sm_threads(cfg);
    let profile = profile_enabled() || cfg.profile;
    let cfg = if engine != cfg.engine || sm_threads != cfg.sm_threads || profile != cfg.profile {
        override_storage = GpuConfig {
            engine,
            sm_threads,
            profile,
            ..cfg.clone()
        };
        &override_storage
    } else {
        cfg
    };
    let rotate = cfg.gto_rotate_period;
    let warps = cfg.warps_per_sm();
    let policy = bows::policy_factory(sched.base, sched.bows, rotate);
    let res = if sched.bows.is_some() || sched.force_ddos {
        run_workload(cfg, w, &policy, &bows::ddos_factory(sched.ddos, warps))?
    } else {
        workloads::run_baseline(cfg, w, sched.base)?
    };
    if let Err(e) = &res.verified {
        eprintln!(
            "WARNING: {} under {} failed verification: {e}",
            res.name,
            sched.label()
        );
    }
    if profile {
        for s in &res.stages {
            if let Some(p) = &s.report.profile {
                fold_profile(p);
            }
        }
    }
    Ok(res)
}

/// Common command-line options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Problem scale.
    pub scale: Scale,
    /// Also print CSV.
    pub csv: bool,
    /// Grid worker threads (also set globally via [`grid::set_jobs`]).
    pub jobs: usize,
}

const USAGE: &str = "flags: --scale tiny|small|full   --csv   --jobs <n>   \
     --engine cycle|skip   --sm-threads <n>   --profile";

/// Print `msg` and the usage line to stderr, then exit with status 2.
/// Experiment sweeps must fail loudly on a malformed invocation — silently
/// running at default settings would poison committed results.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

impl Opts {
    /// Parse from `std::env::args`.
    ///
    /// Exits with status 2 (after printing the usage line to stderr) on an
    /// unknown flag, an unknown scale, or a flag missing its value; exits 0
    /// on `--help`.
    pub fn parse() -> Opts {
        let mut scale = Scale::Small;
        let mut csv = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let Some(v) = args.next() else {
                        usage_error("--scale requires a value (tiny|small|full)");
                    };
                    scale = match v.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "full" => Scale::Full,
                        other => usage_error(&format!(
                            "unknown scale `{other}` (tiny|small|full)"
                        )),
                    };
                }
                "--csv" => csv = true,
                "--engine" => {
                    let Some(v) = args.next() else {
                        usage_error("--engine requires a value (cycle|skip)");
                    };
                    match v.as_str() {
                        "cycle" => set_engine(Some(Engine::Cycle)),
                        "skip" => set_engine(Some(Engine::Skip)),
                        other => usage_error(&format!(
                            "unknown engine `{other}` (cycle|skip)"
                        )),
                    }
                }
                "--jobs" => {
                    let Some(v) = args.next() else {
                        usage_error("--jobs requires a value");
                    };
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => grid::set_jobs(n),
                        _ => usage_error(&format!("invalid --jobs value `{v}`")),
                    }
                }
                "--sm-threads" => {
                    let Some(v) = args.next() else {
                        usage_error("--sm-threads requires a value");
                    };
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => set_sm_threads(Some(n)),
                        _ => usage_error(&format!("invalid --sm-threads value `{v}`")),
                    }
                }
                "--profile" => set_profile(true),
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => usage_error(&format!("unknown flag `{other}` (try --help)")),
            }
        }
        Opts {
            scale,
            csv,
            jobs: grid::jobs(),
        }
    }

    /// Options for library/test use at a given scale (CSV off, current
    /// global worker count).
    pub fn at_scale(scale: Scale) -> Opts {
        Opts {
            scale,
            csv: false,
            jobs: grid::jobs(),
        }
    }
}

/// A simple aligned text table that can also render as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column names.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Render aligned text.
    pub fn text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render CSV.
    pub fn csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print text, and CSV when requested.
    pub fn emit(&self, opts: &Opts) {
        println!("{}", self.text());
        if opts.csv {
            println!("CSV:\n{}", self.csv());
        }
    }
}

/// Format a ratio with 3 significant decimals.
pub fn r3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// DDOS detection-accuracy metrics for one run (Table I).
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectionMetrics {
    /// True spin detection rate: detected true SIBs / true SIBs that were
    /// dynamically executed.
    pub tsdr: f64,
    /// False spin detection rate: detected non-SIB backward branches /
    /// executed non-SIB backward branches.
    pub fsdr: f64,
    /// Mean detection-phase ratio over true detections.
    pub dpr_true: f64,
    /// Mean detection-phase ratio over false detections.
    pub dpr_false: f64,
}

/// Compute Table I's metrics from a finished run.
pub fn detection_metrics(res: &WorkloadResult) -> DetectionMetrics {
    let mut true_total = 0usize;
    let mut true_found = 0usize;
    let mut false_total = 0usize;
    let mut false_found = 0usize;
    let mut dpr_t = Vec::new();
    let mut dpr_f = Vec::new();
    for s in &res.stages {
        let confirmed = &s.report.confirmed_sibs;
        for &pc in &s.backward_branches {
            let Some(t) = s.report.branch_log.get(pc) else {
                continue; // never executed
            };
            let is_true = s.true_sibs.contains(&pc);
            let hit = confirmed.iter().find(|&&(p, _)| p == pc);
            if is_true {
                true_total += 1;
            } else {
                false_total += 1;
            }
            if let Some(&(_, at)) = hit {
                let lifetime = (t.last - t.first).max(1) as f64;
                let phase = at.saturating_sub(t.first) as f64 / lifetime;
                if is_true {
                    true_found += 1;
                    dpr_t.push(phase.min(1.0));
                } else {
                    false_found += 1;
                    dpr_f.push(phase.min(1.0));
                }
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    DetectionMetrics {
        tsdr: if true_total == 0 {
            1.0
        } else {
            true_found as f64 / true_total as f64
        },
        fsdr: if false_total == 0 {
            0.0
        } else {
            false_found as f64 / false_total as f64
        },
        dpr_true: mean(&dpr_t),
        dpr_false: mean(&dpr_f),
    }
}

/// Run every (workload × scheduler) cell of a figure grid on the thread
/// pool, returning per-workload result rows in suite order (config order
/// within each row). Output is deterministic at any worker count.
///
/// # Panics
///
/// Panics with workload/config context if any cell returns a
/// [`SimError`] — matching the serial `.expect("run")` behavior.
pub fn run_suite_grid(
    cfg: &GpuConfig,
    suite: &[Box<dyn Workload>],
    scheds: &[SchedConfig],
) -> Vec<Vec<WorkloadResult>> {
    let cells: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|w| (0..scheds.len()).map(move |c| (w, c)))
        .collect();
    let flat = grid::parallel_map(&cells, |_, &(w, c)| {
        run(cfg, suite[w].as_ref(), scheds[c]).unwrap_or_else(|e| {
            panic!("{} under {}: {e}", suite[w].name(), scheds[c].label())
        })
    });
    let mut flat = flat.into_iter();
    suite
        .iter()
        .map(|_| scheds.iter().map(|_| flat.next().expect("cell")).collect())
        .collect()
}

/// Shared body of Figures 9 (Fermi) and 15 (Pascal), as a renderable
/// table: normalized execution time and dynamic energy for
/// {LRR, GTO, CAWA} with and without BOWS, normalized to LRR,
/// geometric-mean row at the end.
pub fn perf_energy_table(cfg: &GpuConfig, scale: Scale) -> Table {
    let configs: Vec<SchedConfig> = [BasePolicy::Lrr, BasePolicy::Gto, BasePolicy::Cawa]
        .into_iter()
        .flat_map(|b| [SchedConfig::baseline(b), SchedConfig::bows_adaptive(b)])
        .collect();
    let labels: Vec<String> = configs.iter().map(SchedConfig::label).collect();
    let mut header: Vec<&str> = vec!["kernel", "metric"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(&header);
    let mut geo_time = vec![0.0f64; configs.len()];
    let mut geo_energy = vec![0.0f64; configs.len()];
    let mut n = 0usize;
    let suite = workloads::sync_suite(scale);
    for results in run_suite_grid(cfg, &suite, &configs) {
        let base_cycles = results[0].cycles.max(1) as f64;
        let base_energy = results[0].dynamic_j.max(1e-18);
        let times: Vec<f64> = results.iter().map(|r| r.cycles as f64 / base_cycles).collect();
        let energies: Vec<f64> = results.iter().map(|r| r.dynamic_j / base_energy).collect();
        for (i, (&tv, &ev)) in times.iter().zip(&energies).enumerate() {
            geo_time[i] += tv.ln();
            geo_energy[i] += ev.ln();
        }
        n += 1;
        let mut row = vec![results[0].name.clone(), "time".to_string()];
        row.extend(times.iter().map(|&x| r3(x)));
        t.row(row);
        let mut row = vec![results[0].name.clone(), "energy".to_string()];
        row.extend(energies.iter().map(|&x| r3(x)));
        t.row(row);
    }
    let mut row = vec!["Gmean".to_string(), "time".to_string()];
    row.extend(geo_time.iter().map(|&x| r3((x / n as f64).exp())));
    t.row(row);
    let mut row = vec!["Gmean".to_string(), "energy".to_string()];
    row.extend(geo_energy.iter().map(|&x| r3((x / n as f64).exp())));
    t.row(row);
    t
}

/// Print the Figure 9/15 body with its caption.
pub fn perf_energy_figure(cfg: &GpuConfig, opts: &Opts, figure: &str) {
    println!(
        "{figure}: normalized execution time and dynamic energy on {} \
         (normalized to LRR; lower is better)\n",
        cfg.name
    );
    perf_energy_table(cfg, opts.scale).emit(opts);
}

/// The Figure 10–13 sweep: GTO baseline plus BOWS at fixed delays and
/// adaptive. Returns `(labels, per-workload results)`.
pub fn delay_sweep(
    cfg: &GpuConfig,
    scale: Scale,
) -> (Vec<String>, Vec<(String, Vec<WorkloadResult>)>) {
    let configs: Vec<SchedConfig> = std::iter::once(SchedConfig::baseline(BasePolicy::Gto))
        .chain(
            [0u64, 500, 1000, 3000, 5000]
                .into_iter()
                .map(|d| SchedConfig::bows(BasePolicy::Gto, DelayMode::Fixed(d))),
        )
        .chain(std::iter::once(SchedConfig::bows_adaptive(BasePolicy::Gto)))
        .collect();
    let labels: Vec<String> = configs.iter().map(SchedConfig::label).collect();
    let suite = workloads::sync_suite(scale);
    let cells: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let flat = grid::parallel_map(&cells, |_, &(w, c)| {
        let t0 = std::time::Instant::now();
        let r = run(cfg, suite[w].as_ref(), configs[c]).unwrap_or_else(|e| {
            panic!("{} under {}: {e}", suite[w].name(), labels[c])
        });
        // Progress goes to stderr; completion order (and thus line order)
        // varies with the worker count, the results do not.
        eprintln!(
            "  [{} / {}] {} cycles, {:.1}s wall",
            suite[w].name(),
            labels[c],
            r.cycles,
            t0.elapsed().as_secs_f64()
        );
        r
    });
    let mut flat = flat.into_iter();
    let out = suite
        .iter()
        .map(|w| {
            (
                w.name().to_string(),
                configs.iter().map(|_| flat.next().expect("cell")).collect(),
            )
        })
        .collect();
    (labels, out)
}

/// Table III (implementation cost of DDOS and BOWS) as a string, one
/// section per GPU configuration. Pure configuration arithmetic — no
/// simulation — but the per-config sections still go through the grid so
/// determinism tests can compare serial and parallel assembly end to end.
pub fn table3_report(csv: bool) -> String {
    let cfgs = [GpuConfig::gtx480(), GpuConfig::gtx1080ti()];
    let sections = grid::parallel_map(&cfgs, |_, cfg| {
        let warps = cfg.warps_per_sm() as u64;
        let mut ddos = DdosConfig::default();
        let mut out = format!("{} ({} warps/SM):\n", cfg.name, warps);
        let mut t = Table::new(&["component", "bits", "notes"]);
        let c = bows::ImplementationCost::per_sm(&ddos, warps);
        t.row(vec![
            "SIB-PT".into(),
            c.sibpt_bits.to_string(),
            format!("{} entries x 35 bits", ddos.sibpt_entries),
        ]);
        t.row(vec![
            "history registers".into(),
            c.history_bits.to_string(),
            format!("{} warps x {} bits", warps, ddos.history_bits_per_warp()),
        ]);
        t.row(vec![
            "detector FSM".into(),
            c.fsm_bits.to_string(),
            format!("{warps} x 4-state FSM"),
        ]);
        t.row(vec![
            "pending delay counters".into(),
            c.delay_counter_bits.to_string(),
            format!("{warps} x 14 bits (delays to 10000)"),
        ]);
        t.row(vec![
            "backed-off queue".into(),
            c.backed_off_queue_bits.to_string(),
            format!("{warps} x 5 bits"),
        ]);
        t.row(vec![
            "TOTAL".into(),
            c.total_bits().to_string(),
            format!("{} bytes", c.total_bytes()),
        ]);
        let _ = writeln!(out, "{}", t.text());
        if csv {
            let _ = writeln!(out, "CSV:\n{}", t.csv());
        }
        // The cost-reduction option the paper mentions: time sharing.
        ddos.time_share_epoch = Some(1000);
        let shared = bows::ImplementationCost::per_sm(&ddos, warps);
        let _ = writeln!(
            out,
            "with time-shared history registers: {} bits total ({} bytes)\n",
            shared.total_bits(),
            shared.total_bytes()
        );
        out
    });
    sections.concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let text = t.text();
        assert!(text.contains("long-name"));
        assert!(text.lines().count() == 4);
        let csv = t.csv();
        assert_eq!(csv.lines().next(), Some("name,value"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn sched_config_labels() {
        assert_eq!(SchedConfig::baseline(BasePolicy::Gto).label(), "gto");
        assert_eq!(
            SchedConfig::bows(BasePolicy::Lrr, DelayMode::Fixed(500)).label(),
            "lrr+bows(500)"
        );
        assert_eq!(
            SchedConfig::bows_adaptive(BasePolicy::Cawa).label(),
            "cawa+bows(adaptive)"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(r3(1.23456), "1.235");
        assert_eq!(pct(0.613), "61.3%");
    }

    #[test]
    fn end_to_end_run_and_metrics() {
        use workloads::sync::Hashtable;
        let cfg = GpuConfig::test_tiny();
        let ht = Hashtable::with_params(128, 2, 4, 64);
        let mut sc = SchedConfig::baseline(BasePolicy::Gto);
        sc.force_ddos = true;
        let res = run(&cfg, &ht, sc).unwrap();
        assert!(res.verified.is_ok());
        let m = detection_metrics(&res);
        assert!(m.tsdr > 0.99, "DDOS finds HT's spin branch: {m:?}");
        assert_eq!(m.fsdr, 0.0, "no false detections with XOR");
        assert!(m.dpr_true < 0.5, "detection is early in the run");
    }
}
