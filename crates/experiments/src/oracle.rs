//! Cross-validation of DDOS against the static spin-loop oracle.
//!
//! Three independent sources claim to know which backward branches spin:
//!
//! 1. the hand-written `!sib` annotations (`Kernel::true_sibs`),
//! 2. `simt-analyze`'s static classification ([`simt_analyze::static_sibs`]),
//! 3. DDOS's dynamic confirmations (`confirmed_sibs()`), under XOR and
//!    MODULO hashing.
//!
//! This module runs every workload once per hashing scheme with DDOS
//! observing passively (`force_ddos`, no BOWS — scheduling is unchanged) and
//! joins the three sets per kernel. The paper's claims become checkable
//! propositions: XOR confirmations must be a subset of the static spin set
//! (zero false detections, Figure 14), and MODULO's extra confirmations are
//! *provably* false because the oracle shows the loop writes its induction
//! variable and no polling load exists.

use crate::{grid, SchedConfig};
use bows::{DdosConfig, HashKind};
use simt_analyze::analyze_insts;
use simt_core::{BasePolicy, GpuConfig};
use workloads::Workload;

/// The joined spin-branch evidence for one kernel launch (stage).
#[derive(Debug, Clone)]
pub struct OracleStage {
    /// Workload name (e.g. "HT", "MS").
    pub workload: String,
    /// Kernel name.
    pub kernel: String,
    /// True for the busy-wait synchronization suite.
    pub is_sync: bool,
    /// Backward branches that executed at least once (DDOS's candidate set).
    pub executed: Vec<usize>,
    /// Ground-truth `!sib` annotations.
    pub true_sibs: Vec<usize>,
    /// The static oracle's classification.
    pub static_sibs: Vec<usize>,
    /// DDOS confirmations under XOR hashing.
    pub xor_confirmed: Vec<usize>,
    /// DDOS confirmations under MODULO hashing.
    pub modulo_confirmed: Vec<usize>,
}

impl OracleStage {
    /// Does the static classification agree exactly with the annotations?
    pub fn static_matches_annotation(&self) -> bool {
        self.static_sibs == self.true_sibs
    }

    /// XOR confirmations the oracle rejects (must be empty — the paper's
    /// zero-false-detection claim).
    pub fn xor_false(&self) -> Vec<usize> {
        diff(&self.xor_confirmed, &self.static_sibs)
    }

    /// MODULO confirmations the oracle rejects (MS/HL's power-of-two stride
    /// aliasing, Figure 14).
    pub fn modulo_false(&self) -> Vec<usize> {
        diff(&self.modulo_confirmed, &self.static_sibs)
    }

    /// Statically-classified spin branches that executed but were not
    /// confirmed by XOR DDOS. Informational: the static oracle proves a
    /// branch *can* spin; at small scales it may execute without ever
    /// actually spinning long enough to reach DDOS's confidence threshold.
    pub fn xor_missed(&self) -> Vec<usize> {
        let exec_static: Vec<usize> = self
            .static_sibs
            .iter()
            .copied()
            .filter(|pc| self.executed.contains(pc))
            .collect();
        diff(&exec_static, &self.xor_confirmed)
    }
}

fn diff(a: &[usize], b: &[usize]) -> Vec<usize> {
    a.iter().copied().filter(|x| !b.contains(x)).collect()
}

/// Precision/recall of one DDOS variant against the static oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrecisionRecall {
    /// Confirmations the oracle also classifies as spin.
    pub tp: usize,
    /// Confirmations the oracle rejects (false detections).
    pub fp: usize,
    /// Executed static spin branches DDOS never confirmed.
    pub fn_: usize,
}

impl PrecisionRecall {
    /// `tp / (tp + fp)`; 1.0 when nothing was confirmed.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// Aggregate precision/recall of a hashing scheme over a set of stages.
pub fn precision_recall(
    stages: &[OracleStage],
    hash: HashKind,
    sync_only: Option<bool>,
) -> PrecisionRecall {
    let mut pr = PrecisionRecall::default();
    for s in stages {
        if sync_only.is_some_and(|want| s.is_sync != want) {
            continue;
        }
        let confirmed = match hash {
            HashKind::Xor => &s.xor_confirmed,
            HashKind::Modulo => &s.modulo_confirmed,
        };
        pr.tp += confirmed
            .iter()
            .filter(|pc| s.static_sibs.contains(pc))
            .count();
        pr.fp += confirmed
            .iter()
            .filter(|pc| !s.static_sibs.contains(pc))
            .count();
        pr.fn_ += s
            .static_sibs
            .iter()
            .filter(|pc| s.executed.contains(pc) && !confirmed.contains(pc))
            .count();
    }
    pr
}

/// Run the given workloads under passive DDOS with XOR and MODULO hashing
/// and join the results against the static oracle and the annotations.
///
/// Two simulations per workload, parallelized over the experiment grid's
/// worker pool. The static analysis itself is free (microseconds per
/// kernel).
///
/// # Panics
///
/// Panics with workload context if a simulation fails (deadlock / cycle
/// limit), as the experiment binaries do.
pub fn oracle_stages(cfg: &GpuConfig, suite: &[Box<dyn Workload>]) -> Vec<OracleStage> {
    let per_workload = grid::parallel_map(suite, |_, w| {
        let mut variants = Vec::new();
        for hash in [HashKind::Xor, HashKind::Modulo] {
            let mut sc = SchedConfig::baseline(BasePolicy::Gto);
            sc.force_ddos = true;
            sc.ddos = DdosConfig {
                hash,
                ..DdosConfig::default()
            };
            let res = crate::run(cfg, w.as_ref(), sc)
                .unwrap_or_else(|e| panic!("{} ({}): {e}", w.name(), hash.name()));
            variants.push(res);
        }
        let [xor_res, mod_res] = <[_; 2]>::try_from(variants).ok().expect("two runs");
        let mut stages = Vec::new();
        for (xs, ms) in xor_res.stages.iter().zip(&mod_res.stages) {
            let analysis = analyze_insts(&xs.insts);
            stages.push(OracleStage {
                workload: w.name().to_string(),
                kernel: xs.kernel.clone(),
                is_sync: w.is_sync(),
                executed: xs
                    .backward_branches
                    .iter()
                    .copied()
                    .filter(|&pc| xs.report.branch_log.get(pc).is_some())
                    .collect(),
                true_sibs: xs.true_sibs.clone(),
                static_sibs: analysis.sib_pcs(),
                xor_confirmed: sorted_pcs(&xs.report.confirmed_sibs),
                modulo_confirmed: sorted_pcs(&ms.report.confirmed_sibs),
            });
        }
        stages
    });
    per_workload.into_iter().flatten().collect()
}

fn sorted_pcs(confirmed: &[(usize, u64)]) -> Vec<usize> {
    let mut v: Vec<usize> = confirmed.iter().map(|&(pc, _)| pc).collect();
    v.sort_unstable();
    v.dedup();
    v
}
