//! Seeded random-kernel fuzzer for the differential oracle.
//!
//! Generates structured, guaranteed-terminating kernels (bounded loops,
//! nested divergence, uniform barriers, thread-private stores, commutative
//! atomics), filters them through `simt-analyze`'s lints, then runs each
//! through both the reference interpreter and the cycle-level simulator
//! under a seed-derived scheduler/chaos configuration. Every generated
//! kernel's final memory *and* registers are schedule-independent by
//! construction:
//!
//! * scratch-register dataflow only reads launch constants, immediates,
//!   and a read-only input buffer;
//! * stores go to the thread's private slots of the output buffer;
//! * atomics are commutative reductions (`add`/`min`/`max`/`and`/`or`) on
//!   shared counters, each counter word is only ever targeted by a single
//!   op (a *mix* of commutative ops on one word is still order-dependent),
//!   and the (schedule-dependent) old value returned in the destination
//!   register is immediately overwritten with zero.
//!
//! So *any* divergence between the engines is a bug (or a seeded chaos
//! fixture). On divergence the kernel shrinks automatically: structural
//! mutations (drop a node, unwrap a loop/if body, reduce trip counts,
//! shrink the launch) are applied while the divergence kind persists,
//! and the minimal reproducer is emitted as a committable `.s` fixture.
//!
//! Everything is deterministic in the root seed: generation, the
//! simulator configuration drawn per kernel, and shrinking order.

use crate::differ::{check_cell, DifferCell, DivergenceReport, CHAOS_POINTS};
use crate::SchedConfig;
use simt_analyze::analyze_insts;
use simt_core::{BasePolicy, Gpu, GpuConfig, LaunchSpec};
use simt_isa::asm::assemble;
use simt_isa::Kernel;
use std::fmt::Write as _;
use workloads::{Lcg, Prepared, Stage, Workload};

/// SplitMix64: a tiny, high-quality deterministic PRNG for generation
/// decisions (the committed fixtures depend on this stream: change it and
/// seeds reproduce different kernels, so bump [`GENERATOR_VERSION`]).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded stream.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform choice from a slice of `Copy` values.
    pub fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }

    /// Bernoulli with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Bump when generation semantics change (invalidates seed reproduction
/// of previously committed fixtures; the fixture header records it).
pub const GENERATOR_VERSION: u32 = 2;

/// Register conventions of generated kernels (`.regs 16`):
/// r1..r3 = out/in/ctr base pointers, r4 = gtid, r5 = out slot base,
/// r6..r11 = scratch dataflow, r12..r13 = loop counters, r15 = temp.
const SCRATCH: [u8; 6] = [6, 7, 8, 9, 10, 11];
/// Output words per thread (private store slots).
pub const OUT_STRIDE: u64 = 4;
/// Read-only input buffer words.
pub const IN_WORDS: u64 = 64;
/// Shared atomic counters — one per reduction op (`add`/`min`/`max`/
/// `and`/`or`), so every counter word sees exactly one commutative op.
pub const CTR_WORDS: u64 = 5;

/// A value operand of a generated ALU op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Reg(u8),
    Imm(u32),
}

impl Src {
    fn render(self) -> String {
        match self {
            Src::Reg(r) => format!("r{r}"),
            Src::Imm(v) => format!("{v}"),
        }
    }
}

/// One structural node of a generated kernel body.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    /// `op rd, a, b` (or 3-source `mad`).
    Alu {
        op: &'static str,
        dst: u8,
        a: Src,
        b: Src,
        c: Option<Src>,
    },
    /// Load `in[r_idx & 63]` into a scratch register.
    LoadIn { dst: u8, idx: u8 },
    /// Store a scratch register to the thread's private out slot.
    StoreOut { slot: u8, src: u8 },
    /// Commutative atomic reduction on a shared counter; the returned old
    /// value is immediately zeroed to keep registers deterministic.
    AtomCtr { op: &'static str, ctr: u8, src: u8 },
    /// Two-sided divergence on a thread-varying predicate.
    If {
        cmp: &'static str,
        lhs: u8,
        rhs: u32,
        then_: Vec<Node>,
        else_: Vec<Node>,
    },
    /// Counted loop, 1..=8 trips, loop counter register by nesting depth.
    Loop { trips: u32, depth: u8, body: Vec<Node> },
    /// Uniform CTA barrier (top level only).
    Bar,
}

/// A generated kernel: its structure, rendered source, and launch shape.
#[derive(Debug, Clone)]
pub struct FuzzKernel {
    /// Root seed this kernel was generated from.
    pub seed: u64,
    /// CTAs in the grid.
    pub ctas: usize,
    /// Threads per CTA.
    pub tpc: usize,
    body: Vec<Node>,
}

impl FuzzKernel {
    /// Generate the kernel for `seed`. The structure is drawn from the
    /// seed alone; launch shape covers partial warps and multi-CTA grids.
    pub fn generate(seed: u64) -> FuzzKernel {
        let mut rng = Rng::new(seed);
        let ctas = 1 + rng.below(2) as usize;
        let tpc = rng.pick(&[20usize, 32, 48, 64]);
        let n = 3 + rng.below(6) as usize;
        let mut body = Vec::new();
        for _ in 0..n {
            body.push(gen_node(&mut rng, 0));
        }
        // Ensure at least one observable effect.
        body.push(Node::StoreOut {
            slot: 0,
            src: rng.pick(&SCRATCH),
        });
        FuzzKernel {
            seed,
            ctas,
            tpc,
            body,
        }
    }

    /// Render assembler source (committable as a fixture; the header
    /// records the seed for reproduction).
    pub fn source(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, ";; fuzz seed {} v{}", self.seed, GENERATOR_VERSION);
        let _ = writeln!(
            s,
            ";; differ: launch ctas={} tpc={}",
            self.ctas, self.tpc
        );
        let _ = writeln!(s, ";; differ: alloc out {}", self.ctas as u64 * self.tpc as u64 * OUT_STRIDE);
        let _ = writeln!(s, ";; differ: alloc in {IN_WORDS} lcg {}", self.seed as u32);
        let _ = writeln!(s, ";; differ: alloc ctr {CTR_WORDS}");
        let _ = writeln!(s, ";; differ: param out");
        let _ = writeln!(s, ";; differ: param in");
        let _ = writeln!(s, ";; differ: param ctr");
        let _ = writeln!(s, ";; differ: regs");
        let _ = writeln!(s, ";; differ: expect agree");
        let _ = writeln!(s, ".kernel fuzz_{}", self.seed);
        let _ = writeln!(s, ".regs 16");
        let mut seed_rng = Rng::new(self.seed ^ 0xF00D);
        let _ = writeln!(s, "    ld.param r1, [0]");
        let _ = writeln!(s, "    ld.param r2, [4]");
        let _ = writeln!(s, "    ld.param r3, [8]");
        let _ = writeln!(s, "    mov r4, %gtid");
        let _ = writeln!(s, "    shl r5, r4, {}", OUT_STRIDE.trailing_zeros() + 2);
        let _ = writeln!(s, "    add r5, r5, r1");
        let _ = writeln!(s, "    mov r6, r4");
        let _ = writeln!(s, "    mov r7, %laneid");
        let _ = writeln!(s, "    mov r8, %tid");
        for r in [9u8, 10, 11] {
            let _ = writeln!(s, "    mov r{r}, {}", seed_rng.below(1 << 16));
        }
        let _ = writeln!(s, "    mov r15, 0");
        let mut label = 0usize;
        render_nodes(&self.body, &mut s, &mut label, 1);
        let _ = writeln!(s, "    exit");
        s
    }

    /// Assemble the rendered source.
    ///
    /// # Errors
    ///
    /// Returns the assembler's message — generation should never produce
    /// one; a failure here is itself a generator bug worth surfacing.
    pub fn assemble(&self) -> Result<Kernel, String> {
        assemble(&self.source()).map_err(|e| e.to_string())
    }

    /// The seed-derived simulator cell this kernel is checked under.
    pub fn cell(&self) -> DifferCell {
        let mut rng = Rng::new(self.seed ^ 0xCE11);
        let base = rng.pick(&[BasePolicy::Gto, BasePolicy::Lrr, BasePolicy::Cawa]);
        let sched = if rng.chance(1, 2) {
            SchedConfig::bows_adaptive(base)
        } else {
            SchedConfig::baseline(base)
        };
        let chaos = match rng.below(3) {
            0 => None,
            1 => Some(CHAOS_POINTS[rng.below(3) as usize]),
            _ => Some((self.seed, 1 + rng.below(2) as u8)),
        };
        DifferCell { sched, chaos }
    }

    /// Total structural nodes (a shrinking-progress metric).
    pub fn node_count(&self) -> usize {
        count_nodes(&self.body)
    }

    fn mutants(&self) -> Vec<FuzzKernel> {
        let mut out = Vec::new();
        // Launch-shape reductions first: they shrink every later re-run.
        if self.ctas > 1 {
            let mut m = self.clone();
            m.ctas = 1;
            out.push(m);
        }
        if self.tpc > 32 {
            let mut m = self.clone();
            m.tpc = 32;
            out.push(m);
        }
        if self.tpc > 20 {
            let mut m = self.clone();
            m.tpc = 20;
            out.push(m);
        }
        for i in 0..count_nodes(&self.body) {
            for kind in [Mutation::Drop, Mutation::Unwrap, Mutation::OneTrip] {
                let mut body = self.body.clone();
                let mut k = i;
                if mutate(&mut body, &mut k, kind) {
                    let mut m = self.clone();
                    m.body = body;
                    out.push(m);
                }
            }
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// Remove the node entirely.
    Drop,
    /// Replace an `If`/`Loop` with its (then-)body.
    Unwrap,
    /// Set a loop's trip count to 1.
    OneTrip,
}

fn count_nodes(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| {
            1 + match n {
                Node::If { then_, else_, .. } => count_nodes(then_) + count_nodes(else_),
                Node::Loop { body, .. } => count_nodes(body),
                _ => 0,
            }
        })
        .sum()
}

/// Apply `kind` to the `k`-th node in preorder. Returns whether a
/// structural change was made.
fn mutate(nodes: &mut Vec<Node>, k: &mut usize, kind: Mutation) -> bool {
    let mut i = 0;
    while i < nodes.len() {
        if *k == 0 {
            match (kind, nodes[i].clone()) {
                (Mutation::Drop, _) => {
                    nodes.remove(i);
                    return true;
                }
                (Mutation::Unwrap, Node::If { then_, .. }) => {
                    nodes.splice(i..=i, then_);
                    return true;
                }
                (Mutation::Unwrap, Node::Loop { body, .. }) => {
                    nodes.splice(i..=i, body);
                    return true;
                }
                (Mutation::OneTrip, Node::Loop { trips, .. }) if trips > 1 => {
                    if let Node::Loop { trips, .. } = &mut nodes[i] {
                        *trips = 1;
                    }
                    return true;
                }
                _ => return false,
            }
        }
        *k -= 1;
        let changed = match &mut nodes[i] {
            Node::If { then_, else_, .. } => {
                mutate(then_, k, kind) || mutate(else_, k, kind)
            }
            Node::Loop { body, .. } => mutate(body, k, kind),
            _ => false,
        };
        if changed {
            return true;
        }
        i += 1;
    }
    false
}

const ALU_OPS: [&str; 12] = [
    "add", "sub", "mul", "and", "or", "xor", "shl", "shr", "min.s32", "max.s32", "div.u32",
    "add.f32",
];
const ATOM_OPS: [&str; 5] = ["add", "min", "max", "and", "or"];
const CMPS: [&str; 4] = ["eq", "ne", "lt", "gt"];

fn gen_src(rng: &mut Rng) -> Src {
    if rng.chance(1, 3) {
        Src::Imm(rng.below(1 << 10) as u32)
    } else {
        Src::Reg(rng.pick(&SCRATCH))
    }
}

fn gen_node(rng: &mut Rng, depth: u8) -> Node {
    // Leaves get likelier with depth; barriers only at top level.
    let roll = rng.below(if depth == 0 { 10 } else { 8 });
    match roll {
        0..=2 => Node::Alu {
            op: rng.pick(&ALU_OPS),
            dst: rng.pick(&SCRATCH),
            a: Src::Reg(rng.pick(&SCRATCH)),
            b: gen_src(rng),
            c: None,
        },
        3 => Node::Alu {
            op: "mad",
            dst: rng.pick(&SCRATCH),
            a: Src::Reg(rng.pick(&SCRATCH)),
            b: gen_src(rng),
            c: Some(gen_src(rng)),
        },
        4 => Node::LoadIn {
            dst: rng.pick(&SCRATCH),
            idx: rng.pick(&SCRATCH),
        },
        5 => Node::StoreOut {
            slot: rng.below(OUT_STRIDE) as u8,
            src: rng.pick(&SCRATCH),
        },
        6 => {
            // One op per counter word: each op alone is commutative, but a
            // *mix* on the same word (add-then-max vs max-then-add) is
            // order-dependent — the v1 generator allowed that and fuzz
            // seed 137 duly diverged. Tying the op to the index keeps
            // every interleaving equivalent.
            let ctr = rng.below(CTR_WORDS) as u8;
            Node::AtomCtr {
                op: ATOM_OPS[ctr as usize],
                ctr,
                src: rng.pick(&SCRATCH),
            }
        }
        7 if depth < 2 => {
            let n_then = 1 + rng.below(3) as usize;
            let n_else = rng.below(3) as usize;
            Node::If {
                cmp: rng.pick(&CMPS),
                lhs: rng.pick(&[6u8, 7, 8]), // thread-varying sources
                rhs: rng.below(64) as u32,
                then_: (0..n_then).map(|_| gen_node(rng, depth + 1)).collect(),
                else_: (0..n_else).map(|_| gen_node(rng, depth + 1)).collect(),
            }
        }
        8 if depth < 2 => {
            let n = 1 + rng.below(3) as usize;
            Node::Loop {
                trips: 1 + rng.below(8) as u32,
                depth,
                body: (0..n).map(|_| gen_node(rng, depth + 1)).collect(),
            }
        }
        9 => Node::Bar,
        _ => Node::Alu {
            op: "add",
            dst: rng.pick(&SCRATCH),
            a: Src::Reg(rng.pick(&SCRATCH)),
            b: Src::Imm(1),
            c: None,
        },
    }
}

fn render_nodes(nodes: &[Node], s: &mut String, label: &mut usize, indent: usize) {
    let pad = "    ".repeat(indent);
    for n in nodes {
        match n {
            Node::Alu { op, dst, a, b, c } => {
                let _ = write!(s, "{pad}{op} r{dst}, {}, {}", a.render(), b.render());
                if let Some(c) = c {
                    let _ = write!(s, ", {}", c.render());
                }
                s.push('\n');
            }
            Node::LoadIn { dst, idx } => {
                let _ = writeln!(s, "{pad}and r15, r{idx}, {}", IN_WORDS - 1);
                let _ = writeln!(s, "{pad}shl r15, r15, 2");
                let _ = writeln!(s, "{pad}add r15, r15, r2");
                let _ = writeln!(s, "{pad}ld.global r{dst}, [r15]");
            }
            Node::StoreOut { slot, src } => {
                let _ = writeln!(s, "{pad}st.global [r5+{}], r{src}", 4 * slot);
            }
            Node::AtomCtr { op, ctr, src } => {
                let _ = writeln!(s, "{pad}atom.global.{op} r15, [r3+{}], r{src}", 4 * ctr);
                let _ = writeln!(s, "{pad}mov r15, 0");
            }
            Node::If {
                cmp,
                lhs,
                rhs,
                then_,
                else_,
            } => {
                let id = *label;
                *label += 1;
                let _ = writeln!(s, "{pad}setp.{cmp}.s32 p0, r{lhs}, {rhs}");
                let _ = writeln!(s, "{pad}@!p0 bra ELSE{id}");
                render_nodes(then_, s, label, indent + 1);
                let _ = writeln!(s, "{pad}bra END{id}");
                let _ = writeln!(s, "ELSE{id}:");
                render_nodes(else_, s, label, indent + 1);
                let _ = writeln!(s, "END{id}:");
            }
            Node::Loop { trips, depth, body } => {
                let id = *label;
                *label += 1;
                let lc = 12 + depth; // r12/r13 by nesting depth
                let _ = writeln!(s, "{pad}mov r{lc}, 0");
                let _ = writeln!(s, "LOOP{id}:");
                render_nodes(body, s, label, indent + 1);
                let _ = writeln!(s, "{pad}add r{lc}, r{lc}, 1");
                let _ = writeln!(s, "{pad}setp.lt.s32 p1, r{lc}, {trips}");
                let _ = writeln!(s, "{pad}@p1 bra LOOP{id}");
            }
            Node::Bar => {
                let _ = writeln!(s, "{pad}bar.sync");
            }
        }
    }
}

/// The fuzz harness's [`Workload`] wrapper around one generated (or
/// fixture) kernel: allocates the out/in/ctr buffers, seeds the read-only
/// input from the kernel's LCG stream, and declares exact equivalence.
pub struct AdhocKernel {
    /// The kernel under test.
    pub kernel: Kernel,
    /// CTAs in the grid.
    pub ctas: usize,
    /// Threads per CTA.
    pub tpc: usize,
    /// LCG seed for the input buffer.
    pub input_seed: u32,
    /// Compare per-thread registers too (off for kernels with
    /// schedule-dependent register state).
    pub compare_regs: bool,
}

impl Workload for AdhocKernel {
    fn name(&self) -> &'static str {
        "fuzz"
    }

    // `is_sync` doubles as "registers are schedule-dependent" for the
    // differ; generated kernels keep registers deterministic.
    fn is_sync(&self) -> bool {
        !self.compare_regs
    }

    fn prepare(&self, gpu: &mut Gpu) -> Prepared {
        let g = gpu.mem_mut().gmem_mut();
        let out = g.alloc(self.ctas as u64 * self.tpc as u64 * OUT_STRIDE);
        let inp = g.alloc(IN_WORDS);
        let mut lcg = Lcg::new(self.input_seed);
        for i in 0..IN_WORDS {
            g.write_u32(inp + i * 4, lcg.next_u32());
        }
        let ctr = g.alloc(CTR_WORDS);
        Prepared::exact(
            vec![Stage {
                kernel: self.kernel.clone(),
                launch: LaunchSpec {
                    grid_ctas: self.ctas,
                    threads_per_cta: self.tpc,
                    params: vec![out as u32, inp as u32, ctr as u32],
                },
            }],
            // No host-side model: the reference interpreter *is* the
            // expected result, so per-engine verification is vacuous.
            |_gpu| Ok(()),
        )
    }
}

/// Outcome of fuzzing one seed.
pub struct FuzzCase {
    /// The generated kernel.
    pub kernel: FuzzKernel,
    /// Divergences found (empty = engines agree).
    pub reports: Vec<DivergenceReport>,
}

/// Generate, filter, and differentially check the kernel for `seed`.
/// Returns `None` if the generated kernel fails the static lint filter
/// (counted by the caller; by construction this should not happen).
pub fn run_seed(base_cfg: &GpuConfig, seed: u64, fuel: u64) -> Option<FuzzCase> {
    let kernel = FuzzKernel::generate(seed);
    let case = check_kernel(base_cfg, &kernel, fuel)?;
    Some(case)
}

/// Differentially check one structured kernel (shared by fuzzing and
/// shrinking). `None` = rejected by the lint filter or unassemblable.
fn check_kernel(base_cfg: &GpuConfig, fk: &FuzzKernel, fuel: u64) -> Option<FuzzCase> {
    let kernel = fk.assemble().ok()?;
    let analysis = analyze_insts(&kernel.insts);
    if analysis.has_errors() {
        return None;
    }
    let w = AdhocKernel {
        kernel,
        ctas: fk.ctas,
        tpc: fk.tpc,
        input_seed: fk.seed as u32,
        compare_regs: true,
    };
    let cell = fk.cell();
    let reference = crate::differ::run_reference(base_cfg, &w, fuel);
    let mut reports = check_cell(base_cfg, &w, &cell, &reference);
    for r in &mut reports {
        r.workload = format!("fuzz[seed={}]", fk.seed);
    }
    Some(FuzzCase {
        kernel: fk.clone(),
        reports,
    })
}

/// Shrink a diverging kernel: greedily apply structural mutations while
/// the *kind* of the first divergence is preserved. Deterministic; bounded
/// by `max_steps` accepted mutations.
pub fn shrink(base_cfg: &GpuConfig, case: &FuzzCase, fuel: u64, max_steps: usize) -> FuzzCase {
    let Some(first) = case.reports.first() else {
        return FuzzCase {
            kernel: case.kernel.clone(),
            reports: Vec::new(),
        };
    };
    let want = first.divergence.kind();
    let mut best = FuzzCase {
        kernel: case.kernel.clone(),
        reports: case.reports.clone(),
    };
    let mut steps = 0;
    'outer: while steps < max_steps {
        for m in best.kernel.mutants() {
            if let Some(c) = check_kernel(base_cfg, &m, fuel) {
                if c.reports.first().map(|r| r.divergence.kind()) == Some(want) {
                    best = c;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        break; // fixpoint: no mutant preserves the divergence
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_assembles() {
        for seed in 0..50 {
            let a = FuzzKernel::generate(seed);
            let b = FuzzKernel::generate(seed);
            assert_eq!(a.source(), b.source(), "seed {seed}");
            let k = a.assemble().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!analyze_insts(&k.insts).has_errors(), "seed {seed}");
        }
    }

    #[test]
    fn fuzz_smoke_engines_agree() {
        let cfg = GpuConfig::test_tiny();
        for seed in 0..25 {
            let case = run_seed(&cfg, seed, 1 << 22).expect("filter should pass");
            assert!(
                case.reports.is_empty(),
                "seed {seed}: {}",
                case.reports[0]
            );
        }
    }

    #[test]
    fn mutants_shrink_structure() {
        let k = FuzzKernel::generate(7);
        let total = count_nodes(&k.body);
        assert!(total >= 4);
        let ms = k.mutants();
        assert!(!ms.is_empty());
        // Drop-mutants must strictly reduce preorder node count.
        assert!(ms.iter().any(|m| count_nodes(&m.body) < total));
    }

    #[test]
    fn seeded_cell_is_deterministic() {
        let a = FuzzKernel::generate(3).cell();
        let b = FuzzKernel::generate(3).cell();
        assert_eq!(a.label(), b.label());
    }
}
