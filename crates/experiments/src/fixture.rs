//! Committed divergence fixtures for the differential oracle.
//!
//! A fixture is a plain assembly kernel (`.s`) whose comment header carries
//! `;; differ:` directives telling the harness how to launch it and what
//! the differential comparison is *expected* to find. Fixtures pin down
//! the deliberate semantic gaps between the reference interpreter and the
//! cycle-level simulator (`clock`, `%smid`, CTA residency limits) as well
//! as shrunken fuzzer reproducers, so a regression in either engine — or
//! in the comparison logic itself — turns a fixture red.
//!
//! Directive vocabulary (one per line, anywhere in the file):
//!
//! ```text
//! ;; differ: launch ctas=2 tpc=32
//! ;; differ: alloc out 64              ; zero-filled buffer, 64 words
//! ;; differ: alloc in 64 lcg 7         ; LCG-seeded buffer
//! ;; differ: alloc flag 1 init 0 ...   ; explicit initial words
//! ;; differ: param out                 ; kernel param: buffer base address
//! ;; differ: param 42                  ; kernel param: immediate
//! ;; differ: regs                      ; also compare per-thread registers
//! ;; differ: sms 2                     ; override the SM count
//! ;; differ: timeout-cycles 2000000    ; override the simulator cycle cap
//! ;; differ: chaos 42 2                ; run the simulator under chaos
//! ;; differ: post lock[0] == 0         ; postcondition on final memory
//! ;; differ: expect memory             ; agree | memory | register |
//! ;;                                   ; postcondition | ref-failed | ...
//! ```
//!
//! Declaring any `post` switches the fixture from bytewise ([`Equivalence::Exact`])
//! to postcondition comparison, mirroring how racy corpus workloads are
//! classified.
//!
//! [`Equivalence::Exact`]: workloads::Equivalence::Exact

use crate::differ::{check_cell, run_reference, DifferCell, DivergenceReport};
use crate::SchedConfig;
use simt_core::{BasePolicy, Gpu, GpuConfig, LaunchSpec};
use simt_isa::asm::assemble;
use simt_isa::Kernel;
use workloads::{Lcg, Postcond, Prepared, Stage, Workload};

/// How a fixture buffer is initialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Init {
    /// All words zero (the allocator default).
    Zero,
    /// Words drawn from [`Lcg`] with this seed.
    Lcg(u32),
    /// Explicit leading words (the rest stay zero).
    Words(Vec<u32>),
}

/// One named device allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSpec {
    /// Name referenced by `param` and `post` directives.
    pub name: String,
    /// Size in 32-bit words.
    pub words: u64,
    /// Initial contents.
    pub init: Init,
}

/// One kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamSpec {
    /// Base address of the named buffer.
    Buf(String),
    /// Immediate value.
    Imm(u32),
}

/// A `post buf[idx] == val` postcondition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostSpec {
    /// Buffer name.
    pub buf: String,
    /// Word index within the buffer.
    pub idx: u64,
    /// Required final value.
    pub val: u32,
}

/// A parsed fixture: the kernel plus its launch/compare description.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// Fixture name (from the file stem).
    pub name: String,
    /// The assembled kernel.
    pub kernel: Kernel,
    /// CTAs in the grid.
    pub ctas: usize,
    /// Threads per CTA.
    pub tpc: usize,
    /// Device allocations, in allocation order.
    pub allocs: Vec<AllocSpec>,
    /// Kernel parameters, in order.
    pub params: Vec<ParamSpec>,
    /// Also compare per-thread registers/predicates/shared memory.
    pub compare_regs: bool,
    /// SM-count override (residency-limit fixtures).
    pub sms: Option<usize>,
    /// Simulator cycle-cap override (hang fixtures).
    pub timeout_cycles: Option<u64>,
    /// Chaos `(seed, level)` for the simulator side.
    pub chaos: Option<(u64, u8)>,
    /// Postconditions on final memory (presence switches to racy compare).
    pub posts: Vec<PostSpec>,
    /// Expected divergence kind, or `"agree"`.
    pub expect: String,
}

impl Fixture {
    /// Parse fixture `source`, assembling the kernel and collecting all
    /// `;; differ:` directives.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed directive, a reference to an
    /// undeclared buffer, or the assembler error.
    pub fn parse(name: &str, source: &str) -> Result<Fixture, String> {
        let kernel = assemble(source).map_err(|e| format!("{name}: {e}"))?;
        let mut f = Fixture {
            name: name.to_string(),
            kernel,
            ctas: 1,
            tpc: 32,
            allocs: Vec::new(),
            params: Vec::new(),
            compare_regs: false,
            sms: None,
            timeout_cycles: None,
            chaos: None,
            posts: Vec::new(),
            expect: "agree".to_string(),
        };
        for line in source.lines() {
            let Some(rest) = line.trim().strip_prefix(";; differ:") else {
                continue;
            };
            parse_directive(&mut f, rest.trim())
                .map_err(|e| format!("{name}: directive `{}`: {e}", rest.trim()))?;
        }
        let named = |f: &Fixture, n: &str| f.allocs.iter().any(|a| a.name == n);
        for p in &f.params {
            if let ParamSpec::Buf(b) = p {
                if !named(&f, b) {
                    return Err(format!("{name}: param references undeclared buffer `{b}`"));
                }
            }
        }
        for p in &f.posts {
            if !named(&f, &p.buf) {
                return Err(format!("{name}: post references undeclared buffer `{}`", p.buf));
            }
        }
        Ok(f)
    }

    /// The matrix cell this fixture runs under: GTO baseline, plus any
    /// declared chaos.
    pub fn cell(&self) -> DifferCell {
        DifferCell {
            sched: SchedConfig::baseline(BasePolicy::Gto),
            chaos: self.chaos,
        }
    }

    /// The GPU configuration: `base` with this fixture's overrides applied.
    pub fn gpu_config(&self, base: &GpuConfig) -> GpuConfig {
        let mut cfg = base.clone();
        if let Some(sms) = self.sms {
            cfg.num_sms = sms;
        }
        if let Some(t) = self.timeout_cycles {
            cfg.max_cycles = t;
        }
        cfg
    }
}

fn parse_directive(f: &mut Fixture, d: &str) -> Result<(), String> {
    let mut it = d.split_whitespace();
    let verb = it.next().ok_or("empty directive")?;
    let toks: Vec<&str> = it.collect();
    match verb {
        "launch" => {
            for t in &toks {
                if let Some(v) = t.strip_prefix("ctas=") {
                    f.ctas = parse_num(v)? as usize;
                } else if let Some(v) = t.strip_prefix("tpc=") {
                    f.tpc = parse_num(v)? as usize;
                } else {
                    return Err(format!("unknown launch field `{t}`"));
                }
            }
            Ok(())
        }
        "alloc" => {
            let [name, words, rest @ ..] = toks.as_slice() else {
                return Err("want `alloc <name> <words> [lcg <seed> | init v...]`".into());
            };
            let init = match rest {
                [] => Init::Zero,
                ["lcg", seed] => Init::Lcg(parse_num(seed)? as u32),
                ["init", vals @ ..] => Init::Words(
                    vals.iter()
                        .map(|v| parse_num(v).map(|n| n as u32))
                        .collect::<Result<_, _>>()?,
                ),
                _ => return Err(format!("unknown alloc initializer `{}`", rest.join(" "))),
            };
            f.allocs.push(AllocSpec {
                name: name.to_string(),
                words: parse_num(words)?,
                init,
            });
            Ok(())
        }
        "param" => {
            let [p] = toks.as_slice() else {
                return Err("want `param <buffer|imm>`".into());
            };
            f.params.push(match parse_num(p) {
                Ok(n) => ParamSpec::Imm(n as u32),
                Err(_) => ParamSpec::Buf(p.to_string()),
            });
            Ok(())
        }
        "regs" => {
            f.compare_regs = true;
            Ok(())
        }
        "sms" => {
            let [n] = toks.as_slice() else { return Err("want `sms <n>`".into()) };
            f.sms = Some(parse_num(n)? as usize);
            Ok(())
        }
        "timeout-cycles" => {
            let [n] = toks.as_slice() else {
                return Err("want `timeout-cycles <n>`".into());
            };
            f.timeout_cycles = Some(parse_num(n)?);
            Ok(())
        }
        "chaos" => {
            let [seed, level] = toks.as_slice() else {
                return Err("want `chaos <seed> <level>`".into());
            };
            f.chaos = Some((parse_num(seed)?, parse_num(level)? as u8));
            Ok(())
        }
        "post" => {
            // `post <buf>[<idx>] == <val>`
            let [site, "==", val] = toks.as_slice() else {
                return Err("want `post <buf>[<idx>] == <val>`".into());
            };
            let (buf, idx) = site
                .strip_suffix(']')
                .and_then(|s| s.split_once('['))
                .ok_or("want `<buf>[<idx>]`")?;
            f.posts.push(PostSpec {
                buf: buf.to_string(),
                idx: parse_num(idx)?,
                val: parse_num(val)? as u32,
            });
            Ok(())
        }
        "expect" => {
            let [kind] = toks.as_slice() else { return Err("want `expect <kind>`".into()) };
            const KINDS: [&str; 8] = [
                "agree",
                "memory",
                "register",
                "predicate",
                "shared",
                "postcondition",
                "ref-failed",
                "sim-failed",
            ];
            if !KINDS.contains(kind) {
                return Err(format!("unknown expectation `{kind}`"));
            }
            f.expect = kind.to_string();
            Ok(())
        }
        _ => Err(format!("unknown directive verb `{verb}`")),
    }
}

fn parse_num(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|_| format!("bad number `{s}`"))
}

impl Workload for Fixture {
    fn name(&self) -> &'static str {
        "fixture"
    }

    // As in the fuzzer, `is_sync` doubles as "registers are
    // schedule-dependent": a fixture that declares `regs` promises
    // deterministic per-thread state.
    fn is_sync(&self) -> bool {
        !self.compare_regs
    }

    fn prepare(&self, gpu: &mut Gpu) -> Prepared {
        let g = gpu.mem_mut().gmem_mut();
        let mut bases = Vec::with_capacity(self.allocs.len());
        for a in &self.allocs {
            let base = g.alloc(a.words);
            match &a.init {
                Init::Zero => {}
                Init::Lcg(seed) => {
                    let mut lcg = Lcg::new(*seed);
                    for i in 0..a.words {
                        g.write_u32(base + i * 4, lcg.next_u32());
                    }
                }
                Init::Words(vals) => {
                    for (i, v) in vals.iter().enumerate() {
                        g.write_u32(base + i as u64 * 4, *v);
                    }
                }
            }
            bases.push((a.name.clone(), base));
        }
        let addr_of = |name: &str| bases.iter().find(|(n, _)| n == name).map(|&(_, b)| b);
        let params = self
            .params
            .iter()
            .map(|p| match p {
                ParamSpec::Buf(b) => addr_of(b).expect("validated at parse") as u32,
                ParamSpec::Imm(v) => *v,
            })
            .collect();
        let stages = vec![Stage {
            kernel: self.kernel.clone(),
            launch: LaunchSpec {
                grid_ctas: self.ctas,
                threads_per_cta: self.tpc,
                params,
            },
        }];
        if self.posts.is_empty() {
            // The reference interpreter is the expected result; per-engine
            // verification is vacuous.
            Prepared::exact(stages, |_gpu| Ok(()))
        } else {
            let posts = self
                .posts
                .iter()
                .map(|p| {
                    let addr = addr_of(&p.buf).expect("validated at parse") + p.idx * 4;
                    let (site, want) = (format!("{}[{}]", p.buf, p.idx), p.val);
                    Postcond::new(&site.clone(), move |g| {
                        let got = g.read_u32(addr);
                        if got == want {
                            Ok(())
                        } else {
                            Err(format!("{site} = {got:#x}, want {want:#x}"))
                        }
                    })
                })
                .collect();
            Prepared::racy(stages, posts)
        }
    }
}

/// Result of running one fixture through the differential harness.
pub struct FixtureOutcome {
    /// The parsed fixture.
    pub fixture: Fixture,
    /// Divergences found (workload field rewritten to the fixture name).
    pub reports: Vec<DivergenceReport>,
}

impl FixtureOutcome {
    /// Check the outcome against the fixture's `expect` directive.
    ///
    /// # Errors
    ///
    /// Describes the mismatch: an unexpected divergence, a missing
    /// expected one, or the wrong kind.
    pub fn verdict(&self) -> Result<(), String> {
        match (self.fixture.expect.as_str(), self.reports.first()) {
            ("agree", None) => Ok(()),
            ("agree", Some(r)) => Err(format!("expected agreement, got: {r}")),
            (want, None) => Err(format!("expected a `{want}` divergence, engines agreed")),
            (want, Some(r)) if r.divergence.kind() == want => Ok(()),
            (want, Some(r)) => Err(format!("expected `{want}`, got `{}`: {r}", r.divergence.kind())),
        }
    }
}

/// Run one fixture source through both engines and compare.
///
/// # Errors
///
/// Returns the parse/assembly error message; divergences are *not* errors
/// (they are the outcome, judged against `expect` by
/// [`FixtureOutcome::verdict`]).
pub fn check_fixture(
    base_cfg: &GpuConfig,
    name: &str,
    source: &str,
    fuel: u64,
) -> Result<FixtureOutcome, String> {
    let fixture = Fixture::parse(name, source)?;
    let cfg = fixture.gpu_config(base_cfg);
    let cell = fixture.cell();
    let reference = run_reference(&cfg, &fixture, fuel);
    let mut reports = check_cell(&cfg, &fixture, &cell, &reference);
    for r in &mut reports {
        r.workload = fixture.name.clone();
    }
    Ok(FixtureOutcome { fixture, reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::DEFAULT_FUEL;

    const COUNTER: &str = "\
;; differ: launch ctas=1 tpc=32
;; differ: alloc out 32
;; differ: param out
;; differ: regs
;; differ: expect agree
.kernel fix_counter
.regs 8
    ld.param r1, [0]
    mov r2, %gtid
    shl r3, r2, 2
    add r3, r1, r3
    add r4, r2, 7
    st.global [r3], r4
    exit
";

    #[test]
    fn parses_and_agrees() {
        let out = check_fixture(&GpuConfig::test_tiny(), "counter", COUNTER, DEFAULT_FUEL)
            .unwrap();
        assert!(out.fixture.compare_regs);
        assert_eq!(out.fixture.expect, "agree");
        out.verdict().unwrap();
    }

    #[test]
    fn rejects_unknown_directives_and_dangling_buffers() {
        let bad = ";; differ: lunch ctas=1\n.kernel k\nexit\n";
        assert!(Fixture::parse("bad", bad).is_err());
        let dangling = ";; differ: param nope\n.kernel k\n.regs 4\nexit\n";
        assert!(Fixture::parse("dangling", dangling)
            .unwrap_err()
            .contains("undeclared buffer"));
    }

    #[test]
    fn post_directive_switches_to_postcondition_compare() {
        let src = "\
;; differ: launch ctas=1 tpc=32
;; differ: alloc flag 4
;; differ: param flag
;; differ: post flag[0] == 9
;; differ: expect postcondition
.kernel fix_post
.regs 8
    ld.param r1, [0]
    mov r2, %gtid
    setp.eq.s32 p0, r2, 0
    mov r3, 5
    @p0 st.global [r1], r3
    exit
";
        let out =
            check_fixture(&GpuConfig::test_tiny(), "post", src, DEFAULT_FUEL).unwrap();
        // flag[0] ends up 5 on both engines; the post wants 9 → both sides
        // report a postcondition failure.
        out.verdict().unwrap();
        assert_eq!(out.reports.len(), 2);
    }
}
