//! Planted-defect kernels for the race/deadlock analyzer's recall oracle.
//!
//! The fuzzer ([`crate::fuzz`]) generates *well-synchronized* kernels to
//! exercise the differential harness; this module is its adversarial
//! counterpart. It generates a seeded, correctly-synchronized base kernel —
//! two nested-lock critical sections in the corpus's
//! branch-to-reconvergence spin idiom, separated by a `bar.sync` with a
//! `tid==0` publish — and then plants one of three known defects:
//!
//! * [`Mutation::DropRelease`] removes the final unlock of the second
//!   critical section (expected lint: `missing-release`; dynamically the
//!   launch hangs — every other thread spins on the orphaned lock);
//! * [`Mutation::SwapAcquireOrder`] reverses the nesting order in the
//!   second critical section, creating an ABBA cycle against the first
//!   (expected lint: `lock-cycle`; dynamically clean — within each phase
//!   the order is consistent, which is exactly why this bug class needs a
//!   static check);
//! * [`Mutation::HoistStore`] sinks the publish below the barrier so it
//!   races with the consumer loads (expected lint: `data-race`; the
//!   happens-before checker observes the race dynamically).
//!
//! Every mutant carries its expected diagnostic name, so the recall corpus
//! is self-annotating: `race_oracle` asserts the static analyzer reports
//! exactly the planted defect and nothing on the base.

use crate::fuzz::Rng;

/// Bump when the generated shape changes: committed expectations keyed by
/// seed are only comparable within one version.
pub const MUTANT_VERSION: u32 = 1;

/// The three planted defect classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop the final `!release` of the second critical section.
    DropRelease,
    /// Acquire B before A in the second critical section (ABBA).
    SwapAcquireOrder,
    /// Move the `tid==0` publish store below the separating barrier.
    HoistStore,
}

impl Mutation {
    pub const ALL: [Mutation; 3] = [
        Mutation::DropRelease,
        Mutation::SwapAcquireOrder,
        Mutation::HoistStore,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropRelease => "drop-release",
            Mutation::SwapAcquireOrder => "swap-acquire-order",
            Mutation::HoistStore => "hoist-store",
        }
    }

    /// The lint the static analyzer must report on the mutant.
    pub fn expected_lint(self) -> &'static str {
        match self {
            Mutation::DropRelease => "missing-release",
            Mutation::SwapAcquireOrder => "lock-cycle",
            Mutation::HoistStore => "data-race",
        }
    }

    /// Does the reference interpreter's happens-before checker observe a
    /// race on this mutant? Only the hoisted publish races dynamically:
    /// the dropped release hangs instead, and the ABBA swap is consistent
    /// within each barrier phase.
    pub fn expects_dynamic_race(self) -> bool {
        matches!(self, Mutation::HoistStore)
    }

    /// Does the mutant hang (fuel exhaustion) under the reference?
    pub fn expects_hang(self) -> bool {
        matches!(self, Mutation::DropRelease)
    }
}

/// One generated mutant: the clean base kernel and its mutated twin.
pub struct SyncMutant {
    pub seed: u64,
    pub mutation: Mutation,
    /// Kernel name of the mutated variant.
    pub name: String,
    /// Correctly-synchronized base source (must lint clean and run clean).
    pub base: String,
    /// Source with the defect planted.
    pub mutated: String,
    pub threads_per_cta: usize,
    /// Expected final value of the data word (param\[8\]) on a clean run:
    /// every thread increments once in CS1 and by `inc2` in CS2.
    pub expected_data: u32,
    /// Value the `tid==0` lane publishes to the flag word (param\[12\]).
    pub flag_value: u32,
}

struct Shape {
    tpc: usize,
    inc2: u32,
    flag_value: u32,
}

impl Shape {
    fn from_seed(seed: u64) -> Shape {
        let mut rng = Rng::new(seed ^ 0x5afe_5eed_0000_0000);
        Shape {
            tpc: rng.pick(&[64, 96, 128]),
            inc2: 1 + rng.below(3) as u32,
            flag_value: 7 + rng.below(5) as u32,
        }
    }
}

/// Emit one critical section in the branch-to-reconvergence idiom: spin
/// on a done-flag loop, take `first` then `second`, bump the data word,
/// unlock in reverse order. `keep_final_release` drops the outer unlock
/// on the success path when false (the REL arm keeps its release, so the
/// retry path is still correct — only the winner leaks the lock).
fn emit_cs(
    out: &mut String,
    idx: usize,
    first: &str,
    second: &str,
    inc: u32,
    keep_final_release: bool,
) {
    let cs = format!("CS{idx}");
    let rel = format!("REL{idx}");
    let ret = format!("RET{idx}");
    out.push_str(&format!(
        "    mov r9, 0\n\
         {cs}:\n\
         \x20   atom.global.cas r4, [{first}], 0, 1 !acquire\n\
         \x20   setp.eq.s32 p1, r4, 0\n\
         @!p1 bra {ret}\n\
         \x20   atom.global.cas r5, [{second}], 0, 1 !acquire\n\
         \x20   setp.eq.s32 p2, r5, 0\n\
         @!p2 bra {rel}\n\
         \x20   ld.global r6, [r3]\n\
         \x20   add r6, r6, {inc}\n\
         \x20   st.global [r3], r6\n\
         \x20   membar\n\
         \x20   atom.global.exch r7, [{second}], 0 !release\n"
    ));
    if keep_final_release {
        out.push_str(&format!("    atom.global.exch r8, [{first}], 0 !release\n"));
    }
    out.push_str(&format!(
        "    mov r9, 1\n\
         \x20   bra {ret}\n\
         {rel}:\n\
         \x20   atom.global.exch r8, [{first}], 0 !release\n\
         {ret}:\n\
         \x20   setp.eq.s32 p3, r9, 0\n\
         @p3 bra {cs} !sib\n"
    ));
}

fn emit(name: &str, shape: &Shape, mutation: Option<Mutation>) -> String {
    let swap = mutation == Some(Mutation::SwapAcquireOrder);
    let drop_rel = mutation == Some(Mutation::DropRelease);
    let hoist = mutation == Some(Mutation::HoistStore);

    let mut s = format!(
        ".kernel {name}\n\
         .regs 12\n\
         \x20   ld.param r1, [0]\n\
         \x20   ld.param r2, [4]\n\
         \x20   ld.param r3, [8]\n\
         \x20   ld.param r10, [12]\n"
    );
    emit_cs(&mut s, 1, "r1", "r2", 1, true);

    let publish = format!("@!p4 st.global [r10], {}\n", shape.flag_value);
    s.push_str("    mov r11, %tid\n    setp.ne.s32 p4, r11, 0\n");
    if !hoist {
        s.push_str(&publish);
    }
    s.push_str("    bar.sync\n");
    if hoist {
        s.push_str(&publish);
    }
    s.push_str("    ld.global r6, [r10]\n");

    let (first, second) = if swap { ("r2", "r1") } else { ("r1", "r2") };
    emit_cs(&mut s, 2, first, second, shape.inc2, !drop_rel);
    s.push_str("    exit\n");
    s
}

/// Generate the mutant for `seed` and `mutation`.
pub fn sync_mutant(seed: u64, mutation: Mutation) -> SyncMutant {
    let shape = Shape::from_seed(seed);
    let name = format!("mut_{}_{seed}", mutation.name().replace('-', "_"));
    let base = emit(&format!("sync_base_{seed}"), &shape, None);
    let mutated = emit(&name, &shape, Some(mutation));
    SyncMutant {
        seed,
        mutation,
        name,
        base,
        mutated,
        threads_per_cta: shape.tpc,
        expected_data: (shape.tpc as u32) * (1 + shape.inc2),
        flag_value: shape.flag_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_analyze::analyze_insts;
    use simt_isa::asm::assemble;

    fn lint_names(src: &str) -> Vec<(&'static str, simt_analyze::Severity)> {
        let k = assemble(src).expect("mutant assembles");
        analyze_insts(&k.insts)
            .diagnostics
            .into_iter()
            .map(|d| (d.kind.name(), d.severity))
            .collect()
    }

    #[test]
    fn base_kernels_lint_clean() {
        for seed in 0..8 {
            let m = sync_mutant(seed, Mutation::DropRelease);
            let diags = lint_names(&m.base);
            assert!(diags.is_empty(), "seed {seed}: {diags:?}\n{}", m.base);
        }
    }

    #[test]
    fn every_mutation_yields_its_expected_lint_as_error() {
        for seed in 0..8 {
            for mu in Mutation::ALL {
                let m = sync_mutant(seed, mu);
                let diags = lint_names(&m.mutated);
                assert!(
                    diags.contains(&(mu.expected_lint(), simt_analyze::Severity::Error)),
                    "seed {seed} {}: expected {} in {diags:?}\n{}",
                    mu.name(),
                    mu.expected_lint(),
                    m.mutated
                );
            }
        }
    }

    #[test]
    fn mutants_report_nothing_beyond_the_planted_defect() {
        // The analyzer must not drown the planted lint in noise: every
        // diagnostic on a mutant names the expected defect class.
        for seed in 0..4 {
            for mu in Mutation::ALL {
                let m = sync_mutant(seed, mu);
                for (name, _) in lint_names(&m.mutated) {
                    assert!(
                        name == mu.expected_lint()
                            // A dropped release inside a retry loop also
                            // reads as a spin that can't progress and as a
                            // re-acquire of a held lock on the back edge —
                            // both are the same planted defect.
                            || (mu == Mutation::DropRelease
                                && (name == "simt-deadlock" || name == "lock-cycle")),
                        "seed {seed} {}: stray lint {name}",
                        mu.name()
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = sync_mutant(3, Mutation::HoistStore);
        let b = sync_mutant(3, Mutation::HoistStore);
        assert_eq!(a.mutated, b.mutated);
        assert_eq!(a.base, b.base);
    }
}
