//! The static oracle against the real workload corpus, and the
//! static×dynamic join on live simulations.

use bows::HashKind;
use experiments::oracle::{oracle_stages, precision_recall};
use simt_analyze::AnalyzeExt;
use simt_core::{Gpu, GpuConfig};
use workloads::{rodinia_suite, sync_suite, Scale};

/// The static classification must reproduce the hand-written `!sib`
/// annotations on every kernel of both suites — no misses, no extras —
/// and every shipped kernel must be lint-clean.
#[test]
fn static_oracle_matches_annotations_on_whole_corpus() {
    let cfg = GpuConfig::test_tiny();
    let mut checked = 0;
    for w in sync_suite(Scale::Tiny)
        .into_iter()
        .chain(rodinia_suite(Scale::Tiny))
    {
        let mut gpu = Gpu::new(cfg.clone());
        let prepared = w.prepare(&mut gpu);
        for stage in &prepared.stages {
            let analysis = stage.kernel.analyze();
            assert_eq!(
                analysis.sib_pcs(),
                stage.kernel.true_sibs,
                "{}/{}: static spin set diverges from annotations",
                w.name(),
                stage.kernel.name
            );
            assert!(
                !analysis.has_errors(),
                "{}/{}: lint errors: {:#?}",
                w.name(),
                stage.kernel.name,
                analysis.diagnostics
            );
            assert!(
                analysis.diagnostics.is_empty(),
                "{}/{}: unexpected warnings: {:#?}",
                w.name(),
                stage.kernel.name,
                analysis.diagnostics
            );
            checked += 1;
        }
    }
    assert!(checked >= 22, "corpus shrank? checked {checked} kernels");
}

/// XOR DDOS confirmations on the sync suite are a subset of the static
/// spin set: every dynamic confirmation is statically classified (zero
/// false detections), and most executed spin branches are confirmed.
/// Recall is not required to be perfect — the static oracle proves a
/// branch *can* spin; at Tiny scale a lightly-contended one (TB's tree
/// insert) may execute without spinning long enough to confirm.
#[test]
fn xor_ddos_agrees_with_static_oracle_on_sync_suite() {
    let cfg = GpuConfig::test_tiny();
    let stages = oracle_stages(&cfg, &sync_suite(Scale::Tiny));
    for s in &stages {
        assert!(
            s.xor_false().is_empty(),
            "{}/{}: XOR confirmed non-spin branches {:?}",
            s.workload,
            s.kernel,
            s.xor_false()
        );
    }
    let pr = precision_recall(&stages, HashKind::Xor, Some(true));
    assert!(pr.tp > 0, "sync suite must exercise spin branches");
    assert_eq!(pr.precision(), 1.0);
    assert!(
        pr.recall() >= 0.8,
        "XOR should confirm nearly all executed spin branches: {pr:?}"
    );
}

/// MODULO hashing aliases power-of-two-stride loops (Figure 14): somewhere
/// in the Rodinia suite it confirms a branch the static oracle proves is a
/// plain counted loop, and the oracle reports it as a false detection.
/// XOR stays clean on the same runs.
#[test]
fn modulo_aliasing_reported_as_false_detection() {
    let cfg = GpuConfig::test_tiny();
    let stages = oracle_stages(&cfg, &rodinia_suite(Scale::Tiny));
    let mod_pr = precision_recall(&stages, HashKind::Modulo, Some(false));
    let xor_pr = precision_recall(&stages, HashKind::Xor, Some(false));
    assert_eq!(xor_pr.fp, 0, "XOR must not false-detect on Rodinia");
    assert!(
        mod_pr.fp > 0,
        "MODULO should alias at least one power-of-two-stride loop; \
         stages: {:?}",
        stages
            .iter()
            .map(|s| (s.workload.clone(), s.modulo_confirmed.clone()))
            .collect::<Vec<_>>()
    );
    let offenders: Vec<&str> = stages
        .iter()
        .filter(|s| !s.modulo_false().is_empty())
        .map(|s| s.workload.as_str())
        .collect();
    assert!(!offenders.is_empty());
    // No Rodinia kernel spins, so every MODULO confirmation is false.
    for s in &stages {
        assert_eq!(s.modulo_confirmed, s.modulo_false());
    }
}
