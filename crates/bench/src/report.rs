//! The `BENCH_<label>.json` tracked-performance report.
//!
//! A report records, per figure group, the wall time of a tiny-scale run
//! and the simulated-cycles-per-second throughput. Serialization is a
//! hand-rolled JSON subset (objects, arrays, strings, numbers) so the
//! format needs no registry crates and stays readable to external tools.
//!
//! Comparison semantics (see [`BenchReport::check_against`]): simulated
//! cycle counts are deterministic, so any cycle drift against the baseline
//! is a hard failure — it means simulator behavior changed, not the
//! machine. Wall time varies with hardware and load, so timing drift only
//! produces warnings.

use std::fmt::Write as _;

/// One figure group's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// Group name (mirrors the criterion group, e.g. `fig9_bows_vs_baseline`).
    pub name: String,
    /// Wall-clock milliseconds for the whole group.
    pub wall_ms: f64,
    /// Total simulated cycles across the group's runs (deterministic).
    pub cycles: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

/// A full `BENCH_<label>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report label (`baseline` for the committed reference).
    pub label: String,
    /// Problem scale the groups ran at (`tiny` for tracked reports).
    pub scale: String,
    /// Harness worker threads used.
    pub jobs: usize,
    /// Per-group measurements, in a fixed group order.
    pub groups: Vec<GroupResult>,
}

/// Wall-time slowdown (current / baseline) above which a warning fires.
pub const WALL_WARN_RATIO: f64 = 1.25;
/// Groups faster than this are pure noise; no wall-time warning below it.
pub const WALL_WARN_FLOOR_MS: f64 = 50.0;

impl BenchReport {
    /// The canonical file name for this report.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"label\": {},", json_string(&self.label));
        let _ = writeln!(s, "  \"scale\": {},", json_string(&self.scale));
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        s.push_str("  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {}, \"wall_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.1}}}",
                json_string(&g.name),
                g.wall_ms,
                g.cycles,
                g.cycles_per_sec
            );
            s.push_str(if i + 1 < self.groups.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report previously written by [`BenchReport::to_json`] (or
    /// any JSON document with the same shape).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text)?;
        let obj = v.as_object("top level")?;
        let mut groups = Vec::new();
        for (i, g) in Json::get(obj, "groups")?.as_array("groups")?.iter().enumerate() {
            let g = g.as_object(&format!("groups[{i}]"))?;
            groups.push(GroupResult {
                name: Json::get(g, "name")?.as_string("name")?,
                wall_ms: Json::get(g, "wall_ms")?.as_number("wall_ms")?,
                cycles: Json::get(g, "cycles")?.as_number("cycles")? as u64,
                cycles_per_sec: Json::get(g, "cycles_per_sec")?.as_number("cycles_per_sec")?,
            });
        }
        Ok(BenchReport {
            label: Json::get(obj, "label")?.as_string("label")?,
            scale: Json::get(obj, "scale")?.as_string("scale")?,
            jobs: Json::get(obj, "jobs")?.as_number("jobs")? as usize,
            groups,
        })
    }

    /// Compare this (current) report against a committed baseline.
    ///
    /// Returns `(failures, warnings)`: failures are scale mismatches,
    /// missing/extra groups, and *any* difference in simulated cycles;
    /// warnings are wall-time regressions beyond [`WALL_WARN_RATIO`] on
    /// groups slower than [`WALL_WARN_FLOOR_MS`].
    pub fn check_against(&self, baseline: &BenchReport) -> (Vec<String>, Vec<String>) {
        self.check_with(baseline, WALL_WARN_RATIO, false)
    }

    /// [`BenchReport::check_against`] with wall time as a *gate*: any group
    /// slower than [`WALL_WARN_FLOOR_MS`] whose wall-time ratio exceeds
    /// `tolerance` is a failure, not a warning. For CI jobs that must catch
    /// hot-path performance regressions, at the cost of sensitivity to
    /// runner load (pick `tolerance` with headroom; 1.25 is the default
    /// warning threshold).
    pub fn check_wall(&self, baseline: &BenchReport, tolerance: f64) -> (Vec<String>, Vec<String>) {
        self.check_with(baseline, tolerance, true)
    }

    fn check_with(
        &self,
        baseline: &BenchReport,
        wall_ratio: f64,
        wall_fails: bool,
    ) -> (Vec<String>, Vec<String>) {
        let mut failures = Vec::new();
        let mut warnings = Vec::new();
        if self.scale != baseline.scale {
            failures.push(format!(
                "scale mismatch: current `{}` vs baseline `{}`",
                self.scale, baseline.scale
            ));
        }
        for b in &baseline.groups {
            match self.groups.iter().find(|g| g.name == b.name) {
                None => failures.push(format!("group `{}` missing from current run", b.name)),
                Some(g) => {
                    if g.cycles != b.cycles {
                        failures.push(format!(
                            "group `{}`: simulated cycles changed {} -> {} \
                             (simulation is deterministic; investigate before re-baselining)",
                            b.name, b.cycles, g.cycles
                        ));
                    }
                    let ratio = g.wall_ms / b.wall_ms.max(1e-9);
                    if g.wall_ms > WALL_WARN_FLOOR_MS && ratio > wall_ratio {
                        let msg = format!(
                            "group `{}`: wall time {:.1}ms vs baseline {:.1}ms ({ratio:.1}x, \
                             tolerance {wall_ratio:.2}x)",
                            b.name, g.wall_ms, b.wall_ms
                        );
                        if wall_fails {
                            failures.push(msg);
                        } else {
                            warnings.push(msg);
                        }
                    }
                }
            }
        }
        for g in &self.groups {
            if !baseline.groups.iter().any(|b| b.name == g.name) {
                failures.push(format!(
                    "group `{}` absent from baseline (re-baseline to track it)",
                    g.name
                ));
            }
        }
        (failures, warnings)
    }

    /// Per-group wall-time deltas against a baseline, one line per group
    /// present in both reports. Always produced (speedups included), so
    /// CI output shows what the run cost even when nothing regressed;
    /// regressions beyond [`WALL_WARN_RATIO`] additionally warn via
    /// [`BenchReport::check_against`].
    pub fn wall_deltas(&self, baseline: &BenchReport) -> Vec<String> {
        let mut out = Vec::new();
        for b in &baseline.groups {
            let Some(g) = self.groups.iter().find(|g| g.name == b.name) else {
                continue;
            };
            let ratio = g.wall_ms / b.wall_ms.max(1e-9);
            out.push(format!(
                "group `{}`: wall {:.1}ms vs baseline {:.1}ms ({:+.1}%), \
                 {:.0} vs {:.0} cycles/sec",
                b.name,
                g.wall_ms,
                b.wall_ms,
                (ratio - 1.0) * 100.0,
                g.cycles_per_sec,
                b.cycles_per_sec,
            ));
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value, just enough for the report schema.
#[derive(Debug, Clone)]
enum Json {
    Null,
    // The value is only ever matched structurally by the report schema.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key `{key}`"))
    }

    fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn as_string(&self, what: &str) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn as_number(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected number")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(n).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            c => {
                // Re-decode multi-byte UTF-8 sequences from the source.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let mut end = *pos;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            label: "baseline".into(),
            scale: "tiny".into(),
            jobs: 2,
            groups: vec![
                GroupResult {
                    name: "fig9".into(),
                    wall_ms: 123.456,
                    cycles: 1_000_000,
                    cycles_per_sec: 8_100_000.0,
                },
                GroupResult {
                    name: "table1".into(),
                    wall_ms: 60.0,
                    cycles: 42,
                    cycles_per_sec: 700.0,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn check_flags_cycle_drift_and_missing_groups() {
        let base = sample();
        let mut cur = sample();
        cur.groups[0].cycles += 1;
        cur.groups.remove(1);
        let (failures, warnings) = cur.check_against(&base);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("cycles changed"));
        assert!(failures[1].contains("missing"));
        assert!(warnings.is_empty());
    }

    #[test]
    fn check_warns_on_large_wall_regression_only() {
        let base = sample();
        let mut cur = sample();
        cur.groups[0].wall_ms *= 10.0; // above floor: warns
        cur.groups[1].wall_ms = 40.0; // below floor even after blowup: silent
        let (failures, warnings) = cur.check_against(&base);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
    }

    #[test]
    fn check_wall_promotes_regressions_to_failures() {
        let base = sample();
        let mut cur = sample();
        cur.groups[0].wall_ms *= 2.0;
        let (failures, warnings) = cur.check_wall(&base, 1.5);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("tolerance 1.50x"));
        assert!(warnings.is_empty());
        let (failures, warnings) = cur.check_wall(&base, 3.0);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(warnings.is_empty(), "within tolerance is silent: {warnings:?}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("[1,2]").is_err());
    }
}
