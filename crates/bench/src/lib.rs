//! Benchmark support crate; the benchmarks live in benches/.
