//! Benchmark support crate.
//!
//! Two halves:
//!
//! * [`report`] — the `BENCH_<label>.json` tracked-performance format:
//!   wall-time and cycles-per-second per figure group, written by the
//!   `bench_report` experiment binary and compared in CI against the
//!   committed baseline. No registry dependencies, so workspace members
//!   can use it offline.
//! * `benches/` — criterion benchmarks (one group per paper table/figure
//!   at reduced sizes); these need the registry for criterion itself.

pub mod report;
