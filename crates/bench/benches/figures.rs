//! Criterion benchmarks mirroring the paper's evaluation, one group per
//! table/figure, at reduced ("tiny") sizes so `cargo bench` stays fast.
//! The full-size regenerators are the `experiments` binaries; these benches
//! give cheap, tracked wall-clock signals for the same code paths.

use bows::{AdaptiveConfig, DdosConfig, DelayMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simt_core::{BasePolicy, GpuConfig};
use workloads::sync::{Hashtable, HtMode};
use workloads::{rodinia_suite, run_baseline, run_workload, sync_suite, Scale, Workload};

fn cfg() -> GpuConfig {
    GpuConfig::test_tiny()
}

fn run_bows(w: &dyn Workload, base: BasePolicy, delay: DelayMode) {
    let cfg = cfg();
    let res = run_workload(
        &cfg,
        w,
        &bows::policy_factory(base, Some(delay), cfg.gto_rotate_period),
        &bows::ddos_factory(DdosConfig::default(), cfg.warps_per_sm()),
    )
    .expect("run");
    assert!(res.verified.is_ok() || matches!(w.name(), "HT-ideal"));
}

/// Figure 1: the hashtable motivation kernel across contention levels.
fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_hashtable_contention");
    g.sample_size(10);
    for buckets in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(buckets), &buckets, |b, &bk| {
            let ht = Hashtable::with_params(256, 2, bk, 128);
            b.iter(|| run_baseline(&cfg(), &ht, BasePolicy::Gto).unwrap())
        });
    }
    g.finish();
}

/// Figure 2: the three baseline policies over a contended kernel.
fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_baseline_policies");
    g.sample_size(10);
    for policy in [BasePolicy::Lrr, BasePolicy::Gto, BasePolicy::Cawa] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| {
                let ht = Hashtable::with_params(256, 2, 8, 128);
                b.iter(|| run_baseline(&cfg(), &ht, p).unwrap())
            },
        );
    }
    g.finish();
}

/// Figure 3: the software back-off variant.
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_software_backoff");
    g.sample_size(10);
    for factor in [0u32, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            let mode = if f == 0 {
                HtMode::Normal
            } else {
                HtMode::SwBackoff { factor: f }
            };
            let ht = Hashtable::with_params(128, 2, 4, 128).with_mode(mode);
            b.iter(|| run_baseline(&cfg(), &ht, BasePolicy::Gto).unwrap())
        });
    }
    g.finish();
}

/// Table I: DDOS observation cost across the whole sync suite.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("ddos_on_sync_suite", |b| {
        let suite = sync_suite(Scale::Tiny);
        b.iter(|| {
            for w in &suite {
                run_bows(w.as_ref(), BasePolicy::Gto, DelayMode::Fixed(1000));
            }
        })
    });
    g.finish();
}

/// Figures 9/15: baseline vs BOWS(adaptive) on the hashtable.
fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_bows_vs_baseline");
    g.sample_size(10);
    let ht = Hashtable::with_params(256, 2, 4, 128);
    g.bench_function("gto", |b| {
        b.iter(|| run_baseline(&cfg(), &ht, BasePolicy::Gto).unwrap())
    });
    g.bench_function("gto_bows_adaptive", |b| {
        b.iter(|| {
            run_bows(
                &ht,
                BasePolicy::Gto,
                DelayMode::Adaptive(AdaptiveConfig::default()),
            )
        })
    });
    g.finish();
}

/// Figures 10-13: the delay sweep on one kernel.
fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_delay_sweep");
    g.sample_size(10);
    for delay in [0u64, 1000, 5000] {
        g.bench_with_input(BenchmarkId::from_parameter(delay), &delay, |b, &d| {
            let ht = Hashtable::with_params(256, 2, 4, 128);
            b.iter(|| run_bows(&ht, BasePolicy::Gto, DelayMode::Fixed(d)))
        });
    }
    g.finish();
}

/// Figure 14: sync-free kernels under DDOS observation.
fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("syncfree_under_bows", |b| {
        let suite = rodinia_suite(Scale::Tiny);
        b.iter(|| {
            for w in suite.iter().take(4) {
                run_bows(w.as_ref(), BasePolicy::Gto, DelayMode::Fixed(5000));
            }
        })
    });
    g.finish();
}

/// Figure 16: the ideal-blocking proxy vs the spin-lock kernel.
fn bench_fig16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_ideal_blocking");
    g.sample_size(10);
    g.bench_function("spinlock", |b| {
        let ht = Hashtable::with_params(256, 2, 4, 128);
        b.iter(|| run_baseline(&cfg(), &ht, BasePolicy::Gto).unwrap())
    });
    g.bench_function("ideal", |b| {
        let ht = Hashtable::with_params(256, 2, 4, 128).with_mode(HtMode::IdealNoLock);
        b.iter(|| run_baseline(&cfg(), &ht, BasePolicy::Gto).unwrap())
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_table1,
    bench_fig9,
    bench_fig10,
    bench_fig14,
    bench_fig16
);
criterion_main!(figures);
