//! Microbenchmarks of the simulator's hot components: cache lookups,
//! coalescing, the SIMT stack, the scoreboard, DDOS history updates and the
//! assembler. These bound the cost of a simulated cycle.

use bows::{DdosConfig, HashKind, WarpHistory};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simt_core::{Scoreboard, SimtStack};
use simt_isa::asm::assemble;
use simt_isa::{Inst, Op, Reg, Ty};
use simt_mem::{Cache, Coalescer, LaneAccess};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_hit", |b| {
        let mut cache = Cache::new(16 * 1024, 4);
        for i in 0..64u64 {
            cache.fill(i * 128);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(cache.access(i * 128))
        })
    });
    c.bench_function("cache_fill_evict", |b| {
        let mut cache = Cache::new(16 * 1024, 4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.fill(i * 128))
        })
    });
}

fn bench_coalescer(c: &mut Criterion) {
    let unit: Vec<LaneAccess> = (0..32)
        .map(|l| LaneAccess {
            lane: l,
            addr: 0x1000 + l as u64 * 4,
        })
        .collect();
    let scatter: Vec<LaneAccess> = (0..32)
        .map(|l| LaneAccess {
            lane: l,
            addr: l as u64 * 128,
        })
        .collect();
    c.bench_function("coalesce_unit_stride", |b| {
        b.iter(|| black_box(Coalescer::coalesce(&unit)))
    });
    c.bench_function("coalesce_full_scatter", |b| {
        b.iter(|| black_box(Coalescer::coalesce(&scatter)))
    });
}

fn bench_simt_stack(c: &mut Criterion) {
    c.bench_function("simt_stack_diverge_reconverge", |b| {
        b.iter(|| {
            let mut s = SimtStack::new(u32::MAX, 0);
            s.branch(0x0000_ffff, 10, 1, 20);
            s.advance(20);
            s.advance(20);
            black_box(s.active_mask())
        })
    });
}

fn bench_scoreboard(c: &mut Criterion) {
    let producer = Inst::mov(Reg(5), 1);
    let consumer = Inst::binary(Op::Add(Ty::S32), Reg(6), Reg(5), 1);
    c.bench_function("scoreboard_hazard_check", |b| {
        let mut sb = Scoreboard::new();
        sb.reserve(&producer);
        b.iter(|| black_box(sb.has_hazard(&consumer)))
    });
}

fn bench_ddos_history(c: &mut Criterion) {
    c.bench_function("ddos_history_observe_spin", |b| {
        let cfg = DdosConfig::default();
        let mut h = WarpHistory::new(cfg.hash, cfg.path_bits, cfg.value_bits, cfg.history_len);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            if flip {
                h.observe(3, [1, 0]);
            } else {
                h.observe(9, [0, 0]);
            }
            black_box(h.spinning())
        })
    });
    c.bench_function("ddos_xor_hash", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = v.wrapping_add(0x9e3779b9);
            black_box(HashKind::Xor.hash(v, 8))
        })
    });
}

fn bench_assembler(c: &mut Criterion) {
    const SRC: &str = r#"
        .kernel bench
        .regs 16
        .params 2
            ld.param r1, [0]
            mov r2, %gtid
        top:
            atom.global.cas r3, [r1], 0, 1 !acquire
            setp.eq.s32 p1, r3, 0
        @!p1 bra top !sib
            atom.global.exch r4, [r1], 0 !release
            exit
    "#;
    c.bench_function("assemble_spin_kernel", |b| {
        b.iter(|| black_box(assemble(SRC).unwrap()))
    });
}

criterion_group!(
    micro,
    bench_cache,
    bench_coalescer,
    bench_simt_stack,
    bench_scoreboard,
    bench_ddos_history,
    bench_assembler
);
criterion_main!(micro);
