//! Versioned, checksummed binary snapshot codec for crash-safe durability.
//!
//! Every piece of persistent simulator state — full-machine checkpoints
//! written by `bows-run --checkpoint-every`, and the append-only result
//! store behind `bows-serve --state-dir` — goes through this crate. The
//! format is deliberately boring:
//!
//! * a fixed envelope: magic `b"BSNP"`, a format version, the body length,
//!   and an FNV-1a checksum over the body;
//! * little-endian primitive fields appended by [`SnapWriter`] and read
//!   back by [`SnapReader`] with bounds checks on every access.
//!
//! The whole-body checksum is the crash-safety contract: any truncation,
//! torn write, or bit flip of a stored snapshot fails [`decode_envelope`]
//! with a structured [`SnapshotError`] *before* a single field is decoded,
//! so a corrupt file can never partially mutate simulator state. On top of
//! that, [`SnapReader`] never trusts embedded lengths: collection sizes
//! are capped by the bytes actually remaining, so even a maliciously
//! crafted body that passes the checksum cannot drive allocations past the
//! input size.
//!
//! [`atomic_write`] implements the write-side protocol: temp file in the
//! target directory, `fsync`, rename over the destination. A crash at any
//! point leaves either the old complete file or the new complete file.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First four bytes of every snapshot envelope.
pub const MAGIC: [u8; 4] = *b"BSNP";

/// Current snapshot format version. Bump on any incompatible layout
/// change; readers reject other versions with
/// [`SnapshotError::UnsupportedVersion`].
pub const VERSION: u32 = 2;

/// Envelope size: magic (4) + version (4) + body length (8) + checksum (8).
pub const ENVELOPE_BYTES: usize = 24;

/// FNV-1a over a byte slice — the body checksum. Stable, dependency-free,
/// and plenty for corruption *detection* (this is not an integrity MAC;
/// snapshots are trusted local files).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Structured decode/IO failure. Every corrupt or hostile input must land
/// on one of these — never a panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Input ended before the envelope or body was complete.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes were not `b"BSNP"`.
    BadMagic,
    /// Envelope version this reader does not understand.
    UnsupportedVersion {
        /// Version found in the envelope.
        found: u32,
    },
    /// Body checksum did not match the envelope.
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        expected: u64,
        /// Checksum computed over the body as read.
        actual: u64,
    },
    /// The body passed the checksum but a field failed validation
    /// (impossible discriminant, inconsistent lengths, …).
    Malformed {
        /// What was being decoded when the inconsistency was found.
        what: String,
    },
    /// Underlying filesystem failure while reading or writing.
    Io {
        /// The operation that failed (for the error message).
        what: String,
        /// OS error kind (the `io::Error` itself is not `Clone`/`PartialEq`).
        kind: io::ErrorKind,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (this build reads {VERSION})")
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: expected {expected:#018x}, got {actual:#018x}"
            ),
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapshotError::Io { what, kind } => write!(f, "snapshot io error: {what}: {kind}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    /// Shorthand for [`SnapshotError::Malformed`].
    pub fn malformed(what: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed { what: what.into() }
    }

    fn io(what: impl Into<String>, e: &io::Error) -> SnapshotError {
        SnapshotError::Io { what: what.into(), kind: e.kind() }
    }
}

/// Append-only little-endian field writer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Fresh empty body.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Finished body bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize as u64 (platform-independent encoding).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an f64 by bit pattern (exact round-trip, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian field reader over a decoded body.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the reader consumed the body exactly.
    pub fn expect_exhausted(&self) -> Result<(), SnapshotError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SnapshotError::malformed(format!(
                "{} trailing bytes after last field",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { needed: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::malformed(format!("bool byte {b}"))),
        }
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Read a u64-encoded usize, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::malformed(format!("usize overflow: {v}")))
    }

    /// Read an f64 by bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an embedded collection length, capped so that `len * min_elem_bytes`
    /// can never exceed the bytes remaining. This is the allocation guard:
    /// even a checksum-valid but hostile body cannot make a decoder reserve
    /// more memory than the input it arrived in.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if n > cap {
            return Err(SnapshotError::malformed(format!(
                "length {n} exceeds remaining input (cap {cap})"
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapshotError::malformed("string is not UTF-8"))
    }
}

/// Wrap a body in the magic/version/length/checksum envelope.
pub fn encode_envelope(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_BYTES + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validate the envelope and return the body slice. Fails — without having
/// produced any partial result — on truncation, wrong magic, unknown
/// version, length mismatch, or checksum mismatch.
pub fn decode_envelope(data: &[u8]) -> Result<&[u8], SnapshotError> {
    if data.len() < ENVELOPE_BYTES {
        return Err(SnapshotError::Truncated { needed: ENVELOPE_BYTES, have: data.len() });
    }
    if data[0..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let body_len = u64::from_le_bytes([
        data[8], data[9], data[10], data[11], data[12], data[13], data[14], data[15],
    ]);
    let body_len = usize::try_from(body_len)
        .map_err(|_| SnapshotError::malformed(format!("body length overflow: {body_len}")))?;
    let avail = data.len() - ENVELOPE_BYTES;
    if body_len != avail {
        // Longer-than-declared is torn/garbage-appended; shorter is truncated.
        if body_len > avail {
            return Err(SnapshotError::Truncated {
                needed: ENVELOPE_BYTES + body_len,
                have: data.len(),
            });
        }
        return Err(SnapshotError::malformed(format!(
            "body length {body_len} disagrees with file size {avail}"
        )));
    }
    let expected = u64::from_le_bytes([
        data[16], data[17], data[18], data[19], data[20], data[21], data[22], data[23],
    ]);
    let body = &data[ENVELOPE_BYTES..];
    let actual = fnv1a(body);
    if actual != expected {
        return Err(SnapshotError::ChecksumMismatch { expected, actual });
    }
    Ok(body)
}

/// Write `data` to `path` atomically: a unique temp file in the same
/// directory, flushed and fsynced, then renamed over the destination. The
/// directory is fsynced afterwards so the rename itself is durable. A
/// crash at any point leaves `path` either absent, the old version, or the
/// new version — never a torn mix.
pub fn atomic_write(path: &Path, data: &[u8]) -> Result<(), SnapshotError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| SnapshotError::malformed(format!("no file name in {}", path.display())))?;
    let mut tmp: PathBuf = dir.map(Path::to_path_buf).unwrap_or_default();
    // Uniquify with the pid so concurrent writers in the same directory
    // never stomp each other's temp file.
    tmp.push(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
    let result = (|| {
        let mut f = fs::File::create(&tmp)
            .map_err(|e| SnapshotError::io(format!("create {}", tmp.display()), &e))?;
        f.write_all(data)
            .map_err(|e| SnapshotError::io(format!("write {}", tmp.display()), &e))?;
        f.sync_all()
            .map_err(|e| SnapshotError::io(format!("fsync {}", tmp.display()), &e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| {
            SnapshotError::io(format!("rename {} -> {}", tmp.display(), path.display()), &e)
        })?;
        if let Some(d) = dir {
            // Make the rename durable. Failure here is reported: the data
            // is correct but not guaranteed on disk yet.
            let df = fs::File::open(d)
                .map_err(|e| SnapshotError::io(format!("open dir {}", d.display()), &e))?;
            df.sync_all()
                .map_err(|e| SnapshotError::io(format!("fsync dir {}", d.display()), &e))?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Read a whole snapshot file.
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    fs::read(path).map_err(|e| SnapshotError::io(format!("read {}", path.display()), &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.usize(123_456);
        w.f64(-0.5);
        w.f64(f64::NAN);
        w.bytes(b"hello");
        w.str("wörld");
        let body = w.into_bytes();
        let mut r = SnapReader::new(&body);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap(), -0.5);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "wörld");
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn envelope_round_trip() {
        let body = b"some body bytes".to_vec();
        let enc = encode_envelope(&body);
        assert_eq!(decode_envelope(&enc).unwrap(), &body[..]);
    }

    #[test]
    fn every_truncation_is_structured() {
        let enc = encode_envelope(b"0123456789abcdef");
        for n in 0..enc.len() {
            let err = decode_envelope(&enc[..n]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. } | SnapshotError::Malformed { .. }),
                "truncation to {n} gave {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let enc = encode_envelope(b"payload under test");
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_envelope(&bad).is_err(),
                    "flip of byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn hostile_length_cannot_over_allocate() {
        // A checksum-valid body claiming a 2^60-element vector must fail
        // the remaining-bytes cap, not reserve memory.
        let mut w = SnapWriter::new();
        w.u64(1 << 60);
        let body = w.into_bytes();
        let mut r = SnapReader::new(&body);
        assert!(matches!(r.len(8), Err(SnapshotError::Malformed { .. })));
        let mut r2 = SnapReader::new(&body);
        assert!(r2.bytes().is_err());
    }

    #[test]
    fn bad_magic_and_version() {
        let mut enc = encode_envelope(b"x");
        enc[0] = b'X';
        assert!(matches!(decode_envelope(&enc), Err(SnapshotError::BadMagic)));
        let mut enc2 = encode_envelope(b"x");
        enc2[4] = 99;
        assert!(matches!(
            decode_envelope(&enc2),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn atomic_write_round_trip_and_overwrite() {
        let dir = std::env::temp_dir().join(format!("simt-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer payload");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
