//! Property-style tests for DDOS and BOWS: detection soundness over
//! synthetic observation streams, hashing bounds, and scheduler-state
//! invariants.
//!
//! Uses a local deterministic PRNG rather than an external property-test
//! framework so the suite builds and runs fully offline.

use bows::{AdaptiveConfig, Bows, Ddos, DdosConfig, DelayMode, HashKind, WarpHistory};
use simt_core::sched::{IssueInfo, SchedCtx, WarpMeta};
use simt_core::{SchedulerPolicy, SpinDetector};

/// Deterministic splitmix64 generator for test-case construction.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn word(&mut self) -> u32 {
        self.next() as u32
    }
}

fn meta(n: usize) -> Vec<WarpMeta> {
    (0..n)
        .map(|i| WarpMeta {
            resident: true,
            done: false,
            age_key: i as u64,
            eligible: true,
        })
        .collect()
}

/// Hash outputs always fit the configured width, for both schemes.
#[test]
fn hash_respects_width() {
    let mut rng = Rng::new(1);
    for _ in 0..256 {
        let v = rng.word();
        let bits = rng.range(1, 17) as u8;
        for kind in [HashKind::Xor, HashKind::Modulo] {
            assert!(u32::from(kind.hash(v, bits)) < (1u32 << bits));
        }
    }
}

/// Any strictly periodic setp stream (period <= (l-1)/2) with constant
/// values is eventually classified as spinning.
#[test]
fn periodic_streams_are_detected() {
    for seed in 0..128 {
        let mut rng = Rng::new(seed);
        let period = rng.range(1, 4) as usize;
        let reps = rng.range(4, 20);
        let pcs: Vec<usize> = (0..3).map(|_| rng.range(0, 64) as usize).collect();
        let vals: Vec<u32> = (0..3).map(|_| rng.word()).collect();
        let mut h = WarpHistory::new(HashKind::Xor, 8, 8, 8);
        for _ in 0..reps {
            for i in 0..period {
                h.observe(pcs[i], [vals[i], vals[(i + 1) % period]]);
            }
        }
        // Distinct PCs guarantee a clean period; duplicated PCs in the
        // sample may detect a shorter period — also spinning. Either way,
        // after `reps >= 4` full periods the warp must be spinning.
        assert!(h.spinning(), "seed {seed} period {period} reps {reps}");
    }
}

/// A stream whose value changes every observation is never classified as
/// spinning under XOR hashing (the Figure 7c property).
#[test]
fn changing_values_never_spin() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed);
        let pc = rng.range(0, 64) as usize;
        let start = rng.word();
        let n = rng.range(5, 100) as u32;
        let mut h = WarpHistory::new(HashKind::Xor, 8, 8, 8);
        for i in 0..n {
            h.observe(pc, [start.wrapping_add(i), 1000]);
            assert!(!h.spinning(), "seed {seed} iteration {i}");
        }
    }
}

/// DDOS never confirms a forward branch, no matter the stream.
#[test]
fn forward_branches_never_confirmed() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed);
        let mut d = Ddos::new(DdosConfig::default(), 8);
        let nevents = rng.range(1, 200);
        for i in 0..nevents {
            let warp = rng.range(0, 8) as usize;
            let pc = rng.range(0, 32) as usize;
            let val = rng.word();
            d.on_setp(i, warp, pc, [val, 0]);
            // Forward branch: target beyond pc.
            d.on_branch(i, warp, pc, pc + 1, true);
        }
        assert!(d.confirmed_sibs().is_empty(), "seed {seed}");
    }
}

/// BOWS invariants under arbitrary event interleavings: a warp is in the
/// backed-off queue iff its flag says so; issuing always clears the state;
/// picks stay within the eligible set.
#[test]
fn bows_state_machine_consistent() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed);
        let m = meta(8);
        let mut b = Bows::new(
            simt_core::BasePolicy::Gto.build(50_000),
            DelayMode::Fixed(100),
        );
        let nevents = rng.range(1, 300);
        for now in 1..=nevents {
            let warp = rng.range(0, 8) as usize;
            let ctx = SchedCtx {
                now,
                meta: &m,
                resident_version: 1,
            };
            match rng.range(0, 3) {
                0 => b.on_sib(&ctx, warp),
                1 => {
                    b.on_issue(&ctx, warp, &IssueInfo::default());
                    assert!(!b.is_backed_off(warp), "issue clears state (seed {seed})");
                }
                _ => {
                    let eligible: Vec<usize> = (0..8).filter(|&w| b.can_issue(now, w)).collect();
                    if !eligible.is_empty() {
                        let pick = b.pick(&ctx, &eligible);
                        if let Some(w) = pick {
                            assert!(eligible.contains(&w), "seed {seed}");
                        }
                    }
                }
            }
        }
    }
}

/// The adaptive controller's delay limit always stays in [min, max] after
/// any sequence of windows.
#[test]
fn adaptive_limit_always_clamped() {
    for seed in 0..16 {
        let mut rng = Rng::new(seed);
        let acfg = AdaptiveConfig {
            window: 10,
            step: 250,
            frac1: 0.1,
            frac2: 0.8,
            min: 100,
            max: 2000,
        };
        let m = meta(2);
        let mut b = Bows::new(simt_core::BasePolicy::Lrr.build(1), DelayMode::Adaptive(acfg));
        let mut now = 0u64;
        let windows = rng.range(1, 20);
        for _ in 0..windows {
            let sib = rng.range(0, 500);
            let total = rng.range(0, 500).max(sib);
            for i in 0..total {
                let ctx = SchedCtx {
                    now,
                    meta: &m,
                    resident_version: 1,
                };
                b.on_issue(
                    &ctx,
                    0,
                    &IssueInfo {
                        is_sib: i < sib,
                        ..IssueInfo::default()
                    },
                );
                now += 1;
                let ctx = SchedCtx {
                    now,
                    meta: &m,
                    resident_version: 1,
                };
                b.end_cycle(&ctx, &[0, 1], Some(0));
                let limit = b.current_delay_limit();
                assert!((100..=2000).contains(&limit), "limit {limit} (seed {seed})");
            }
        }
    }
}
