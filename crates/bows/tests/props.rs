//! Property-based tests for DDOS and BOWS: detection soundness over
//! synthetic observation streams, hashing bounds, and scheduler-state
//! invariants.

use bows::{AdaptiveConfig, Bows, Ddos, DdosConfig, DelayMode, HashKind, WarpHistory};
use proptest::prelude::*;
use simt_core::sched::{IssueInfo, SchedCtx, WarpMeta};
use simt_core::{SchedulerPolicy, SpinDetector};

fn meta(n: usize) -> Vec<WarpMeta> {
    (0..n)
        .map(|i| WarpMeta {
            resident: true,
            done: false,
            age_key: i as u64,
            eligible: true,
        })
        .collect()
}

proptest! {
    /// Hash outputs always fit the configured width, for both schemes.
    #[test]
    fn hash_respects_width(v in any::<u32>(), bits in 1u8..=16) {
        for kind in [HashKind::Xor, HashKind::Modulo] {
            prop_assert!(u32::from(kind.hash(v, bits)) < (1u32 << bits));
        }
    }

    /// Any strictly periodic setp stream (period <= (l-1)/2) with constant
    /// values is eventually classified as spinning.
    #[test]
    fn periodic_streams_are_detected(
        period in 1usize..=3,
        reps in 4usize..20,
        pcs in proptest::collection::vec(0usize..64, 3),
        vals in proptest::collection::vec(any::<u32>(), 3)
    ) {
        let mut h = WarpHistory::new(HashKind::Xor, 8, 8, 8);
        for _ in 0..reps {
            for i in 0..period {
                h.observe(pcs[i], [vals[i], vals[(i + 1) % period]]);
            }
        }
        // Distinct PCs guarantee a clean period; duplicated PCs in the
        // sample may detect a shorter period — also spinning. Either way,
        // after `reps >= 4` full periods the warp must be spinning.
        prop_assert!(h.spinning());
    }

    /// A stream whose value changes every observation is never classified
    /// as spinning under XOR hashing (the Figure 7c property).
    #[test]
    fn changing_values_never_spin(
        pc in 0usize..64,
        start in any::<u32>(),
        n in 5usize..100
    ) {
        let mut h = WarpHistory::new(HashKind::Xor, 8, 8, 8);
        for i in 0..n as u32 {
            h.observe(pc, [start.wrapping_add(i), 1000]);
            prop_assert!(!h.spinning(), "iteration {i}");
        }
    }

    /// DDOS never confirms a forward branch, no matter the stream.
    #[test]
    fn forward_branches_never_confirmed(
        events in proptest::collection::vec((0usize..8, 0usize..32, any::<u32>()), 1..200)
    ) {
        let mut d = Ddos::new(DdosConfig::default(), 8);
        for (i, (warp, pc, val)) in events.iter().enumerate() {
            d.on_setp(i as u64, *warp, *pc, [*val, 0]);
            // Forward branch: target beyond pc.
            d.on_branch(i as u64, *warp, *pc, pc + 1, true);
        }
        prop_assert!(d.confirmed_sibs().is_empty());
    }

    /// BOWS invariants under arbitrary event interleavings: a warp is in
    /// the backed-off queue iff its flag says so; issuing always clears the
    /// state; picks stay within the eligible set.
    #[test]
    fn bows_state_machine_consistent(
        events in proptest::collection::vec((0usize..8, 0u8..3), 1..300)
    ) {
        let m = meta(8);
        let mut b = Bows::new(
            simt_core::BasePolicy::Gto.build(50_000),
            DelayMode::Fixed(100),
        );
        let mut now = 0u64;
        for (warp, ev) in events {
            now += 1;
            let ctx = SchedCtx { now, meta: &m, resident_version: 1 };
            match ev {
                0 => b.on_sib(&ctx, warp),
                1 => {
                    b.on_issue(&ctx, warp, &IssueInfo::default());
                    prop_assert!(!b.is_backed_off(warp), "issue clears state");
                }
                _ => {
                    let eligible: Vec<usize> =
                        (0..8).filter(|&w| b.can_issue(now, w)).collect();
                    if !eligible.is_empty() {
                        let pick = b.pick(&ctx, &eligible);
                        if let Some(w) = pick {
                            prop_assert!(eligible.contains(&w));
                        }
                    }
                }
            }
        }
    }

    /// The adaptive controller's delay limit always stays in [min, max]
    /// after any sequence of windows.
    #[test]
    fn adaptive_limit_always_clamped(
        sibs in proptest::collection::vec((0u64..2000, 0u64..2000), 1..60)
    ) {
        let acfg = AdaptiveConfig {
            window: 10,
            step: 250,
            frac1: 0.1,
            frac2: 0.8,
            min: 100,
            max: 2000,
        };
        let m = meta(2);
        let mut b = Bows::new(
            simt_core::BasePolicy::Lrr.build(1),
            DelayMode::Adaptive(acfg),
        );
        let mut now = 0u64;
        for (total, sib) in sibs {
            let total = total.max(sib);
            for i in 0..total {
                let ctx = SchedCtx { now, meta: &m, resident_version: 1 };
                b.on_issue(
                    &ctx,
                    0,
                    &IssueInfo { is_sib: i < sib, ..IssueInfo::default() },
                );
                now += 1;
                let ctx = SchedCtx { now, meta: &m, resident_version: 1 };
                b.end_cycle(&ctx, &[0, 1], Some(0));
                let limit = b.current_delay_limit();
                prop_assert!((100..=2000).contains(&limit), "limit {limit}");
            }
        }
    }
}
