//! Checkpoint/restore carries BOWS + DDOS state bit-exactly.
//!
//! Three runs of the same contended spin-lock kernel under BOWS-on-GTO with
//! DDOS: an uninterrupted run, a run that takes periodic snapshots, and a run
//! resumed from a mid-flight snapshot. All three must agree on every stat and
//! on final device memory — this exercises the nested policy/detector blobs
//! (backed-off queue, adaptive controller window, warp histories, SIB-PT).

use bows::{AdaptiveConfig, Bows, Ddos, DdosConfig, DelayMode};
use simt_core::{sched::BasePolicy, CheckpointCtl, Gpu, GpuConfig, KernelReport, LaunchSpec};
use simt_isa::asm::assemble;
use simt_isa::Kernel;

const LOCK_KERNEL: &str = r#"
    .kernel locked_inc
    .regs 10
    .params 2
        ld.param r1, [0]      ; mutex
        ld.param r2, [4]      ; counter
        mov r9, 0             ; done = false
    SPIN:
        atom.global.cas r3, [r1], 0, 1 !acquire !sync
        setp.eq.s32 p1, r3, 0
    @!p1 bra TEST
        ld.global.volatile r4, [r2]
        add r4, r4, 1
        st.global [r2], r4
        membar
        atom.global.exch r5, [r1], 0 !release !sync
        mov r9, 1
    TEST:
        setp.eq.s32 p2, r9, 0 !sync
    @p2 bra SPIN !sib !sync
        exit
"#;

fn setup() -> (Gpu, u64, LaunchSpec) {
    let cfg = GpuConfig::test_tiny();
    let mut gpu = Gpu::new(cfg);
    let mutex = gpu.mem_mut().gmem_mut().alloc(1);
    let counter = gpu.mem_mut().gmem_mut().alloc(1);
    let launch = LaunchSpec {
        grid_ctas: 2,
        threads_per_cta: 64,
        params: vec![mutex as u32, counter as u32],
    };
    (gpu, counter, launch)
}

fn run_one(
    gpu: &mut Gpu,
    kernel: &Kernel,
    launch: &LaunchSpec,
    ctl: Option<CheckpointCtl<'_>>,
) -> KernelReport {
    let warps = GpuConfig::test_tiny().warps_per_sm();
    gpu.run_with_checkpoints(
        kernel,
        launch,
        &|| {
            Box::new(Bows::new(
                BasePolicy::Gto.build(50_000),
                DelayMode::Adaptive(AdaptiveConfig::default()),
            ))
        },
        &move |_k| Box::new(Ddos::new(DdosConfig::default(), warps)),
        ctl,
    )
    .expect("kernel completes")
}

#[test]
fn bows_ddos_checkpoint_resume_is_bit_identical() {
    let kernel = assemble(LOCK_KERNEL).expect("assembles");

    // Run A: uninterrupted.
    let (mut gpu_a, counter_a, launch) = setup();
    let rep_a = run_one(&mut gpu_a, &kernel, &launch, None);
    assert_eq!(gpu_a.mem().gmem().read_u32(counter_a), 128);
    assert!(!rep_a.confirmed_sibs.is_empty(), "DDOS found the spin branch");

    // Run B: checkpointing every 256 cycles must not perturb the run.
    let mut snaps: Vec<(u64, Vec<u8>)> = Vec::new();
    let (mut gpu_b, counter_b, _) = setup();
    let mut sink = |at: u64, body: &[u8]| snaps.push((at, body.to_vec()));
    let rep_b = run_one(
        &mut gpu_b,
        &kernel,
        &launch,
        Some(CheckpointCtl {
            every: 256,
            sink: &mut sink,
            resume: None,
        }),
    );
    assert_eq!(rep_a.sim, rep_b.sim, "checkpointing perturbed the run");
    assert_eq!(rep_a.cycles, rep_b.cycles);
    assert_eq!(rep_a.mem, rep_b.mem);
    assert_eq!(gpu_b.mem().gmem().read_u32(counter_b), 128);
    assert!(snaps.len() >= 2, "lock contention should outlast 512 cycles");

    // Run C: resume from a middle snapshot; stats and memory must match.
    let mid = &snaps[snaps.len() / 2];
    let (mut gpu_c, counter_c, _) = setup();
    let rep_c = run_one(
        &mut gpu_c,
        &kernel,
        &launch,
        Some(CheckpointCtl {
            every: 0,
            sink: &mut |_, _| {},
            resume: Some(&mid.1),
        }),
    );
    assert_eq!(rep_a.sim, rep_c.sim, "resumed run diverged");
    assert_eq!(rep_a.cycles, rep_c.cycles);
    assert_eq!(rep_a.mem, rep_c.mem);
    assert_eq!(rep_a.confirmed_sibs, rep_c.confirmed_sibs);
    assert_eq!(gpu_c.mem().gmem().read_u32(counter_c), 128);
    assert_eq!(
        gpu_a.mem().gmem().image(),
        gpu_c.mem().gmem().image(),
        "device memory diverged after resume"
    );
}
