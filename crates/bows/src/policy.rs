//! BOWS — Back-Off Warp Spinning (paper Section III).
//!
//! BOWS wraps a baseline scheduler and adds two mechanisms:
//!
//! 1. **Backed-off state**: a warp that executes (takes) a spin-inducing
//!    branch is pushed to the back of the scheduling priority — it can only
//!    issue when no normal warp is eligible. Issuing its next instruction
//!    returns it to normal priority.
//! 2. **Pending back-off delay**: when a warp leaves the backed-off state,
//!    a delay register is loaded with the delay limit and drains every
//!    cycle; if the warp executes a SIB again before the register reaches
//!    zero, it may not issue until it does. This enforces a minimum
//!    interval between consecutive spin-loop iterations of the same warp.
//!
//! The delay limit is fixed or adapted per Figure 5 (see [`DelayMode`]).

use simt_core::{IssueInfo, SchedCtx, SchedulerPolicy};
use std::collections::VecDeque;

/// Adaptive back-off delay-limit controller parameters (paper Figure 5 and
/// Table II).
///
/// Note on fidelity: Table II lists `FRAC1 = 0.5`, but read literally
/// (`SIB instructions > FRAC1 × total instructions`) the increase rule could
/// never fire — a spin iteration is several instructions long, so SIBs are
/// well under half of the total even in pathological spinning. Table II also
/// lists Min = Max = 1000, which would make the controller degenerate,
/// contradicting Figures 10–11 (adaptive ≠ 1000) and Table III (14-bit
/// counters for delays up to 10 000). We treat both as typos: the default
/// here is `frac1 = 0.1`, limits [0, 10 000]; every value is configurable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Execution-window length `T` in cycles.
    pub window: u64,
    /// Delay step added/subtracted per window.
    pub step: u64,
    /// Increase the limit while `SIB / total > frac1`.
    pub frac1: f64,
    /// Decrease (by `2 × step`) when the useful-work proxy
    /// `total / SIB` drops below `frac2 ×` its previous-window value.
    pub frac2: f64,
    /// Lower clamp.
    pub min: u64,
    /// Upper clamp.
    pub max: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            window: 1000,
            step: 250,
            frac1: 0.1,
            frac2: 0.8,
            min: 0,
            max: 10_000,
        }
    }
}

/// Which of BOWS's two mechanisms are active — the ablation knob for the
/// design-choice studies (full BOWS = both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BowsComponents {
    /// Push SIB-executing warps to the back of the scheduling priority.
    pub deprioritize: bool,
    /// Enforce the minimum interval between spin iterations (the pending
    /// back-off delay register).
    pub throttle: bool,
}

impl Default for BowsComponents {
    fn default() -> BowsComponents {
        BowsComponents {
            deprioritize: true,
            throttle: true,
        }
    }
}

/// How the back-off delay limit is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayMode {
    /// A fixed limit in cycles (the 0/500/1000/3000/5000 sweep of Fig. 10).
    Fixed(u64),
    /// The Figure 5 adaptive controller.
    Adaptive(AdaptiveConfig),
}

impl DelayMode {
    /// Label used in reports ("0", "500", ..., "adaptive").
    pub fn label(&self) -> String {
        match self {
            DelayMode::Fixed(v) => v.to_string(),
            DelayMode::Adaptive(_) => "adaptive".to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BowsWarp {
    backed_off: bool,
    /// Cycle at which the pending back-off delay reaches zero.
    delay_zero_at: u64,
}

/// The Figure 5 controller state.
#[derive(Debug, Clone, Copy)]
struct Adaptive {
    cfg: AdaptiveConfig,
    window_total: u64,
    window_sib: u64,
    prev_ratio: Option<f64>,
    next_update: u64,
}

impl Adaptive {
    fn new(cfg: AdaptiveConfig) -> Adaptive {
        Adaptive {
            cfg,
            window_total: 0,
            window_sib: 0,
            prev_ratio: None,
            next_update: cfg.window,
        }
    }

    /// Apply the Figure 5 update; returns the new delay limit.
    fn update(&mut self, mut limit: u64) -> u64 {
        let total = self.window_total.max(1) as f64;
        let sib = self.window_sib as f64;
        if sib > self.cfg.frac1 * total {
            limit = limit.saturating_add(self.cfg.step);
        }
        if self.window_sib > 0 {
            let ratio = total / sib;
            if let Some(prev) = self.prev_ratio {
                if ratio < self.cfg.frac2 * prev {
                    limit = limit.saturating_sub(2 * self.cfg.step);
                }
            }
            self.prev_ratio = Some(ratio);
        }
        limit = limit.clamp(self.cfg.min, self.cfg.max);
        self.window_total = 0;
        self.window_sib = 0;
        limit
    }
}

/// The BOWS scheduling policy, wrapping a baseline
/// [`SchedulerPolicy`] (LRR, GTO or CAWA).
pub struct Bows {
    inner: Box<dyn SchedulerPolicy>,
    warps: Vec<BowsWarp>,
    /// FIFO of backed-off warps (issue order when nothing else is ready).
    queue: VecDeque<usize>,
    delay_limit: u64,
    adaptive: Option<Adaptive>,
    components: BowsComponents,
}

impl std::fmt::Debug for Bows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bows")
            .field("inner", &self.inner.name())
            .field("delay_limit", &self.delay_limit)
            .field("backed_off", &self.queue.len())
            .finish()
    }
}

impl Bows {
    /// Wrap `inner` with the given delay mode (full BOWS: both mechanisms).
    pub fn new(inner: Box<dyn SchedulerPolicy>, delay: DelayMode) -> Bows {
        Bows::with_components(inner, delay, BowsComponents::default())
    }

    /// Wrap `inner` with only selected mechanisms (ablation studies).
    pub fn with_components(
        inner: Box<dyn SchedulerPolicy>,
        delay: DelayMode,
        components: BowsComponents,
    ) -> Bows {
        let (delay_limit, adaptive) = match delay {
            DelayMode::Fixed(v) => (v, None),
            DelayMode::Adaptive(cfg) => (cfg.min, Some(Adaptive::new(cfg))),
        };
        Bows {
            inner,
            warps: Vec::new(),
            queue: VecDeque::new(),
            delay_limit,
            adaptive,
            components,
        }
    }

    fn ensure(&mut self, warp: usize) {
        if self.warps.len() <= warp {
            self.warps.resize(warp + 1, BowsWarp::default());
        }
    }

    fn state(&self, warp: usize) -> BowsWarp {
        self.warps.get(warp).copied().unwrap_or_default()
    }
}

impl SchedulerPolicy for Bows {
    fn name(&self) -> String {
        format!("bows({})", self.inner.name())
    }

    fn on_warp_launch(&mut self, warp: usize, static_inst: usize) {
        self.ensure(warp);
        self.warps[warp] = BowsWarp::default();
        self.queue.retain(|&w| w != warp);
        self.inner.on_warp_launch(warp, static_inst);
    }

    fn pick(&mut self, ctx: &SchedCtx<'_>, eligible: &[usize]) -> Option<usize> {
        if !self.components.deprioritize {
            return self.inner.pick(ctx, eligible);
        }
        // Normal warps first; backed-off warps only when nothing else is
        // ready, in FIFO back-off order. With nothing backed off (the
        // common case) the eligible set passes through unchanged, so the
        // per-pick filtered copy is only built while a back-off is live.
        if self.queue.is_empty() {
            return self.inner.pick(ctx, eligible);
        }
        let normal: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&w| !self.state(w).backed_off)
            .collect();
        if !normal.is_empty() {
            return self.inner.pick(ctx, &normal);
        }
        self.queue.iter().copied().find(|w| eligible.contains(w))
    }

    fn on_issue(&mut self, ctx: &SchedCtx<'_>, warp: usize, info: &IssueInfo) {
        self.ensure(warp);
        if self.warps[warp].backed_off {
            // Leaving the backed-off state: normal priority returns and the
            // pending back-off delay register is loaded.
            self.warps[warp].backed_off = false;
            self.queue.retain(|&w| w != warp);
            self.warps[warp].delay_zero_at = ctx.now + self.delay_limit;
        }
        if let Some(a) = &mut self.adaptive {
            a.window_total += 1;
            if info.is_sib {
                a.window_sib += 1;
            }
        }
        self.inner.on_issue(ctx, warp, info);
    }

    fn on_sib(&mut self, ctx: &SchedCtx<'_>, warp: usize) {
        self.ensure(warp);
        if !self.warps[warp].backed_off {
            self.warps[warp].backed_off = true;
            self.queue.push_back(warp);
        }
        self.inner.on_sib(ctx, warp);
    }

    fn end_cycle(&mut self, ctx: &SchedCtx<'_>, unit_warps: &[usize], issued: Option<usize>) {
        if let Some(a) = &mut self.adaptive {
            if ctx.now >= a.next_update {
                a.next_update = ctx.now + a.cfg.window;
                self.delay_limit = {
                    let limit = self.delay_limit;
                    a.update(limit)
                };
            }
        }
        self.inner.end_cycle(ctx, unit_warps, issued);
    }

    fn can_issue(&self, now: u64, warp: usize) -> bool {
        let s = self.state(warp);
        // A backed-off warp (it just executed a SIB) may not start another
        // spin iteration until its pending delay has drained.
        let throttled = self.components.throttle && s.backed_off && now < s.delay_zero_at;
        !throttled && self.inner.can_issue(now, warp)
    }

    fn is_backed_off(&self, warp: usize) -> bool {
        self.state(warp).backed_off
    }

    fn current_delay_limit(&self) -> u64 {
        self.delay_limit
    }

    fn backoff_queue_position(&self, warp: usize) -> Option<usize> {
        self.queue.iter().position(|&w| w == warp)
    }

    fn next_wakeup(&self, now: u64) -> Option<u64> {
        let mut next = self.inner.next_wakeup(now);
        let mut fold = |t: u64| {
            if t > now {
                next = Some(next.map_or(t, |n: u64| n.min(t)));
            }
        };
        if let Some(a) = &self.adaptive {
            // Always a wakeup candidate: even an update that leaves the
            // delay limit unchanged resets the window phase
            // (`next_update = fire + window`), so skipping past it would
            // desynchronize every later update from the cycle engine.
            fold(a.next_update);
        }
        if self.components.throttle {
            // Backed-off warps are exactly the back-off FIFO's members
            // (`on_sib` enqueues, `on_issue`/`on_warp_launch` dequeue), so
            // the scan is over the queue, not every warp slot.
            for &warp in &self.queue {
                let s = self.state(warp);
                if s.backed_off && s.delay_zero_at > now {
                    // The can_issue veto flips off at delay_zero_at.
                    fold(s.delay_zero_at);
                }
            }
        }
        next
    }

    fn on_idle_span(&mut self, ctx: &SchedCtx<'_>, unit_warps: &[usize], span: u64) {
        // No BOWS state advances during a dead span: window counters move
        // only on issue, and the adaptive update cannot fire inside a span
        // (next_update is a wakeup candidate above). Only the inner policy
        // gets its idle bookkeeping.
        self.inner.on_idle_span(ctx, unit_warps, span);
    }

    fn save_state(&self, w: &mut simt_snap::SnapWriter) {
        // The wrapped baseline's state rides along as a length-prefixed
        // blob, mirroring how the SM frames each unit.
        let mut inner = simt_snap::SnapWriter::new();
        self.inner.save_state(&mut inner);
        w.bytes(&inner.into_bytes());
        w.usize(self.warps.len());
        for s in &self.warps {
            w.bool(s.backed_off);
            w.u64(s.delay_zero_at);
        }
        w.usize(self.queue.len());
        for &warp in &self.queue {
            w.usize(warp);
        }
        w.u64(self.delay_limit);
        match &self.adaptive {
            Some(a) => {
                w.bool(true);
                w.u64(a.window_total);
                w.u64(a.window_sib);
                match a.prev_ratio {
                    Some(p) => {
                        w.bool(true);
                        w.f64(p);
                    }
                    None => w.bool(false),
                }
                w.u64(a.next_update);
            }
            None => w.bool(false),
        }
    }

    fn load_state(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        use simt_snap::SnapshotError;
        let blob = r.bytes()?.to_vec();
        let mut ir = simt_snap::SnapReader::new(&blob);
        self.inner.load_state(&mut ir)?;
        ir.expect_exhausted()?;
        let nw = r.len(9)?;
        let mut warps = Vec::with_capacity(nw);
        for _ in 0..nw {
            warps.push(BowsWarp {
                backed_off: r.bool()?,
                delay_zero_at: r.u64()?,
            });
        }
        let nq = r.len(8)?;
        let mut queue = VecDeque::with_capacity(nq);
        for _ in 0..nq {
            let warp = r.usize()?;
            if warp >= nw {
                return Err(SnapshotError::malformed(format!(
                    "bows: backed-off queue names warp {warp} of {nw}"
                )));
            }
            queue.push_back(warp);
        }
        let delay_limit = r.u64()?;
        let has_adaptive = r.bool()?;
        if has_adaptive != self.adaptive.is_some() {
            return Err(SnapshotError::malformed(
                "bows: snapshot delay mode (fixed/adaptive) does not match this unit",
            ));
        }
        if let Some(a) = &mut self.adaptive {
            a.window_total = r.u64()?;
            a.window_sib = r.u64()?;
            a.prev_ratio = if r.bool()? { Some(r.f64()?) } else { None };
            a.next_update = r.u64()?;
        }
        self.warps = warps;
        self.queue = queue;
        self.delay_limit = delay_limit;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_core::sched::Lrr;
    use simt_core::WarpMeta;

    fn meta(n: usize) -> Vec<WarpMeta> {
        (0..n)
            .map(|i| WarpMeta {
                resident: true,
                done: false,
                age_key: i as u64,
                eligible: true,
            })
            .collect()
    }

    fn ctx<'a>(now: u64, meta: &'a [WarpMeta]) -> SchedCtx<'a> {
        SchedCtx {
            now,
            meta,
            resident_version: 1,
        }
    }

    fn bows(delay: DelayMode) -> Bows {
        Bows::new(Box::new(Lrr::new()), delay)
    }

    #[test]
    fn name_composes() {
        assert_eq!(bows(DelayMode::Fixed(0)).name(), "bows(lrr)");
    }

    #[test]
    fn backed_off_warp_deprioritized() {
        let m = meta(4);
        let c = ctx(0, &m);
        let mut b = bows(DelayMode::Fixed(0));
        b.on_sib(&c, 1);
        assert!(b.is_backed_off(1));
        // Warp 1 loses to any normal warp...
        assert_eq!(b.pick(&c, &[1, 2]), Some(2));
        // ...but issues when it is the only one ready.
        assert_eq!(b.pick(&c, &[1]), Some(1));
        // Issuing clears the backed-off state.
        b.on_issue(&c, 1, &IssueInfo::default());
        assert!(!b.is_backed_off(1));
    }

    #[test]
    fn backed_off_fifo_order() {
        let m = meta(8);
        let c = ctx(0, &m);
        let mut b = bows(DelayMode::Fixed(0));
        b.on_sib(&c, 3);
        b.on_sib(&c, 1);
        b.on_sib(&c, 5);
        // All backed off; FIFO picks 3 first.
        assert_eq!(b.pick(&c, &[1, 3, 5]), Some(3));
        b.on_issue(&c, 3, &IssueInfo::default());
        assert_eq!(b.pick(&c, &[1, 5]), Some(1));
    }

    #[test]
    fn pending_delay_gates_next_spin_iteration() {
        let m = meta(2);
        let mut b = bows(DelayMode::Fixed(100));
        // Warp 0 backed off at t=0, issues (alone) at t=5: delay loaded,
        // zero at 105.
        let c0 = ctx(0, &m);
        b.on_sib(&c0, 0);
        let c5 = ctx(5, &m);
        assert!(b.can_issue(5, 0), "first post-SIB issue is not delay-gated");
        b.on_issue(&c5, 0, &IssueInfo::default());
        // It executes the SIB again at t=20 (critical section shorter than
        // the limit): backed off AND delay-gated until 105.
        let c20 = ctx(20, &m);
        b.on_sib(&c20, 0);
        assert!(!b.can_issue(50, 0));
        assert!(b.can_issue(105, 0));
    }

    #[test]
    fn long_critical_section_outlives_delay() {
        let m = meta(2);
        let mut b = bows(DelayMode::Fixed(30));
        let c0 = ctx(0, &m);
        b.on_sib(&c0, 0);
        b.on_issue(&ctx(1, &m), 0, &IssueInfo::default()); // delay zero at 31
        // SIB executed again at t=100 (> 31): no delay gating at all — the
        // Figure 4 case where the critical section exceeds the limit.
        b.on_sib(&ctx(100, &m), 0);
        assert!(b.can_issue(100, 0));
    }

    #[test]
    fn adaptive_raises_under_spinning_and_clamps() {
        let acfg = AdaptiveConfig {
            window: 10,
            step: 250,
            frac1: 0.1,
            frac2: 0.8,
            min: 0,
            max: 600,
        };
        let m = meta(2);
        let mut b = bows(DelayMode::Adaptive(acfg));
        assert_eq!(b.current_delay_limit(), 0);
        // Every instruction is a SIB: limit climbs by `step` per window,
        // clamped at max.
        let mut now = 0;
        for _ in 0..5 {
            for _ in 0..10 {
                let c = ctx(now, &m);
                b.on_issue(
                    &c,
                    0,
                    &IssueInfo {
                        is_sib: true,
                        ..IssueInfo::default()
                    },
                );
                now += 1;
                let c = ctx(now, &m);
                b.end_cycle(&c, &[0, 1], Some(0));
            }
        }
        assert_eq!(b.current_delay_limit(), 600, "clamped at max");
    }

    #[test]
    fn adaptive_stays_low_without_spinning() {
        let acfg = AdaptiveConfig {
            window: 10,
            ..AdaptiveConfig::default()
        };
        let m = meta(2);
        let mut b = bows(DelayMode::Adaptive(acfg));
        let mut now = 0;
        for _ in 0..100 {
            let c = ctx(now, &m);
            b.on_issue(&c, 0, &IssueInfo::default());
            now += 1;
            let c = ctx(now, &m);
            b.end_cycle(&c, &[0, 1], Some(0));
        }
        assert_eq!(
            b.current_delay_limit(),
            0,
            "TSP-like workloads keep the delay at the minimum"
        );
    }

    #[test]
    fn adaptive_backs_off_when_ratio_collapses() {
        let acfg = AdaptiveConfig {
            window: 10,
            step: 100,
            frac1: 0.05,
            frac2: 0.8,
            min: 0,
            max: 10_000,
        };
        let mut a = Adaptive::new(acfg);
        // Window 1: 10% SIBs → ratio 10, limit += step.
        a.window_total = 100;
        a.window_sib = 10;
        let l1 = a.update(500);
        assert_eq!(l1, 600);
        // Window 2: 50% SIBs → ratio 2 < 0.8*10 → increase then double-step
        // decrease.
        a.window_total = 100;
        a.window_sib = 50;
        let l2 = a.update(l1);
        assert_eq!(l2, 600 + 100 - 200);
    }

    #[test]
    fn ablation_deprioritize_only_never_delays() {
        let m = meta(2);
        let mut b = Bows::with_components(
            Box::new(Lrr::new()),
            DelayMode::Fixed(5000),
            BowsComponents {
                deprioritize: true,
                throttle: false,
            },
        );
        let c = ctx(0, &m);
        b.on_sib(&c, 0);
        b.on_issue(&ctx(1, &m), 0, &IssueInfo::default());
        b.on_sib(&ctx(2, &m), 0);
        // Throttling disabled: despite the 5000-cycle limit, the warp may
        // issue immediately (it is still deprioritized though).
        assert!(b.can_issue(3, 0));
        assert!(b.is_backed_off(0));
        assert_eq!(b.pick(&ctx(3, &m), &[0, 1]), Some(1));
    }

    #[test]
    fn ablation_throttle_only_never_deprioritizes() {
        let m = meta(2);
        let mut b = Bows::with_components(
            Box::new(Lrr::new()),
            DelayMode::Fixed(100),
            BowsComponents {
                deprioritize: false,
                throttle: true,
            },
        );
        let c = ctx(0, &m);
        b.on_sib(&c, 0);
        // Deprioritization disabled: the inner policy sees everyone.
        // (LRR starting fresh picks warp 0 first.)
        assert_eq!(b.pick(&c, &[0, 1]), Some(0));
        // But the delay still gates post-SIB issue after a round trip.
        b.on_issue(&ctx(1, &m), 0, &IssueInfo::default());
        b.on_sib(&ctx(2, &m), 0);
        assert!(!b.can_issue(50, 0));
        assert!(b.can_issue(101, 0));
    }

    #[test]
    fn warp_relaunch_clears_bows_state() {
        let m = meta(2);
        let c = ctx(0, &m);
        let mut b = bows(DelayMode::Fixed(50));
        b.on_sib(&c, 0);
        assert!(b.is_backed_off(0));
        b.on_warp_launch(0, 100);
        assert!(!b.is_backed_off(0));
        assert!(b.can_issue(0, 0));
        assert_eq!(b.pick(&c, &[0, 1]), Some(0), "fresh warp is normal");
    }
}
