//! The HPCA 2018 paper's mechanisms: **BOWS** (Back-Off Warp Spinning) and
//! **DDOS** (Dynamic Detection Of Spinning).
//!
//! * [`Ddos`] implements [`simt_core::SpinDetector`]: per-warp path/value
//!   history registers observe `setp` executions and classify warps as
//!   spinning; a per-SM SIB-PT turns spinning observations into
//!   *spin-inducing branch* predictions.
//! * [`Bows`] implements [`simt_core::SchedulerPolicy`] by wrapping any
//!   baseline policy (LRR, GTO, CAWA): warps that execute a SIB are pushed
//!   into a backed-off queue and throttled by a (fixed or adaptive)
//!   back-off delay.
//!
//! # Example: BOWS-on-GTO with DDOS, on a spin-lock kernel
//!
//! ```
//! use bows::{Bows, Ddos, DdosConfig, DelayMode};
//! use simt_core::{sched::BasePolicy, Gpu, GpuConfig, LaunchSpec};
//! use simt_isa::asm::assemble;
//!
//! // Every thread increments a counter under a spin lock.
//! let kernel = assemble(
//!     r#"
//!     .kernel locked_inc
//!     .regs 10
//!     .params 2
//!         ld.param r1, [0]      ; mutex
//!         ld.param r2, [4]      ; counter
//!         mov r9, 0             ; done = false
//!     SPIN:
//!         atom.global.cas r3, [r1], 0, 1 !acquire !sync
//!         setp.eq.s32 p1, r3, 0
//!     @!p1 bra TEST
//!         ld.global.volatile r4, [r2]
//!         add r4, r4, 1
//!         st.global [r2], r4
//!         membar
//!         atom.global.exch r5, [r1], 0 !release !sync
//!         mov r9, 1
//!     TEST:
//!         setp.eq.s32 p2, r9, 0 !sync
//!     @p2 bra SPIN !sib !sync
//!         exit
//!     "#,
//! )?;
//! let cfg = GpuConfig::test_tiny();
//! let mut gpu = Gpu::new(cfg.clone());
//! let mutex = gpu.mem_mut().gmem_mut().alloc(1);
//! let counter = gpu.mem_mut().gmem_mut().alloc(1);
//! let launch = LaunchSpec {
//!     grid_ctas: 1,
//!     threads_per_cta: 64,
//!     params: vec![mutex as u32, counter as u32],
//! };
//! let warps = cfg.warps_per_sm();
//! let report = gpu.run(
//!     &kernel,
//!     &launch,
//!     &|| Box::new(Bows::new(BasePolicy::Gto.build(50_000), DelayMode::Fixed(1000))),
//!     &move |_k| Box::new(Ddos::new(DdosConfig::default(), warps)),
//! )?;
//! assert_eq!(gpu.mem().gmem().read_u32(counter), 64, "mutual exclusion held");
//! assert!(!report.confirmed_sibs.is_empty(), "DDOS found the spin branch");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cost;
pub mod ddos;
mod policy;

pub use cost::ImplementationCost;
pub use ddos::{Ddos, DdosConfig, HashKind, SibPt, WarpHistory};
pub use policy::{AdaptiveConfig, Bows, BowsComponents, DelayMode};

use simt_core::{BasePolicy, DetectorFactory, PolicyFactory, SchedulerPolicy};

/// Convenience: a policy factory for `base` optionally wrapped in BOWS.
pub fn policy_factory(
    base: BasePolicy,
    bows: Option<DelayMode>,
    gto_rotate_period: u64,
) -> Box<PolicyFactory<'static>> {
    Box::new(move || -> Box<dyn SchedulerPolicy> {
        let inner = base.build(gto_rotate_period);
        match bows {
            Some(delay) => Box::new(Bows::new(inner, delay)),
            None => inner,
        }
    })
}

/// Convenience: a detector factory building a fresh DDOS per SM.
pub fn ddos_factory(cfg: DdosConfig, warps_per_sm: usize) -> Box<DetectorFactory<'static>> {
    Box::new(move |_k| Box::new(Ddos::new(cfg, warps_per_sm)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_compose() {
        let f = policy_factory(BasePolicy::Gto, Some(DelayMode::Fixed(500)), 50_000);
        let p = f();
        assert_eq!(p.name(), "bows(gto)");
        assert_eq!(p.current_delay_limit(), 500);
        let f = policy_factory(BasePolicy::Cawa, None, 50_000);
        assert_eq!(f().name(), "cawa");
    }
}
