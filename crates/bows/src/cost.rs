//! Hardware-cost accounting (paper Table III).

use crate::ddos::DdosConfig;

/// Per-SM storage costs of DDOS and BOWS, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplementationCost {
    /// SIB-PT storage (entries × 35 bits).
    pub sibpt_bits: u64,
    /// Path + value history registers across all warps.
    pub history_bits: u64,
    /// Detector FSM state (2 bits = 4 states per warp).
    pub fsm_bits: u64,
    /// BOWS pending-delay counters (14 bits support delays to 10 000).
    pub delay_counter_bits: u64,
    /// Backed-off queue storage (warp ids).
    pub backed_off_queue_bits: u64,
}

impl ImplementationCost {
    /// Cost of a DDOS+BOWS implementation for an SM with `warps` warp
    /// slots. With time sharing enabled only one history-register set is
    /// needed (Section IV-B notes this as the cost-reduction option).
    pub fn per_sm(cfg: &DdosConfig, warps: u64) -> ImplementationCost {
        let history_sets = if cfg.time_share_epoch.is_some() {
            1
        } else {
            warps
        };
        ImplementationCost {
            sibpt_bits: cfg.sibpt_bits(),
            history_bits: history_sets * cfg.history_bits_per_warp(),
            fsm_bits: warps * 2,
            delay_counter_bits: warps * 14,
            backed_off_queue_bits: warps * 5,
        }
    }

    /// Total bits per SM.
    pub fn total_bits(&self) -> u64 {
        self.sibpt_bits
            + self.history_bits
            + self.fsm_bits
            + self.delay_counter_bits
            + self.backed_off_queue_bits
    }

    /// Total bytes per SM, rounded up.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reference_numbers() {
        // GTX480: 48 warps/SM, default DDOS config.
        let c = ImplementationCost::per_sm(&DdosConfig::default(), 48);
        assert_eq!(c.sibpt_bits, 560, "16-entry SIB-PT, 35 bits each");
        assert_eq!(c.history_bits, 9216, "48 warps x 192 bits");
        assert_eq!(c.delay_counter_bits, 48 * 14);
        assert_eq!(c.backed_off_queue_bits, 48 * 5);
        // Under 1.5 KiB per SM in total.
        assert!(c.total_bytes() < 1536);
    }

    #[test]
    fn time_sharing_cuts_history_cost() {
        let cfg = DdosConfig {
            time_share_epoch: Some(1000),
            ..DdosConfig::default()
        };
        let c = ImplementationCost::per_sm(&cfg, 48);
        assert_eq!(c.history_bits, 192, "a single shared register set");
    }
}
