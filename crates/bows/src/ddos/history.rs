//! Per-warp path/value history registers and the match-pointer loop
//! detector (the Figure 7 walk-through, exactly).

use crate::ddos::hash::{hash_path, hash_value, HashKind};
use std::collections::VecDeque;

/// One `setp` observation after hashing: its path hash and the two source
/// value hashes (the value history holds two entries per `setp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Hashed `setp` PC (m bits).
    pub path: u16,
    /// Hashed source operand values (k bits each).
    pub vals: [u16; 2],
}

/// A warp's history registers plus the match-pointer periodicity detector.
///
/// States: *searching* (`remaining == None`) — the match pointer grows with
/// every mismatching insertion, and an insertion matching the record
/// `match_pointer + 1` positions back proposes that distance as the loop
/// period; *confirming* (`remaining == Some(n > 0)`) — each further
/// insertion must match the record one period back; after `period - 1`
/// consecutive matches the warp enters the *spinning* state; any mismatch
/// resets everything (and clears the registers).
///
/// A period-`p` loop is only detectable when both full iterations fit in
/// the registers (`2p < l`) — this is the paper's "DDOS needs at least five
/// entries in its history registers" (a two-`setp` loop needs `l >= 5`).
#[derive(Debug, Clone)]
pub struct WarpHistory {
    hash: HashKind,
    path_bits: u8,
    value_bits: u8,
    capacity: usize,
    /// When false, only the path history is compared — the ablation that
    /// shows why DDOS needs the value history at all (every loop repeats
    /// its path; only busy-wait loops also repeat their values).
    track_values: bool,
    /// Newest record at the front.
    records: VecDeque<Record>,
    match_pointer: usize,
    remaining: Option<u32>,
    spinning: bool,
}

impl WarpHistory {
    /// Registers holding `history_len` records (`l` in the paper).
    pub fn new(hash: HashKind, path_bits: u8, value_bits: u8, history_len: usize) -> WarpHistory {
        WarpHistory {
            hash,
            path_bits,
            value_bits,
            capacity: history_len.max(1),
            track_values: true,
            records: VecDeque::with_capacity(history_len.max(1)),
            match_pointer: 0,
            remaining: None,
            spinning: false,
        }
    }

    /// Disable value-history comparison (path-only ablation).
    pub fn without_value_history(mut self) -> WarpHistory {
        self.track_values = false;
        self
    }

    /// Is the warp currently classified as spinning?
    pub fn spinning(&self) -> bool {
        self.spinning
    }

    /// Current match pointer (test access).
    pub fn match_pointer(&self) -> usize {
        self.match_pointer
    }

    /// Remaining confirmations (test access).
    pub fn remaining(&self) -> Option<u32> {
        self.remaining
    }

    /// Clear everything (warp reassigned, or time-sharing owner switch).
    pub fn reset(&mut self) {
        self.records.clear();
        self.match_pointer = 0;
        self.remaining = None;
        self.spinning = false;
    }

    /// Largest loop period this register length can detect.
    pub fn max_period(&self) -> usize {
        // 2p < l  ⇔  p <= (l - 1) / 2.
        self.capacity.saturating_sub(1) / 2
    }

    /// Observe a `setp` execution: hash and insert, updating the detector.
    pub fn observe(&mut self, inst_index: usize, srcs: [u32; 2]) {
        let vals = if self.track_values {
            [
                hash_value(self.hash, srcs[0], self.value_bits),
                hash_value(self.hash, srcs[1], self.value_bits),
            ]
        } else {
            [0, 0]
        };
        let rec = Record {
            path: hash_path(self.hash, inst_index, self.path_bits),
            vals,
        };
        self.insert(rec);
    }

    /// Serialize the dynamic detector state — records newest-first, the
    /// match pointer, confirmation countdown, and spinning flag (checkpoint
    /// support). Hash scheme and register geometry are construction-time.
    pub fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        w.usize(self.records.len());
        for r in &self.records {
            w.u16(r.path);
            w.u16(r.vals[0]);
            w.u16(r.vals[1]);
        }
        w.usize(self.match_pointer);
        match self.remaining {
            Some(n) => {
                w.bool(true);
                w.u32(n);
            }
            None => w.bool(false),
        }
        w.bool(self.spinning);
    }

    /// Restore state written by [`WarpHistory::save_snap`] into a history
    /// with the same construction parameters.
    ///
    /// # Errors
    ///
    /// [`simt_snap::SnapshotError`] on truncated/corrupt bytes or a record
    /// count exceeding this history's register length.
    pub fn load_snap(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        let n = r.len(6)?;
        if n > self.capacity {
            return Err(simt_snap::SnapshotError::malformed(format!(
                "warp history holds {n} records, registers hold {}",
                self.capacity
            )));
        }
        let mut records = VecDeque::with_capacity(self.capacity);
        for _ in 0..n {
            records.push_back(Record {
                path: r.u16()?,
                vals: [r.u16()?, r.u16()?],
            });
        }
        let match_pointer = r.usize()?;
        let remaining = if r.bool()? { Some(r.u32()?) } else { None };
        let spinning = r.bool()?;
        self.records = records;
        self.match_pointer = match_pointer;
        self.remaining = remaining;
        self.spinning = spinning;
        Ok(())
    }

    fn insert(&mut self, rec: Record) {
        match self.remaining {
            Some(rem) => {
                // Confirming / holding at period `match_pointer`.
                let p = self.match_pointer;
                let matches = p >= 1 && self.records.get(p - 1) == Some(&rec);
                if matches {
                    if rem > 0 {
                        let rem = rem - 1;
                        self.remaining = Some(rem);
                        if rem == 0 {
                            self.spinning = true;
                        }
                    }
                    // rem == 0: stays spinning.
                } else {
                    self.reset();
                    return; // mismatching record is discarded with the reset
                }
            }
            None => {
                // Searching.
                if !self.records.is_empty() {
                    let mp = self.match_pointer;
                    let period = mp + 1;
                    let detectable = 2 * period < self.capacity;
                    if detectable && self.records.get(mp) == Some(&rec) {
                        // Loop of length `period` proposed: need period-1
                        // further consecutive matches.
                        self.match_pointer = period;
                        let rem = (period - 1) as u32;
                        self.remaining = Some(rem);
                        if rem == 0 {
                            self.spinning = true;
                        }
                    } else if mp + 1 >= self.capacity {
                        // Ran off the register without finding a period:
                        // start over so a later-starting loop can align.
                        self.reset();
                        return;
                    } else {
                        self.match_pointer = mp + 1;
                    }
                }
            }
        }
        self.records.push_front(rec);
        if self.records.len() > self.capacity {
            self.records.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(l: usize) -> WarpHistory {
        WarpHistory::new(HashKind::Xor, 8, 8, l)
    }

    /// The Figure 7b walk-through: a two-`setp` busy-wait loop. Records:
    /// A = setp@0x038 (CAS result, fails: %r15 = 1), B = setp@0x090
    /// (done flag, still 0).
    #[test]
    fn figure7b_walkthrough() {
        let mut h = hist(8);
        let a = [1u32, 0]; // %r15 = 1 (lock busy), compared against 0
        let b = [0u32, 0]; // %r21 = 0 (not done)
        // 1: insert A.
        h.observe(7, a);
        assert_eq!(h.match_pointer(), 0);
        assert!(!h.spinning());
        // 2: insert B — mismatch, MP -> 1.
        h.observe(18, b);
        assert_eq!(h.match_pointer(), 1);
        // 3: insert A again — matches 2 back: period 2, RM = 1.
        h.observe(7, a);
        assert_eq!(h.match_pointer(), 2);
        assert_eq!(h.remaining(), Some(1));
        assert!(!h.spinning());
        // 4: insert B again — RM = 0: spinning.
        h.observe(18, b);
        assert_eq!(h.remaining(), Some(0));
        assert!(h.spinning(), "warp identified as spinning");
        // 5: lock acquired — the CAS setp sees %r15 = 0: value mismatch,
        // everything resets, spinning state lost.
        h.observe(7, [0, 0]);
        assert!(!h.spinning());
        assert_eq!(h.match_pointer(), 0);
        assert_eq!(h.remaining(), None);
    }

    /// The Figure 7d walk-through: a normal `for` loop — the induction
    /// variable's value changes every iteration, so the value history never
    /// matches even though the path repeats.
    #[test]
    fn figure7d_normal_loop_not_spinning() {
        let mut h = hist(8);
        for i in 0..20u32 {
            h.observe(11, [i, 100]); // setp.lt %p4, %r20(=i), %r15(=100)
            assert!(!h.spinning(), "iteration {i}");
        }
    }

    #[test]
    fn period_one_loop_detected() {
        // while (atomicCAS(..) != 0): a single setp per iteration with a
        // constant failing value.
        let mut h = hist(8);
        h.observe(3, [1, 0]);
        assert!(!h.spinning());
        h.observe(3, [1, 0]);
        assert!(h.spinning(), "period-1 loop spins after 2 observations");
        // And stays spinning while values repeat.
        h.observe(3, [1, 0]);
        assert!(h.spinning());
    }

    #[test]
    fn modulo_aliasing_causes_false_spin() {
        // A loop counting by 256 with k = 8 MODULO hashing: the hashed value
        // never changes, so DDOS falsely detects spinning (Figure 14).
        let mut h = WarpHistory::new(HashKind::Modulo, 8, 8, 8);
        for i in 0..6u32 {
            h.observe(5, [i * 256, 10 * 256]);
        }
        assert!(h.spinning(), "MODULO hash aliases the stride away");
        // XOR hashing sees the high bits and never matches.
        let mut h = WarpHistory::new(HashKind::Xor, 8, 8, 8);
        for i in 0..6u32 {
            h.observe(5, [i * 256, 10 * 256]);
        }
        assert!(!h.spinning());
    }

    #[test]
    fn short_registers_cannot_detect() {
        // l <= 2: no period is detectable at all (2p < l has no solution).
        for l in [1usize, 2] {
            let mut h = hist(l);
            assert_eq!(h.max_period(), 0);
            for _ in 0..20 {
                h.observe(3, [1, 0]);
                h.observe(9, [0, 0]);
            }
            assert!(!h.spinning(), "l = {l}");
        }
        // l = 4 detects period 1 but not period 2.
        let mut h = hist(4);
        assert_eq!(h.max_period(), 1);
        for _ in 0..20 {
            h.observe(3, [1, 0]);
            h.observe(9, [0, 0]);
        }
        assert!(!h.spinning(), "period-2 loop needs l >= 5");
        let mut h = hist(4);
        for _ in 0..20 {
            h.observe(3, [1, 0]);
        }
        assert!(h.spinning(), "period-1 loop fits in l = 4");
    }

    #[test]
    fn preceding_junk_realigns_after_reset() {
        // Unrelated setps before the spin loop push the match pointer off
        // alignment; the detector must still converge.
        let mut h = hist(8);
        for j in 0..5u32 {
            h.observe(20 + j as usize, [j, j + 1]);
        }
        for _ in 0..12 {
            h.observe(3, [1, 0]);
            h.observe(9, [0, 0]);
        }
        assert!(h.spinning(), "detector recovers from preceding history");
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = hist(8);
        h.observe(3, [1, 0]);
        h.observe(3, [1, 0]);
        assert!(h.spinning());
        h.reset();
        assert!(!h.spinning());
        assert_eq!(h.remaining(), None);
        assert_eq!(h.match_pointer(), 0);
    }

    #[test]
    fn path_only_ablation_false_detects_normal_loops() {
        // Without value history, the Figure 7d normal loop looks periodic
        // and is (wrongly) classified as spinning — the ablation that
        // justifies the value registers.
        let mut h = hist(8).without_value_history();
        for i in 0..10u32 {
            h.observe(11, [i, 100]);
        }
        assert!(h.spinning(), "path-only detection cannot tell loops apart");
        // The full detector on the same stream stays clean.
        let mut h = hist(8);
        for i in 0..10u32 {
            h.observe(11, [i, 100]);
        }
        assert!(!h.spinning());
    }

    #[test]
    fn three_setp_spin_loop_detected_at_l8() {
        // Nested-lock failure path: three setps per iteration (ATM-style).
        let mut h = hist(8);
        assert_eq!(h.max_period(), 3);
        for _ in 0..12 {
            h.observe(3, [1, 0]);
            h.observe(7, [0, 0]);
            h.observe(11, [0, 0]);
        }
        assert!(h.spinning());
    }
}
