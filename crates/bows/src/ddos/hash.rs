//! The two hashing schemes of DDOS's history registers (Section IV-B).


/// Hashing scheme used before inserting into the path/value history
/// registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// Fold the 32-bit input into `bits` by XOR-ing successive `bits`-wide
    /// chunks: `v[b-1:0] ^ v[2b-1:b] ^ ...`. The paper's default; zero
    /// false detections at 8 bits.
    Xor,
    /// Keep only the least-significant `bits`. Cheap, but loops whose
    /// induction variable advances by a multiple of `2^bits` alias to a
    /// constant and cause false spin detections (Merge Sort / Heart Wall,
    /// Figure 14).
    Modulo,
}

impl HashKind {
    /// Hash a 32-bit value into `bits` bits (1..=16).
    pub fn hash(self, v: u32, bits: u8) -> u16 {
        debug_assert!((1..=16).contains(&bits));
        let mask = (1u32 << bits) - 1;
        match self {
            HashKind::Modulo => (v & mask) as u16,
            HashKind::Xor => {
                let mut acc = 0u32;
                let mut x = v;
                // Fold all 32 bits, including the final partial chunk.
                let mut consumed = 0;
                while consumed < 32 {
                    acc ^= x & mask;
                    x >>= bits;
                    consumed += bits as u32;
                }
                (acc & mask) as u16
            }
        }
    }

    /// Lower-case name for reports ("xor" / "modulo").
    pub fn name(self) -> &'static str {
        match self {
            HashKind::Xor => "xor",
            HashKind::Modulo => "modulo",
        }
    }
}

/// Hash a path-history input: the instruction *index* (the paper hashes
/// `((PC - PC_kernel_start) / inst_size)`).
pub fn hash_path(kind: HashKind, inst_index: usize, bits: u8) -> u16 {
    kind.hash(inst_index as u32, bits)
}

/// Hash a value-history input: a `setp` source operand value.
pub fn hash_value(kind: HashKind, v: u32, bits: u8) -> u16 {
    kind.hash(v, bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_keeps_low_bits() {
        assert_eq!(HashKind::Modulo.hash(0x1234_5678, 8), 0x78);
        assert_eq!(HashKind::Modulo.hash(0x1234_5678, 4), 0x8);
    }

    #[test]
    fn modulo_aliases_power_of_two_strides() {
        // Induction variable stepping by 256: the low 8 bits never change —
        // the false-detection mechanism of Figure 14.
        let h0 = HashKind::Modulo.hash(0x0100, 8);
        let h1 = HashKind::Modulo.hash(0x0200, 8);
        assert_eq!(h0, h1);
        // XOR folding sees the high bits.
        assert_ne!(HashKind::Xor.hash(0x0100, 8), HashKind::Xor.hash(0x0200, 8));
    }

    #[test]
    fn xor_folds_all_chunks() {
        // 8-bit: 0x12 ^ 0x34 ^ 0x56 ^ 0x78.
        assert_eq!(
            HashKind::Xor.hash(0x1234_5678, 8),
            (0x12 ^ 0x34 ^ 0x56 ^ 0x78) as u16
        );
        // 4-bit: fold 8 nibbles.
        let expect = 0x8;
        assert_eq!(HashKind::Xor.hash(0x1234_5678, 4), expect as u16);
    }

    #[test]
    fn hash_fits_width() {
        for bits in [2u8, 3, 4, 8] {
            for v in [0u32, 1, 0xffff_ffff, 0x8000_0001, 12345] {
                for kind in [HashKind::Xor, HashKind::Modulo] {
                    assert!(kind.hash(v, bits) < (1 << bits));
                }
            }
        }
    }

    #[test]
    fn one_bit_width_is_parity_or_lsb() {
        // bits = 1, the narrowest legal width: XOR folding degenerates to
        // the parity of all 32 bits, MODULO to the least-significant bit.
        assert_eq!(HashKind::Xor.hash(0, 1), 0);
        assert_eq!(HashKind::Xor.hash(1, 1), 1);
        assert_eq!(HashKind::Xor.hash(0b11, 1), 0);
        assert_eq!(HashKind::Xor.hash(0x8000_0000, 1), 1);
        assert_eq!(HashKind::Xor.hash(0xffff_ffff, 1), 0);
        for v in [0u32, 1, 2, 3, 0xffff_fffe, 0xffff_ffff] {
            assert_eq!(HashKind::Xor.hash(v, 1), (v.count_ones() & 1) as u16);
            assert_eq!(HashKind::Modulo.hash(v, 1), (v & 1) as u16);
        }
    }

    #[test]
    fn sixteen_bit_width_folds_exactly_two_halves() {
        // bits = 16, the widest legal width: the mask computation must not
        // overflow, XOR folds high half into low half, MODULO truncates.
        assert_eq!(HashKind::Xor.hash(0x1234_5678, 16), 0x1234 ^ 0x5678);
        assert_eq!(HashKind::Xor.hash(0xffff_0000, 16), 0xffff);
        assert_eq!(HashKind::Xor.hash(0xffff_ffff, 16), 0);
        assert_eq!(HashKind::Modulo.hash(0x1234_5678, 16), 0x5678);
        assert_eq!(HashKind::Modulo.hash(0xffff_0000, 16), 0);
    }

    #[test]
    fn hash_fits_width_at_boundaries() {
        for bits in [1u8, 16] {
            for v in [0u32, 1, 0xffff_ffff, 0x8000_0001, 12345] {
                for kind in [HashKind::Xor, HashKind::Modulo] {
                    assert!(u32::from(kind.hash(v, bits)) < (1u32 << bits));
                }
            }
        }
    }

    #[test]
    fn xor_with_non_divisor_width() {
        // 3-bit chunks over 32 bits: 11 chunks, last partial. Must not
        // panic and must fit.
        let h = HashKind::Xor.hash(0xdead_beef, 3);
        assert!(h < 8);
    }
}
