//! DDOS — Dynamic Detection Of Spinning (paper Section IV).
//!
//! Per warp, DDOS keeps a path history and a value history of the `setp`
//! instructions the warp's *profiled thread* (first active lane) executes;
//! a match-pointer mechanism detects periodicity in the combined stream,
//! classifying the warp as *spinning*. A per-SM [`SibPt`] accumulates
//! confidence that a given backward branch is a *spin-inducing branch*
//! (SIB); BOWS consumes those predictions.

pub mod hash;
pub mod history;
pub mod sibpt;

pub use hash::HashKind;
pub use history::{Record, WarpHistory};
pub use sibpt::{SibEntry, SibPt};

use simt_core::SpinDetector;

/// DDOS design parameters (the knobs of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdosConfig {
    /// Hashing scheme (`h`): XOR (default) or MODULO.
    pub hash: HashKind,
    /// Path-hash width in bits (`m`).
    pub path_bits: u8,
    /// Value-hash width in bits (`k`).
    pub value_bits: u8,
    /// History length in `setp` records (`l`).
    pub history_len: usize,
    /// SIB-PT confidence threshold (`t`).
    pub confidence: u32,
    /// `Some(epoch)`: one shared history-register set time-multiplexed
    /// between warps with the given epoch length in cycles; `None`:
    /// dedicated registers per warp.
    pub time_share_epoch: Option<u64>,
    /// SIB-PT entries.
    pub sibpt_entries: usize,
    /// Ablation: when false, DDOS compares only path history (every loop
    /// then looks like a spin loop — Section IV's justification for the
    /// value registers).
    pub track_values: bool,
}

impl Default for DdosConfig {
    /// The paper's evaluation configuration: XOR, m = k = 8, l = 8, t = 4,
    /// no time sharing, 16-entry SIB-PT.
    fn default() -> DdosConfig {
        DdosConfig {
            hash: HashKind::Xor,
            path_bits: 8,
            value_bits: 8,
            history_len: 8,
            confidence: 4,
            time_share_epoch: None,
            sibpt_entries: 16,
            track_values: true,
        }
    }
}

impl DdosConfig {
    /// Storage for the history registers, bits per warp
    /// (`l*m + 2*l*k`; 192 bits at the default configuration — Table III).
    pub fn history_bits_per_warp(&self) -> u64 {
        self.history_len as u64 * self.path_bits as u64
            + 2 * self.history_len as u64 * self.value_bits as u64
    }

    /// SIB-PT storage in bits (35 bits per entry — Table III).
    pub fn sibpt_bits(&self) -> u64 {
        self.sibpt_entries as u64 * 35
    }
}

/// The per-SM DDOS unit. Implements [`SpinDetector`] so `simt-core` can
/// drive it from the ALU execution stage.
#[derive(Debug)]
pub struct Ddos {
    cfg: DdosConfig,
    /// Per-warp histories (length 1 when time-shared).
    hists: Vec<WarpHistory>,
    /// Per-warp spinning flag (kept separate so time-sharing can leave
    /// non-owner warps in a known state).
    spinning: Vec<bool>,
    sibpt: SibPt,
    /// Time-sharing owner rotation.
    owner: usize,
    num_warps: usize,
}

impl Ddos {
    /// A DDOS unit for an SM with `num_warps` warp slots.
    pub fn new(cfg: DdosConfig, num_warps: usize) -> Ddos {
        let mk = || {
            let h = WarpHistory::new(cfg.hash, cfg.path_bits, cfg.value_bits, cfg.history_len);
            if cfg.track_values {
                h
            } else {
                h.without_value_history()
            }
        };
        let hists = if cfg.time_share_epoch.is_some() {
            vec![mk()]
        } else {
            (0..num_warps).map(|_| mk()).collect()
        };
        Ddos {
            cfg,
            hists,
            spinning: vec![false; num_warps],
            sibpt: SibPt::new(cfg.sibpt_entries, cfg.confidence),
            owner: 0,
            num_warps,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DdosConfig {
        &self.cfg
    }

    /// Is the warp currently classified as spinning?
    pub fn warp_spinning(&self, warp: usize) -> bool {
        self.spinning.get(warp).copied().unwrap_or(false)
    }

    /// SIB-PT occupancy (Table III sizing).
    pub fn sibpt_occupancy(&self) -> usize {
        self.sibpt.occupancy()
    }

    fn time_share_owner(&self, now: u64) -> Option<usize> {
        self.cfg
            .time_share_epoch
            .map(|epoch| ((now / epoch) as usize) % self.num_warps.max(1))
    }
}

impl SpinDetector for Ddos {
    fn on_setp(&mut self, now: u64, warp: usize, pc: usize, srcs: [u32; 2]) {
        match self.time_share_owner(now) {
            None => {
                let h = &mut self.hists[warp];
                h.observe(pc, srcs);
                self.spinning[warp] = h.spinning();
            }
            Some(owner) => {
                if owner != self.owner {
                    // Epoch rolled over: the registers change hands.
                    self.hists[0].reset();
                    self.spinning[self.owner] = false;
                    self.owner = owner;
                }
                if warp == owner {
                    self.hists[0].observe(pc, srcs);
                    self.spinning[warp] = self.hists[0].spinning();
                }
            }
        }
    }

    fn on_branch(&mut self, now: u64, warp: usize, pc: usize, target: usize, taken_any: bool) {
        if target > pc {
            return; // only backward branches are SIB candidates
        }
        if self.spinning.get(warp).copied().unwrap_or(false) {
            self.sibpt.observe_spinning(pc, now);
        } else if taken_any {
            // Decrement only when the time-sharing arrangement actually
            // observes this warp (non-owners have unknown state).
            let observed = match self.time_share_owner(now) {
                None => true,
                Some(owner) => warp == owner,
            };
            if observed {
                self.sibpt.observe_non_spinning(pc);
            }
        }
    }

    fn is_sib(&self, pc: usize) -> bool {
        self.sibpt.predict(pc)
    }

    fn warp_reset(&mut self, warp: usize) {
        if self.cfg.time_share_epoch.is_none() {
            if let Some(h) = self.hists.get_mut(warp) {
                h.reset();
            }
        } else if warp == self.owner {
            self.hists[0].reset();
        }
        if let Some(s) = self.spinning.get_mut(warp) {
            *s = false;
        }
    }

    fn confirmed_sibs(&self) -> Vec<(usize, u64)> {
        self.sibpt.confirmed()
    }

    fn name(&self) -> &'static str {
        "ddos"
    }

    fn save_state(&self, w: &mut simt_snap::SnapWriter) {
        w.usize(self.hists.len());
        for h in &self.hists {
            h.save_snap(w);
        }
        w.usize(self.spinning.len());
        for &s in &self.spinning {
            w.bool(s);
        }
        self.sibpt.save_snap(w);
        w.usize(self.owner);
    }

    fn load_state(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        use simt_snap::SnapshotError;
        let nh = r.len(4)?;
        if nh != self.hists.len() {
            return Err(SnapshotError::malformed(format!(
                "ddos: snapshot has {nh} history sets, this unit has {}",
                self.hists.len()
            )));
        }
        for h in &mut self.hists {
            h.load_snap(r)?;
        }
        let ns = r.len(1)?;
        if ns != self.spinning.len() {
            return Err(SnapshotError::malformed(format!(
                "ddos: snapshot tracks {ns} warps, this unit has {}",
                self.spinning.len()
            )));
        }
        for s in &mut self.spinning {
            *s = r.bool()?;
        }
        self.sibpt.load_snap(r)?;
        let owner = r.usize()?;
        if owner >= self.num_warps.max(1) {
            return Err(SnapshotError::malformed(format!(
                "ddos: owner {owner} out of range for {} warps",
                self.num_warps
            )));
        }
        self.owner = owner;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a synthetic warp through a two-setp spin loop with the
    /// backward branch at `bra_pc`.
    fn spin_iterations(d: &mut Ddos, warp: usize, n: usize, start: u64) -> u64 {
        let mut now = start;
        for _ in 0..n {
            d.on_setp(now, warp, 3, [1, 0]);
            now += 1;
            d.on_setp(now, warp, 9, [0, 0]);
            now += 1;
            d.on_branch(now, warp, 10, 2, true);
            now += 1;
        }
        now
    }

    #[test]
    fn detects_spin_loop_and_confirms_sib() {
        let mut d = Ddos::new(DdosConfig::default(), 4);
        assert!(!d.is_sib(10));
        spin_iterations(&mut d, 0, 10, 0);
        assert!(d.warp_spinning(0));
        assert!(d.is_sib(10), "branch confirmed after t=4 spinning hits");
        assert_eq!(d.confirmed_sibs().len(), 1);
        assert_eq!(d.name(), "ddos");
    }

    #[test]
    fn normal_loop_never_confirms() {
        let mut d = Ddos::new(DdosConfig::default(), 4);
        let mut now = 0;
        for i in 0..100u32 {
            d.on_setp(now, 0, 5, [i, 100]);
            now += 1;
            d.on_branch(now, 0, 6, 4, true);
            now += 1;
        }
        assert!(!d.warp_spinning(0));
        assert!(!d.is_sib(6));
        assert!(d.confirmed_sibs().is_empty());
    }

    #[test]
    fn forward_branches_ignored() {
        let mut d = Ddos::new(DdosConfig::default(), 4);
        spin_iterations(&mut d, 0, 10, 0);
        // A forward branch executed by a spinning warp is not a candidate.
        d.on_branch(100, 0, 4, 8, true);
        assert!(!d.is_sib(4));
    }

    #[test]
    fn multiple_warps_accumulate_confidence_faster() {
        let cfg = DdosConfig::default();
        let mut d = Ddos::new(cfg, 4);
        // Two warps each contribute 2 spinning observations: confirmed.
        for w in 0..2 {
            let mut now = (w as u64) * 1000;
            // Warm up the detector for this warp (needs 2 iterations).
            now = spin_iterations(&mut d, w, 2, now);
            spin_iterations(&mut d, w, 2, now);
        }
        assert!(d.is_sib(10));
    }

    #[test]
    fn warp_reset_clears_history() {
        let mut d = Ddos::new(DdosConfig::default(), 4);
        spin_iterations(&mut d, 0, 3, 0);
        assert!(d.warp_spinning(0));
        d.warp_reset(0);
        assert!(!d.warp_spinning(0));
    }

    #[test]
    fn non_spinning_branches_erode_confidence() {
        let cfg = DdosConfig {
            confidence: 2,
            ..DdosConfig::default()
        };
        let mut d = Ddos::new(cfg, 4);
        spin_iterations(&mut d, 0, 6, 0);
        assert!(d.is_sib(10));
        // A non-spinning warp (warp 1, no history) takes the same branch
        // repeatedly: prediction decays.
        for i in 0..10 {
            d.on_branch(1000 + i, 1, 10, 2, true);
        }
        assert!(!d.is_sib(10));
        // The confirmation event is still recorded for Table I.
        assert_eq!(d.confirmed_sibs().len(), 1);
    }

    #[test]
    fn time_sharing_only_tracks_owner() {
        let cfg = DdosConfig {
            time_share_epoch: Some(1000),
            ..DdosConfig::default()
        };
        let mut d = Ddos::new(cfg, 2);
        // Warp 1 spins during warp 0's ownership epoch: ignored.
        spin_iterations(&mut d, 1, 10, 0);
        assert!(!d.warp_spinning(1));
        assert!(!d.is_sib(10));
        // Warp 1 spins during its own epoch (cycles 1000..2000): detected.
        spin_iterations(&mut d, 1, 10, 1000);
        assert!(d.warp_spinning(1));
        assert!(d.is_sib(10));
    }

    #[test]
    fn table3_storage_numbers() {
        let cfg = DdosConfig::default();
        assert_eq!(cfg.history_bits_per_warp(), 192);
        assert_eq!(cfg.sibpt_bits(), 560);
        assert_eq!(48 * cfg.history_bits_per_warp(), 9216);
    }
}
