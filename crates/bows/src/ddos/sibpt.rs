//! The Spin-inducing Branch Prediction Table (SIB-PT), shared per SM.

/// One SIB-PT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SibEntry {
    /// Branch instruction index.
    pub pc: usize,
    /// Saturating confidence counter.
    pub confidence: u32,
    /// Cycle the confidence first reached the threshold, if ever.
    pub confirmed_at: Option<u64>,
}

/// A small, per-SM table of backward-branch PCs with confidence counters.
///
/// A branch executed by a *spinning* warp gains confidence; once it reaches
/// the threshold `t` the branch is predicted spin-inducing. A branch
/// executed (taken) by a *non-spinning* warp loses confidence, guarding
/// against accumulated hash-aliasing errors.
#[derive(Debug, Clone)]
pub struct SibPt {
    entries: Vec<SibEntry>,
    capacity: usize,
    threshold: u32,
}

impl SibPt {
    /// A table with `capacity` entries and confidence threshold `t`.
    pub fn new(capacity: usize, threshold: u32) -> SibPt {
        SibPt {
            entries: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            threshold: threshold.max(1),
        }
    }

    /// A spinning warp executed the backward branch at `pc`.
    pub fn observe_spinning(&mut self, pc: usize, now: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.pc == pc) {
            e.confidence = e.confidence.saturating_add(1);
            if e.confidence >= self.threshold && e.confirmed_at.is_none() {
                e.confirmed_at = Some(now);
            }
            return;
        }
        if self.entries.len() == self.capacity {
            // Evict the least-confident unconfirmed entry, if any.
            if let Some(idx) = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.confirmed_at.is_none())
                .min_by_key(|(_, e)| e.confidence)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(idx);
            } else {
                return; // table full of confirmed entries: drop the observation
            }
        }
        let confirmed_at = (self.threshold == 1).then_some(now);
        self.entries.push(SibEntry {
            pc,
            confidence: 1,
            confirmed_at,
        });
    }

    /// A non-spinning warp took the backward branch at `pc`.
    pub fn observe_non_spinning(&mut self, pc: usize) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.pc == pc) {
            e.confidence = e.confidence.saturating_sub(1);
        }
    }

    /// Current prediction for `pc` (confidence at or above threshold).
    pub fn predict(&self, pc: usize) -> bool {
        self.entries
            .iter()
            .any(|e| e.pc == pc && e.confidence >= self.threshold)
    }

    /// All entries ever confirmed, with confirmation cycle.
    pub fn confirmed(&self) -> Vec<(usize, u64)> {
        self.entries
            .iter()
            .filter_map(|e| e.confirmed_at.map(|c| (e.pc, c)))
            .collect()
    }

    /// Live entry count (Table III sizing experiments).
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Serialize entries verbatim — slot order matters: lookup, decrement,
    /// and `swap_remove` eviction all walk the table in insertion order, so
    /// a resumed table must be position-identical (checkpoint support).
    pub fn save_snap(&self, w: &mut simt_snap::SnapWriter) {
        w.usize(self.entries.len());
        for e in &self.entries {
            w.usize(e.pc);
            w.u32(e.confidence);
            match e.confirmed_at {
                Some(c) => {
                    w.bool(true);
                    w.u64(c);
                }
                None => w.bool(false),
            }
        }
    }

    /// Restore a table written by [`SibPt::save_snap`] into a table with
    /// the same capacity and threshold.
    ///
    /// # Errors
    ///
    /// [`simt_snap::SnapshotError`] on truncated/corrupt bytes or an entry
    /// count exceeding this table's capacity.
    pub fn load_snap(
        &mut self,
        r: &mut simt_snap::SnapReader<'_>,
    ) -> Result<(), simt_snap::SnapshotError> {
        let n = r.len(13)?;
        if n > self.capacity {
            return Err(simt_snap::SnapshotError::malformed(format!(
                "SIB-PT holds {n} entries, capacity is {}",
                self.capacity
            )));
        }
        let mut entries = Vec::with_capacity(self.capacity);
        for _ in 0..n {
            entries.push(SibEntry {
                pc: r.usize()?,
                confidence: r.u32()?,
                confirmed_at: if r.bool()? { Some(r.u64()?) } else { None },
            });
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_at_threshold() {
        let mut t = SibPt::new(16, 4);
        for i in 0..3 {
            t.observe_spinning(9, 100 + i);
            assert!(!t.predict(9), "below threshold after {} hits", i + 1);
        }
        t.observe_spinning(9, 103);
        assert!(t.predict(9));
        assert_eq!(t.confirmed(), vec![(9, 103)]);
    }

    #[test]
    fn non_spinning_decrements() {
        let mut t = SibPt::new(16, 2);
        t.observe_spinning(9, 0);
        t.observe_non_spinning(9);
        t.observe_spinning(9, 1);
        assert!(!t.predict(9), "1 - 1 + 1 = 1 < 2");
        t.observe_spinning(9, 2);
        assert!(t.predict(9));
        // Confidence can drop back below threshold (dynamic prediction)...
        t.observe_non_spinning(9);
        assert!(!t.predict(9));
        // ...but the confirmation record remains for accuracy metrics.
        assert_eq!(t.confirmed().len(), 1);
    }

    #[test]
    fn decrement_of_unknown_pc_is_noop() {
        let mut t = SibPt::new(4, 2);
        t.observe_non_spinning(77);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn eviction_prefers_low_confidence_unconfirmed() {
        let mut t = SibPt::new(2, 4);
        t.observe_spinning(1, 0);
        t.observe_spinning(1, 1);
        t.observe_spinning(2, 2);
        // Table full; pc 3 evicts pc 2 (confidence 1 < 2).
        t.observe_spinning(3, 3);
        assert_eq!(t.occupancy(), 2);
        assert!(t.entries.iter().any(|e| e.pc == 1));
        assert!(t.entries.iter().any(|e| e.pc == 3));
    }

    #[test]
    fn threshold_one_confirms_immediately() {
        let mut t = SibPt::new(4, 1);
        t.observe_spinning(5, 42);
        assert!(t.predict(5));
        assert_eq!(t.confirmed(), vec![(5, 42)]);
    }
}
