//! Simulation-as-a-service front end for the bows-sim reproduction of
//! *Warp Scheduling for Fine-Grained Synchronization* (HPCA 2018).
//!
//! The simulator underneath is bit-deterministic, which makes it unusually
//! servable: a request's response body is a pure function of the request,
//! so results can be content-addressed ([`request::SimRequest::cache_key`])
//! and cached, and a wrong byte anywhere is a hard bug rather than noise.
//! This crate turns the library into a resilient service:
//!
//! * [`request`] — the JSON request schema, validation limits, the cache
//!   key, and the shared execution function;
//! * [`cache`] — a bounded, checksummed LRU over response bodies;
//! * [`admission`] — bounded priority queues, per-tenant quotas, and
//!   EWMA-based load shedding with `Retry-After` hints;
//! * [`pool`] — supervised execution: panic isolation, per-attempt wall
//!   deadlines (cooperative via [`simt_core::CancelToken`], forcible via
//!   reaping), and retry with exponential backoff + deterministic jitter;
//! * [`chaos`] — seeded service-level fault injection (worker panics,
//!   worker slowness, cache corruption) for closed-loop resilience drills;
//! * [`service`] — the transport-independent core tying those together;
//! * [`http`] — a std-only HTTP/1.1 adapter (`bows-serve`) plus the tiny
//!   client the `loadgen` SLO harness uses;
//! * [`json`] — the hand-rolled JSON layer (no external deps) with the
//!   serializers for [`simt_core::SimStats`], [`simt_mem::MemStats`],
//!   [`simt_core::HangReport`] and [`simt_core::SimError`].

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod http;
pub mod json;
pub mod pool;
pub mod request;
pub mod service;
pub mod store;

pub use admission::{Admission, AdmissionConfig, Refusal};
pub use cache::{Lookup, ResultCache};
pub use chaos::ServiceChaos;
pub use http::HttpServer;
pub use json::Json;
pub use pool::{install_quiet_panic_hook, JobResult, PoolConfig};
pub use request::{run_request, run_request_with, RunOutcome, SimRequest};
pub use service::{Response, ServeConfig, Service};
pub use store::{DurableStore, RecoveryStats, StoredEntry};
