//! The service core: cache in front, admission in the middle, supervised
//! workers behind — independent of any transport.
//!
//! [`Service::submit`] is the whole request path:
//!
//! 1. **cache** — a verified hit returns immediately (no admission
//!    charge, no queueing); corrupt entries are evicted and re-simulated;
//! 2. **admission** — drain, tenant quota, and overload gates refuse with
//!    a structured [`Refusal`] the HTTP layer maps to 429/503;
//! 3. **workers** — a fixed pool takes queued jobs highest-priority-first
//!    and runs each under [`execute_supervised`] (panic isolation,
//!    deadlines, retry/backoff, reaping).
//!
//! The HTTP front end in [`crate::http`] is a thin adapter over this type,
//! which keeps every behavior here testable in-process.

use crate::admission::{Admission, AdmissionConfig, Refusal};
use crate::cache::{Lookup, ResultCache};
use crate::chaos::{ServiceChaos, StoreFault};
use crate::json::Json;
use crate::pool::{execute_supervised, JobResult, PoolConfig, PoolCounters};
use crate::request::SimRequest;
use crate::store::DurableStore;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker (supervisor) threads.
    pub workers: usize,
    /// Admission gates. `admission.workers` is overwritten with `workers`.
    pub admission: AdmissionConfig,
    /// Supervision policy.
    pub pool: PoolConfig,
    /// Result-cache capacity, entries.
    pub cache_entries: usize,
    /// Service-level fault injection.
    pub chaos: ServiceChaos,
    /// Durable result store directory. When set, every cold success body
    /// is appended to an fsync'd log here and replayed into the cache on
    /// the next start, so a restart (or a SIGKILL) loses no committed
    /// result. `None` keeps the cache purely in-memory.
    pub state_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            admission: AdmissionConfig::default(),
            pool: PoolConfig::default(),
            cache_entries: 256,
            chaos: ServiceChaos::off(),
            state_dir: None,
        }
    }
}

/// A finished request as the transport sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP-shaped status code (200/422/429/500/503/504).
    pub status: u16,
    /// JSON body. Cached and cold success bodies are byte-identical; the
    /// cache disposition travels only in [`Response::cached`].
    pub body: String,
    /// Served from the result cache.
    pub cached: bool,
    /// Client back-off hint for 429/503, seconds.
    pub retry_after: Option<u64>,
}

struct Job {
    id: u64,
    key: u64,
    /// Canonical request encoding: the identity cache entries bind to.
    canon: String,
    req: SimRequest,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    cfg: ServeConfig,
    admission: Mutex<Admission<Job>>,
    work_cv: Condvar,
    cache: Mutex<ResultCache>,
    /// Durable backing log for the cache; `None` without `state_dir` or
    /// when the log failed to open (the service degrades to in-memory).
    store: Option<Mutex<DurableStore>>,
    pool_counters: PoolCounters,
    requests: AtomicU64,
    ok_responses: AtomicU64,
    lint_rejections: AtomicU64,
    sim_errors: AtomicU64,
    terminal_timeouts: AtomicU64,
    terminal_crashes: AtomicU64,
    in_flight: AtomicU64,
    job_seq: AtomicU64,
    shutdown: AtomicBool,
}

/// The simulation service.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start the worker pool. With a `state_dir`, first recover the
    /// durable log — truncating any torn tail — and replay every
    /// committed result into the cache, so a restarted service serves
    /// pre-crash results as warm hits. A store that cannot open is a
    /// warning, not a startup failure: the service runs in-memory.
    pub fn start(mut cfg: ServeConfig) -> Service {
        cfg.workers = cfg.workers.max(1);
        cfg.admission.workers = cfg.workers;
        let nworkers = cfg.workers;
        let mut cache = ResultCache::new(cfg.cache_entries);
        let store = cfg.state_dir.as_ref().and_then(|dir| {
            match DurableStore::open(dir) {
                Ok((store, entries)) => {
                    // Log order: the newest record for a key replays last
                    // and wins, matching the order results were committed.
                    for e in entries {
                        cache.insert(e.key, e.canon, e.body);
                    }
                    Some(Mutex::new(store))
                }
                Err(e) => {
                    eprintln!(
                        "warning: durable store at {} unavailable ({e}); running in-memory",
                        dir.display()
                    );
                    None
                }
            }
        });
        let shared = Arc::new(Shared {
            admission: Mutex::new(Admission::new(cfg.admission)),
            work_cv: Condvar::new(),
            cache: Mutex::new(cache),
            store,
            pool_counters: PoolCounters::default(),
            requests: AtomicU64::new(0),
            ok_responses: AtomicU64::new(0),
            lint_rejections: AtomicU64::new(0),
            sim_errors: AtomicU64::new(0),
            terminal_timeouts: AtomicU64::new(0),
            terminal_crashes: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            job_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let workers = (0..nworkers)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&s))
            })
            .collect();
        Service { shared, workers }
    }

    /// Run one request through cache → admission → workers, blocking until
    /// its terminal response.
    pub fn submit(&self, req: SimRequest) -> Response {
        let s = &self.shared;
        s.requests.fetch_add(1, Ordering::Relaxed);
        let canon = req.canonical();
        let key = req.cache_key();
        match s.cache.lock().unwrap().lookup(key, &canon) {
            Lookup::Hit(body) => {
                s.ok_responses.fetch_add(1, Ordering::Relaxed);
                return Response {
                    status: 200,
                    body,
                    cached: true,
                    retry_after: None,
                };
            }
            Lookup::Miss | Lookup::Corrupt => {}
        }
        // Pre-admission lint: a kernel the static analyzer proves wrong —
        // racy, deadlocking, or reading garbage — is refused before it can
        // occupy a queue slot or a worker. Only assemblable kernels are
        // linted; an unassemblable one falls through to the worker's
        // structured `asm_error` 422 path unchanged.
        if let Ok(raw) = simt_isa::asm::assemble_raw(&req.kernel) {
            let analysis = simt_analyze::analyze_insts(&raw.insts);
            if analysis.has_errors() {
                s.lint_rejections.fetch_add(1, Ordering::Relaxed);
                return Response {
                    status: 422,
                    body: lint_reject_body(&raw.insts, &analysis.diagnostics),
                    cached: false,
                    retry_after: None,
                };
            }
        }
        let id = s.job_seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let tenant = req.tenant.clone();
        let priority = req.priority;
        let offer = s.admission.lock().unwrap().offer(
            &tenant,
            priority,
            Job {
                id,
                key,
                canon,
                req,
                reply: tx,
            },
        );
        if let Err(refusal) = offer {
            return refusal_response(refusal);
        }
        s.work_cv.notify_one();
        // The worker always replies before releasing the tenant slot, so
        // a closed channel here means a worker thread died mid-job — which
        // supervision is designed to make impossible. Surface it
        // structurally rather than panicking the transport.
        rx.recv().unwrap_or_else(|_| Response {
            status: 500,
            body: error_body("worker_lost", "worker disappeared mid-job"),
            cached: false,
            retry_after: None,
        })
    }

    /// Stop admitting, let queued and in-flight work finish (bounded by
    /// `timeout`), then stop the workers. Returns true on a clean drain,
    /// false if the timeout expired with work still in flight. On a dirty
    /// drain, jobs still queued when the workers stop are answered with a
    /// structured 503 — a caller blocked in [`Service::submit`] always
    /// gets a response, never a hang.
    pub fn drain(mut self, timeout: Duration) -> bool {
        let s = &self.shared;
        s.admission.lock().unwrap().start_drain();
        let deadline = Instant::now() + timeout;
        let mut clean = false;
        while Instant::now() < deadline {
            let backlog = s.admission.lock().unwrap().backlog();
            if backlog == 0 && s.in_flight.load(Ordering::Acquire) == 0 {
                clean = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        s.shutdown.store(true, Ordering::Release);
        s.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone; flush whatever they left queued so every
        // blocked submitter unblocks with a structured refusal.
        let mut adm = s.admission.lock().unwrap();
        while let Some(ticket) = adm.take() {
            let _ = ticket.job.reply.send(Response {
                status: 503,
                body: error_body("shutdown", "service stopped before this request ran"),
                cached: false,
                retry_after: Some(1),
            });
        }
        clean
    }

    /// Service counters as a JSON object (the `/stats` body).
    pub fn stats_json(&self) -> Json {
        let s = &self.shared;
        let (cache_hits, cache_misses, cache_corruptions, cache_collisions, cache_entries) =
            s.cache.lock().unwrap().stats();
        let (admitted, shed_quota, shed_overload) = s.admission.lock().unwrap().stats();
        let backlog = s.admission.lock().unwrap().backlog();
        let store_stats = s.store.as_ref().map(|st| {
            let st = st.lock().unwrap_or_else(|p| p.into_inner());
            let rec = st.recovery_stats();
            (
                st.persisted_entries(),
                rec.recovered,
                rec.truncated_bytes,
                rec.dropped_records,
                st.append_errors(),
            )
        });
        Json::Obj(vec![
            (
                "requests".into(),
                Json::UInt(s.requests.load(Ordering::Relaxed)),
            ),
            (
                "ok".into(),
                Json::UInt(s.ok_responses.load(Ordering::Relaxed)),
            ),
            (
                "sim_errors".into(),
                Json::UInt(s.sim_errors.load(Ordering::Relaxed)),
            ),
            (
                "lint_rejections".into(),
                Json::UInt(s.lint_rejections.load(Ordering::Relaxed)),
            ),
            (
                "terminal_timeouts".into(),
                Json::UInt(s.terminal_timeouts.load(Ordering::Relaxed)),
            ),
            (
                "terminal_crashes".into(),
                Json::UInt(s.terminal_crashes.load(Ordering::Relaxed)),
            ),
            ("admitted".into(), Json::UInt(admitted)),
            ("shed_quota".into(), Json::UInt(shed_quota)),
            ("shed_overload".into(), Json::UInt(shed_overload)),
            ("backlog".into(), Json::UInt(backlog as u64)),
            (
                "in_flight".into(),
                Json::UInt(s.in_flight.load(Ordering::Relaxed)),
            ),
            ("cache_hits".into(), Json::UInt(cache_hits)),
            ("cache_misses".into(), Json::UInt(cache_misses)),
            (
                "cache_corruptions_detected".into(),
                Json::UInt(cache_corruptions),
            ),
            (
                "cache_key_collisions".into(),
                Json::UInt(cache_collisions),
            ),
            ("cache_entries".into(), Json::UInt(cache_entries as u64)),
            (
                "worker_panics_caught".into(),
                Json::UInt(s.pool_counters.panics.load(Ordering::Relaxed)),
            ),
            (
                "worker_timeouts".into(),
                Json::UInt(s.pool_counters.timeouts.load(Ordering::Relaxed)),
            ),
            (
                "workers_reaped".into(),
                Json::UInt(s.pool_counters.reaped.load(Ordering::Relaxed)),
            ),
            (
                "retries".into(),
                Json::UInt(s.pool_counters.retries.load(Ordering::Relaxed)),
            ),
            (
                "attempts_resumed".into(),
                Json::UInt(s.pool_counters.resumed.load(Ordering::Relaxed)),
            ),
            (
                "persisted_entries".into(),
                Json::UInt(store_stats.map_or(0, |t| t.0)),
            ),
            (
                "store_recovered_entries".into(),
                Json::UInt(store_stats.map_or(0, |t| t.1)),
            ),
            (
                "store_truncated_bytes".into(),
                Json::UInt(store_stats.map_or(0, |t| t.2)),
            ),
            (
                "store_dropped_records".into(),
                Json::UInt(store_stats.map_or(0, |t| t.3)),
            ),
            (
                "store_append_errors".into(),
                Json::UInt(store_stats.map_or(0, |t| t.4)),
            ),
            (
                "draining".into(),
                Json::Bool(self.shared.admission.lock().unwrap().draining()),
            ),
        ])
    }

    /// Begin refusing new work (the `/admin/drain` handler); existing work
    /// continues. Use [`Service::drain`] to also stop the pool.
    pub fn start_drain(&self) {
        self.shared.admission.lock().unwrap().start_drain();
    }

    /// True once a drain has been requested.
    pub fn draining(&self) -> bool {
        self.shared.admission.lock().unwrap().draining()
    }
}

/// The 422 body for a statically-rejected kernel: the standard error
/// envelope plus the full diagnostic list (with machine-readable
/// witnesses) in the same wire format as `bows-run --lint --format json`.
fn lint_reject_body(insts: &[simt_isa::Inst], diags: &[simt_analyze::Diagnostic]) -> String {
    Json::Obj(vec![(
        "error".into(),
        Json::Obj(vec![
            ("kind".into(), Json::Str("lint_rejected".into())),
            (
                "message".into(),
                Json::Str(
                    "kernel rejected by static analysis: it provably races or cannot terminate"
                        .into(),
                ),
            ),
            (
                "diagnostics".into(),
                crate::json::diagnostics_json(insts, diags),
            ),
        ]),
    )])
    .render()
}

fn error_body(kind: &str, message: &str) -> String {
    Json::Obj(vec![(
        "error".into(),
        Json::Obj(vec![
            ("kind".into(), Json::Str(kind.into())),
            ("message".into(), Json::Str(message.into())),
        ]),
    )])
    .render()
}

fn refusal_response(r: Refusal) -> Response {
    match r {
        Refusal::Draining => Response {
            status: 503,
            body: error_body("draining", "service is draining; retry another replica"),
            cached: false,
            retry_after: Some(1),
        },
        Refusal::TenantQuota { retry_after_s } => Response {
            status: 429,
            body: error_body("tenant_quota", "tenant is at its in-flight quota"),
            cached: false,
            retry_after: Some(retry_after_s),
        },
        Refusal::Overloaded { retry_after_s } => Response {
            status: 503,
            body: error_body("overloaded", "queue full or estimated wait over bound"),
            cached: false,
            retry_after: Some(retry_after_s),
        },
    }
}

fn worker_loop(s: &Shared) {
    loop {
        let ticket = {
            let mut adm = s.admission.lock().unwrap();
            loop {
                // Shutdown wins over queued work: past the drain deadline
                // the queue's survivors are answered by `drain`, not run.
                if s.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                if let Some(t) = adm.take() {
                    break Some(t);
                }
                let (guard, _) = s
                    .work_cv
                    .wait_timeout(adm, Duration::from_millis(100))
                    .unwrap();
                adm = guard;
            }
        };
        let Some(ticket) = ticket else { return };
        s.in_flight.fetch_add(1, Ordering::AcqRel);
        let started = Instant::now();
        let job = ticket.job;
        let result = execute_supervised(
            &job.req,
            job.id,
            &s.cfg.pool,
            &s.cfg.chaos,
            &s.pool_counters,
        );
        let response = match result {
            JobResult::Ok(body) => {
                {
                    let mut cache = s.cache.lock().unwrap();
                    cache.insert(job.key, job.canon.clone(), body.clone());
                    if s.cfg.chaos.corrupt_insert(job.id) {
                        cache.corrupt_for_chaos(job.key);
                    }
                }
                // Persist after the in-memory insert; the response does
                // not wait on durability semantics beyond the append's
                // own fsync, and an append failure (disk error or an
                // injected torn/short/flipped write) only means the next
                // restart re-simulates this key. Never a wrong body.
                if let Some(store) = &s.store {
                    let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
                    let r = match s.cfg.chaos.store_fault(job.id) {
                        StoreFault::None => store.append(job.key, &job.canon, &body),
                        fault => store.append_faulty(job.key, &job.canon, &body, fault),
                    };
                    if let Err(e) = r {
                        eprintln!("warning: durable store append failed: {e}");
                    }
                }
                s.ok_responses.fetch_add(1, Ordering::Relaxed);
                Response {
                    status: 200,
                    body,
                    cached: false,
                    retry_after: None,
                }
            }
            JobResult::SimError(body) => {
                s.sim_errors.fetch_add(1, Ordering::Relaxed);
                Response {
                    status: 422,
                    body,
                    cached: false,
                    retry_after: None,
                }
            }
            JobResult::TimedOut => {
                s.terminal_timeouts.fetch_add(1, Ordering::Relaxed);
                Response {
                    status: 504,
                    body: error_body(
                        "deadline_exhausted",
                        "every attempt hit its wall deadline",
                    ),
                    cached: false,
                    retry_after: None,
                }
            }
            JobResult::Crashed => {
                s.terminal_crashes.fetch_add(1, Ordering::Relaxed);
                Response {
                    status: 500,
                    body: error_body("worker_crash", "every attempt panicked"),
                    cached: false,
                    retry_after: None,
                }
            }
        };
        // Reply before releasing the slot: see the comment in `submit`.
        let _ = job.reply.send(response);
        let elapsed_ms = started.elapsed().as_millis() as u64;
        s.admission
            .lock()
            .unwrap()
            .release(&ticket.tenant, elapsed_ms);
        s.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VEC_KERNEL_REQ: &str = r#"{"kernel":".kernel inc\n.regs 8\n.params 1\n    ld.param r1, [0]\n    mov r2, %gtid\n    shl r2, r2, 2\n    add r1, r1, r2\n    ld.global r3, [r1]\n    add r3, r3, 1\n    st.global [r1], r3\n    exit\n","tpc":32,"params":[{"buf":32,"fill":5}],"dumps":[[0,4]]}"#;

    fn small_service(chaos: ServiceChaos) -> Service {
        Service::start(ServeConfig {
            workers: 2,
            admission: AdmissionConfig {
                queue_cap: 32,
                tenant_quota: 32,
                max_queue_wait_ms: u64::MAX,
                workers: 2,
            },
            pool: PoolConfig {
                max_retries: 2,
                backoff_base_ms: 1,
                backoff_cap_ms: 4,
                attempt_deadline_ms: 10_000,
                reap_grace_ms: 200,
                sm_threads: 0,
                checkpoint_every_cycles: 0,
            },
            cache_entries: 16,
            chaos,
            state_dir: None,
        })
    }

    #[test]
    fn cold_then_cached_byte_identical() {
        let svc = small_service(ServiceChaos::off());
        let req = SimRequest::from_json(VEC_KERNEL_REQ).unwrap();
        let cold = svc.submit(req.clone());
        assert_eq!(cold.status, 200);
        assert!(!cold.cached);
        let warm = svc.submit(req);
        assert_eq!(warm.status, 200);
        assert!(warm.cached);
        assert_eq!(cold.body, warm.body, "cache must serve identical bytes");
        assert!(svc.drain(Duration::from_secs(5)));
    }

    #[test]
    fn corrupted_cache_entry_is_resimulated_not_served() {
        // Corrupt every insert: each request re-simulates, yet every body
        // served is correct — corruption costs latency, never correctness.
        crate::pool::install_quiet_panic_hook();
        let svc = small_service(ServiceChaos {
            seed: 5,
            worker_panic_ppm: 0,
            worker_slow_ppm: 0,
            slow_ms: 0,
            cache_corrupt_ppm: 1_000_000,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        });
        let req = SimRequest::from_json(VEC_KERNEL_REQ).unwrap();
        let first = svc.submit(req.clone());
        let second = svc.submit(req);
        assert_eq!(first.status, 200);
        assert_eq!(second.status, 200);
        assert!(!second.cached, "corrupt entry must not serve");
        assert_eq!(first.body, second.body);
        let stats = svc.stats_json();
        assert!(
            stats.get("cache_corruptions_detected").unwrap().as_u64("c").unwrap() >= 1
        );
        assert!(svc.drain(Duration::from_secs(5)));
    }

    #[test]
    fn dirty_drain_answers_stranded_queued_jobs() {
        // One worker, every attempt slowed 400ms: occupy the worker, queue
        // a second job behind it, then drain with a zero timeout. The
        // stranded job's submitter must get a structured 503, not hang.
        let svc = Service::start(ServeConfig {
            workers: 1,
            admission: AdmissionConfig {
                queue_cap: 32,
                tenant_quota: 32,
                max_queue_wait_ms: u64::MAX,
                workers: 1,
            },
            pool: PoolConfig {
                max_retries: 0,
                backoff_base_ms: 1,
                backoff_cap_ms: 4,
                attempt_deadline_ms: 10_000,
                reap_grace_ms: 1_000,
                sm_threads: 0,
                checkpoint_every_cycles: 0,
            },
            cache_entries: 16,
            state_dir: None,
            chaos: ServiceChaos {
                seed: 1,
                worker_panic_ppm: 0,
                worker_slow_ppm: 1_000_000,
                slow_ms: 400,
                cache_corrupt_ppm: 0,
                store_torn_ppm: 0,
                store_short_ppm: 0,
                store_flip_ppm: 0,
            },
        });
        let req = SimRequest::from_json(VEC_KERNEL_REQ).unwrap();
        let offer = |id: u64| {
            let (tx, rx) = mpsc::channel();
            svc.shared
                .admission
                .lock()
                .unwrap()
                .offer(
                    "t",
                    1,
                    Job {
                        id,
                        key: req.cache_key(),
                        canon: req.canonical(),
                        req: req.clone(),
                        reply: tx,
                    },
                )
                .map_err(|r| format!("{r:?}"))
                .unwrap();
            svc.shared.work_cv.notify_one();
            rx
        };
        let in_flight_rx = offer(0);
        while svc.shared.in_flight.load(Ordering::Acquire) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stranded_rx = offer(1);
        assert!(!svc.drain(Duration::from_millis(0)), "drain must report dirty");
        let stranded = stranded_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("stranded job must be answered, not hang");
        assert_eq!(stranded.status, 503);
        assert!(stranded.body.contains("shutdown"), "body: {}", stranded.body);
        let done = in_flight_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(done.status, 200, "in-flight job still finishes");
    }

    #[test]
    fn drain_refuses_new_work() {
        let svc = small_service(ServiceChaos::off());
        svc.start_drain();
        let req = SimRequest::from_json(VEC_KERNEL_REQ).unwrap();
        let r = svc.submit(req);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("draining"));
        assert!(svc.drain(Duration::from_secs(5)));
    }
}
