//! `loadgen` — closed-loop load generator and SLO harness for `bows-serve`.
//!
//! Drives a seeded, deterministic request mix (vector kernels, spin-lock
//! kernels, guaranteed-hang kernels, assembler errors, malformed JSON)
//! through the HTTP front end in three phases — warmup, a burst sized to
//! exceed the shedding threshold, cooldown — and then asserts SLOs:
//!
//! * **zero wrong results**: every 200 body is byte-identical to the body
//!   [`simt_serve::run_request`] computes locally for the same request;
//! * **zero unstructured failures**: every non-200 body parses as JSON
//!   with an `error.kind`, and every shed carries `Retry-After`;
//! * **bounded error rate**: terminal 500/504 responses (supervision
//!   budget exhausted under chaos) stay under a ceiling;
//! * **fast sheds**: p99 latency of 429/503 responses stays under a bound
//!   — load shedding that queues first is not load shedding.
//!
//! `--self-host` boots a [`Service`] + [`HttpServer`] in-process (the CI
//! smoke path); `--addr` targets a running `bows-serve`. `--chaos` arms
//! worker panics, worker slowness (past the attempt deadline, forcing
//! reaps), and cache corruption. Exit status is non-zero on any SLO
//! violation, so this binary *is* the acceptance test.

use simt_serve::chaos::splitmix64;
use simt_serve::http::client::{self, HttpResponse};
use simt_serve::json::{json_string, Json};
use simt_serve::{
    install_quiet_panic_hook, run_request, AdmissionConfig, HttpServer, PoolConfig, RunOutcome,
    ServeConfig, Service, ServiceChaos, SimRequest,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

const VEC_KERNEL: &str = "\
.kernel inc
.regs 8
.params 1
    ld.param r1, [0]
    mov r2, %gtid
    shl r2, r2, 2
    add r1, r1, r2
    ld.global r3, [r1]
    add r3, r3, 1
    st.global [r1], r3
    exit
";

const LOCK_KERNEL: &str = "\
.kernel spinlock_counter
.regs 10
.params 2
    ld.param r1, [0]
    ld.param r2, [4]
    mov r9, 0
SPIN:
    atom.global.cas r3, [r1], 0, 1 !acquire !sync
    setp.eq.s32 p1, r3, 0
@!p1 bra TEST
    ld.global.volatile r4, [r2]
    add r4, r4, 1
    st.global [r2], r4
    membar
    atom.global.exch r5, [r1], 0 !release !sync
    mov r9, 1
TEST:
    setp.eq.s32 p2, r9, 0 !sync
@p2 bra SPIN !sib !sync
    exit
";

/// Spins until `[param0] == 1`; the buffer holds 0, so it never exits. The
/// watchdog (or the cycle budget) turns this into a deterministic
/// structured 422 — never a hung worker.
const HANG_KERNEL: &str = "\
.kernel waits_forever
.regs 6
.params 1
    ld.param r1, [0]
SPIN:
    ld.global.volatile r2, [r1]
    setp.eq.s32 p1, r2, 1 !sync
@!p1 bra SPIN !sib !sync
    exit
";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// A 200 whose body the local oracle predicts.
    Ok,
    /// A deterministic 422 whose body the local oracle predicts.
    SimErr,
    /// A 400 (malformed JSON / failed validation).
    BadRequest,
}

struct Item {
    body: String,
    expect: Expect,
    /// Cache key, for `Expect::Ok` / `Expect::SimErr` items.
    key: Option<u64>,
}

fn vec_item(fill: u32, ctas: usize, engine: &str, bows: &str, tenant: &str, prio: u64) -> String {
    format!(
        "{{\"kernel\":{},\"ctas\":{ctas},\"tpc\":32,\"params\":[{{\"buf\":128,\"fill\":{fill}}}],\
         \"engine\":\"{engine}\",{bows}\"dumps\":[[0,8]],\"tenant\":\"{tenant}\",\"priority\":{prio}}}",
        json_string(VEC_KERNEL)
    )
}

fn build_mix(seed: u64, n: usize) -> Vec<Item> {
    let tenants = ["acme", "blue", "cern"];
    let engines = ["cycle", "skip"];
    let bows = ["", "\"bows\":\"adaptive\",", "\"bows\":24,"];
    (0..n as u64)
        .map(|i| {
            let r = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let tenant = tenants[(r >> 32) as usize % tenants.len()];
            let prio = (r >> 40) % 3;
            let (body, expect) = match r % 100 {
                0..=54 => (
                    // Few distinct variants, so the burst hits the cache.
                    vec_item(
                        1 + (r >> 8) as u32 % 4,
                        1 + (r >> 12) as usize % 2,
                        engines[(r >> 16) as usize % 2],
                        bows[(r >> 20) as usize % 3],
                        tenant,
                        prio,
                    ),
                    Expect::Ok,
                ),
                55..=69 => (
                    format!(
                        "{{\"kernel\":{},\"ctas\":2,\"tpc\":32,\
                         \"params\":[{{\"buf\":1}},{{\"buf\":1}}],\"bows\":\"adaptive\",\
                         \"dumps\":[[1,1]],\"tenant\":\"{tenant}\",\"priority\":{prio}}}",
                        json_string(LOCK_KERNEL)
                    ),
                    Expect::Ok,
                ),
                70..=79 => (
                    format!(
                        "{{\"kernel\":{},\"tpc\":32,\"params\":[{{\"buf\":1}}],\
                         \"timeout_cycles\":120000,\"tenant\":\"{tenant}\",\"priority\":{prio}}}",
                        json_string(HANG_KERNEL)
                    ),
                    Expect::SimErr,
                ),
                80..=89 => (
                    format!(
                        "{{\"kernel\":\"this is not assembly\",\
                         \"tenant\":\"{tenant}\",\"priority\":{prio}}}"
                    ),
                    Expect::SimErr,
                ),
                _ => ("{\"kernel\": 42,".to_string(), Expect::BadRequest),
            };
            let key = (expect != Expect::BadRequest)
                .then(|| SimRequest::from_json(&body).expect("generated body must parse"))
                .map(|r| r.cache_key());
            Item { body, expect, key }
        })
        .collect()
}

/// Compute the expected body for every unique cache key in the mix, by
/// running the same execution function the service workers run — locally,
/// chaos-free. This is the wrong-result oracle.
fn build_oracle(items: &[Item]) -> HashMap<u64, (Expect, String)> {
    let mut oracle = HashMap::new();
    for item in items {
        let Some(key) = item.key else { continue };
        if oracle.contains_key(&key) {
            continue;
        }
        let req = SimRequest::from_json(&item.body).expect("oracle body must parse");
        let expected = match run_request(&req, None) {
            RunOutcome::Ok(body) => (Expect::Ok, body),
            RunOutcome::SimError(body) => (Expect::SimErr, body),
            RunOutcome::Cancelled => unreachable!("oracle runs carry no cancel token"),
        };
        assert_eq!(expected.0, item.expect, "mix template mis-labeled");
        oracle.insert(key, expected);
    }
    oracle
}

#[derive(Default)]
struct Tally {
    ok: u64,
    ok_hits: u64,
    sim_errors: u64,
    bad_requests: u64,
    sheds: u64,
    terminals: u64,
    wrong_results: Vec<String>,
    unstructured: Vec<String>,
    transport_failures: Vec<String>,
    ok_ms: Vec<u64>,
    shed_ms: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.ok_hits += other.ok_hits;
        self.sim_errors += other.sim_errors;
        self.bad_requests += other.bad_requests;
        self.sheds += other.sheds;
        self.terminals += other.terminals;
        self.wrong_results.extend(other.wrong_results);
        self.unstructured.extend(other.unstructured);
        self.transport_failures.extend(other.transport_failures);
        self.ok_ms.extend(other.ok_ms);
        self.shed_ms.extend(other.shed_ms);
    }
}

fn has_error_kind(body: &str) -> bool {
    Json::parse(body)
        .ok()
        .and_then(|j| j.get("error").ok().cloned())
        .and_then(|e| e.get("kind").ok().cloned())
        .is_some()
}

fn record(
    tally: &mut Tally,
    item: &Item,
    resp: &HttpResponse,
    ms: u64,
    oracle: &HashMap<u64, (Expect, String)>,
) {
    match resp.status {
        200 => {
            tally.ok += 1;
            tally.ok_ms.push(ms);
            if resp.x_cache.as_deref() == Some("HIT") {
                tally.ok_hits += 1;
            }
            match item.key.and_then(|k| oracle.get(&k)) {
                Some((Expect::Ok, expected)) if *expected == resp.body => {}
                _ => tally.wrong_results.push(format!(
                    "200 body mismatch (or unexpected 200) for {}...",
                    &item.body[..item.body.len().min(60)]
                )),
            }
        }
        422 => {
            tally.sim_errors += 1;
            tally.ok_ms.push(ms);
            match item.key.and_then(|k| oracle.get(&k)) {
                Some((Expect::SimErr, expected)) if *expected == resp.body => {}
                _ => tally.wrong_results.push(format!(
                    "422 body mismatch (or unexpected 422) for {}...",
                    &item.body[..item.body.len().min(60)]
                )),
            }
        }
        400 => {
            tally.bad_requests += 1;
            if item.expect != Expect::BadRequest {
                tally
                    .wrong_results
                    .push(format!("unexpected 400: {}", resp.body));
            }
        }
        429 | 503 => {
            tally.sheds += 1;
            tally.shed_ms.push(ms);
            if resp.retry_after.is_none() {
                tally
                    .unstructured
                    .push(format!("{} shed without Retry-After", resp.status));
            }
            if !has_error_kind(&resp.body) {
                tally
                    .unstructured
                    .push(format!("{} shed body not structured: {}", resp.status, resp.body));
            }
        }
        500 | 504 => {
            tally.terminals += 1;
            if !has_error_kind(&resp.body) {
                tally.unstructured.push(format!(
                    "{} terminal body not structured: {}",
                    resp.status, resp.body
                ));
            }
        }
        s => tally
            .unstructured
            .push(format!("unexpected status {s}: {}", resp.body)),
    }
}

fn p99(ms: &mut [u64]) -> u64 {
    if ms.is_empty() {
        return 0;
    }
    ms.sort_unstable();
    ms[(ms.len() - 1) * 99 / 100]
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen (--self-host | --addr HOST:PORT) [--seed N] [--requests N]\n\
         \x20    [--threads N] [--chaos] [--workers N]\n\
         \x20    [--slo-shed-p99-ms N] [--slo-ok-p99-ms N] [--slo-error-pct N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut self_host = false;
    let mut addr_arg: Option<String> = None;
    let mut seed = 42u64;
    let mut requests = 120usize;
    let mut threads = 12usize;
    let mut chaos_on = false;
    let mut workers = 2usize;
    let mut slo_shed_p99_ms = 1_000u64;
    let mut slo_ok_p99_ms = 20_000u64;
    let mut slo_error_pct = 2.0f64;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--self-host" => self_host = true,
            "--addr" => addr_arg = Some(next(&mut args)),
            "--seed" => seed = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--requests" => requests = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--chaos" => chaos_on = true,
            "--workers" => workers = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--slo-shed-p99-ms" => {
                slo_shed_p99_ms = next(&mut args).parse().unwrap_or_else(|_| usage());
            }
            "--slo-ok-p99-ms" => {
                slo_ok_p99_ms = next(&mut args).parse().unwrap_or_else(|_| usage());
            }
            "--slo-error-pct" => {
                slo_error_pct = next(&mut args).parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    if self_host == addr_arg.is_some() {
        usage();
    }

    // Self-hosted service: deliberately small, so the default burst is
    // comfortably above the shedding threshold.
    let hosted = if self_host {
        let chaos = if chaos_on {
            install_quiet_panic_hook();
            ServiceChaos {
                seed,
                worker_panic_ppm: 150_000,
                worker_slow_ppm: 30_000,
                slow_ms: 1_500, // past deadline + grace: forces reaps
                cache_corrupt_ppm: 100_000,
                store_torn_ppm: 0,
                store_short_ppm: 0,
                store_flip_ppm: 0,
            }
        } else {
            ServiceChaos::off()
        };
        let cfg = ServeConfig {
            workers,
            admission: AdmissionConfig {
                queue_cap: 6,
                tenant_quota: 2,
                ..AdmissionConfig::default()
            },
            pool: PoolConfig {
                max_retries: 3,
                backoff_base_ms: 5,
                backoff_cap_ms: 50,
                attempt_deadline_ms: 1_000,
                reap_grace_ms: 200,
                sm_threads: 0,
                checkpoint_every_cycles: 0,
            },
            cache_entries: 64,
            chaos,
            state_dir: None,
        };
        let service = Arc::new(Service::start(cfg));
        let server = HttpServer::serve("127.0.0.1:0", Arc::clone(&service)).expect("bind");
        Some((service, server))
    } else {
        None
    };
    let addr = hosted
        .as_ref()
        .map_or_else(|| addr_arg.clone().unwrap(), |(_, s)| s.addr().to_string());

    eprintln!("loadgen: target {addr}, seed {seed}, {requests} requests x {threads} threads, chaos {chaos_on}");
    let items = Arc::new(build_mix(seed, requests));
    eprintln!("loadgen: computing expected bodies locally (oracle)...");
    let oracle = Arc::new(build_oracle(&items));
    eprintln!("loadgen: oracle holds {} unique results", oracle.len());

    let mut tally = Tally::default();

    // Warmup: one sequential pass over each unique key, so the burst sees
    // a warm cache. Low concurrency means these should not shed.
    {
        let mut seen = std::collections::HashSet::new();
        for item in items.iter() {
            let Some(key) = item.key else { continue };
            if !seen.insert(key) {
                continue;
            }
            let t0 = Instant::now();
            match client::post(&addr, "/simulate", &item.body) {
                Ok(resp) => record(
                    &mut tally,
                    item,
                    &resp,
                    t0.elapsed().as_millis() as u64,
                    &oracle,
                ),
                Err(e) => tally.transport_failures.push(format!("warmup: {e}")),
            }
        }
    }
    let warm_ok = tally.ok;
    eprintln!("loadgen: warmup done ({warm_ok} ok)");

    // Burst: `threads` closed-loop clients race through the whole mix.
    let cursor = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<Tally>();
    let burst_handles: Vec<_> = (0..threads)
        .map(|_| {
            let items = Arc::clone(&items);
            let oracle = Arc::clone(&oracle);
            let cursor = Arc::clone(&cursor);
            let addr = addr.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut local = Tally::default();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let item = &items[i];
                    let t0 = Instant::now();
                    match client::post(&addr, "/simulate", &item.body) {
                        Ok(resp) => record(
                            &mut local,
                            item,
                            &resp,
                            t0.elapsed().as_millis() as u64,
                            &oracle,
                        ),
                        Err(e) => local.transport_failures.push(format!("burst: {e}")),
                    }
                }
                let _ = tx.send(local);
            })
        })
        .collect();
    drop(tx);
    while let Ok(local) = rx.recv() {
        tally.absorb(local);
    }
    for h in burst_handles {
        let _ = h.join();
    }
    eprintln!(
        "loadgen: burst done (ok {}, sim_err {}, shed {}, terminal {})",
        tally.ok, tally.sim_errors, tally.sheds, tally.terminals
    );

    // Cooldown: the service must serve cleanly again once load drops.
    let mut cooldown_failures = 0u64;
    for item in items.iter().filter(|i| i.expect == Expect::Ok).take(5) {
        let t0 = Instant::now();
        match client::post(&addr, "/simulate", &item.body) {
            Ok(resp) => {
                if resp.status != 200 {
                    cooldown_failures += 1;
                }
                record(
                    &mut tally,
                    item,
                    &resp,
                    t0.elapsed().as_millis() as u64,
                    &oracle,
                );
            }
            Err(e) => tally.transport_failures.push(format!("cooldown: {e}")),
        }
    }

    // Self-host epilogue: exercise graceful drain end-to-end.
    let mut drain_failures: Vec<String> = Vec::new();
    if let Some((service, server)) = hosted {
        match client::post(&addr, "/admin/drain", "") {
            Ok(r) if r.status == 200 => {}
            Ok(r) => drain_failures.push(format!("drain returned {}", r.status)),
            Err(e) => drain_failures.push(format!("drain: {e}")),
        }
        match client::get(&addr, "/healthz") {
            Ok(r) if r.status == 503 => {}
            Ok(r) => drain_failures.push(format!("healthz while draining returned {}", r.status)),
            Err(e) => drain_failures.push(format!("healthz: {e}")),
        }
        if let Some(item) = items.iter().find(|i| i.expect == Expect::Ok) {
            match client::post(&addr, "/simulate", &item.body) {
                // A cached result may still serve during drain; new work
                // must be refused.
                Ok(r) if r.status == 503 || (r.status == 200 && r.x_cache.as_deref() == Some("HIT")) => {}
                Ok(r) => drain_failures.push(format!("simulate while draining returned {}", r.status)),
                Err(e) => drain_failures.push(format!("simulate while draining: {e}")),
            }
        }
        if let Ok(stats) = client::get(&addr, "/stats") {
            eprintln!("loadgen: final service stats: {}", stats.body);
            if chaos_on {
                // A chaos drill that injected nothing proves nothing:
                // require at least one fault to have actually fired.
                let injected = Json::parse(&stats.body).ok().is_some_and(|j| {
                    ["worker_panics_caught", "worker_timeouts", "workers_reaped",
                     "cache_corruptions_detected"]
                    .iter()
                    .filter_map(|k| j.get(k).ok().and_then(|v| v.as_u64(k).ok()))
                    .sum::<u64>()
                        > 0
                });
                if !injected {
                    drain_failures.push("chaos drill injected no faults".into());
                }
            }
        }
        server.stop();
        drop(service);
    }

    // SLO evaluation.
    let total = (tally.ok
        + tally.sim_errors
        + tally.bad_requests
        + tally.sheds
        + tally.terminals) as f64;
    let error_pct = if total > 0.0 {
        100.0 * tally.terminals as f64 / total
    } else {
        0.0
    };
    let ok_p99 = p99(&mut tally.ok_ms);
    let shed_p99 = p99(&mut tally.shed_ms);
    let mut violations: Vec<String> = Vec::new();
    if !tally.wrong_results.is_empty() {
        violations.push(format!(
            "{} wrong-result responses, e.g.: {}",
            tally.wrong_results.len(),
            tally.wrong_results[0]
        ));
    }
    if !tally.unstructured.is_empty() {
        violations.push(format!(
            "{} unstructured failures, e.g.: {}",
            tally.unstructured.len(),
            tally.unstructured[0]
        ));
    }
    if !tally.transport_failures.is_empty() {
        violations.push(format!(
            "{} transport failures, e.g.: {}",
            tally.transport_failures.len(),
            tally.transport_failures[0]
        ));
    }
    if error_pct > slo_error_pct {
        violations.push(format!(
            "terminal error rate {error_pct:.2}% exceeds {slo_error_pct}%"
        ));
    }
    if shed_p99 > slo_shed_p99_ms {
        violations.push(format!("shed p99 {shed_p99}ms exceeds {slo_shed_p99_ms}ms"));
    }
    if ok_p99 > slo_ok_p99_ms {
        violations.push(format!("ok p99 {ok_p99}ms exceeds {slo_ok_p99_ms}ms"));
    }
    if self_host && threads >= 8 && tally.sheds == 0 {
        violations.push("burst above threshold produced zero sheds".into());
    }
    if tally.ok_hits == 0 && warm_ok > 0 {
        violations.push("no cache hit observed after warmup".into());
    }
    if cooldown_failures > 0 {
        violations.push(format!("{cooldown_failures} cooldown requests not 200"));
    }
    violations.extend(drain_failures);

    let report = Json::Obj(vec![
        ("seed".into(), Json::UInt(seed)),
        ("requests_sent".into(), Json::UInt(total as u64)),
        ("ok".into(), Json::UInt(tally.ok)),
        ("ok_cache_hits".into(), Json::UInt(tally.ok_hits)),
        ("sim_errors".into(), Json::UInt(tally.sim_errors)),
        ("bad_requests".into(), Json::UInt(tally.bad_requests)),
        ("sheds".into(), Json::UInt(tally.sheds)),
        ("terminal_errors".into(), Json::UInt(tally.terminals)),
        ("wrong_results".into(), Json::UInt(tally.wrong_results.len() as u64)),
        ("ok_p99_ms".into(), Json::UInt(ok_p99)),
        ("shed_p99_ms".into(), Json::UInt(shed_p99)),
        ("error_pct".into(), Json::Num(error_pct)),
        (
            "slo_violations".into(),
            Json::Arr(violations.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
        ("pass".into(), Json::Bool(violations.is_empty())),
    ]);
    println!("{}", report.render());
    if violations.is_empty() {
        eprintln!("loadgen: all SLOs met");
    } else {
        eprintln!("loadgen: SLO VIOLATIONS:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
