//! `bows-serve` — the simulation service over HTTP.
//!
//! ```sh
//! bows-serve --addr 127.0.0.1:8080 --workers 4 --cache-entries 256
//! ```
//!
//! POST a JSON simulation request to `/simulate`; see `crates/simt-serve`
//! docs for the schema. `--chaos-*` flags arm the *service-level* fault
//! injector (worker panics / slowness, cache corruption) for resilience
//! drills — simulated-hardware chaos stays per-request (`chaos_seed` in
//! the body).

use simt_serve::{install_quiet_panic_hook, HttpServer, ServeConfig, Service, ServiceChaos};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: bows-serve [--addr HOST:PORT] [--workers N]\n\
         \x20    [--queue-cap N] [--tenant-quota N] [--max-queue-wait-ms N]\n\
         \x20    [--cache-entries N] [--max-retries N] [--attempt-deadline-ms N]\n\
         \x20    [--sm-threads N] [--state-dir DIR] [--checkpoint-every-cycles N]\n\
         \x20    [--chaos-seed N] [--chaos-panic-ppm N] [--chaos-slow-ppm N]\n\
         \x20    [--chaos-slow-ms N] [--chaos-corrupt-ppm N]\n\
         \x20    [--chaos-store-torn-ppm N] [--chaos-store-short-ppm N]\n\
         \x20    [--chaos-store-flip-ppm N]\n\
         \n\
         --state-dir DIR persists the result cache to an fsync'd append\n\
         log under DIR and replays it on restart (crash-safe: a torn tail\n\
         is truncated, committed entries survive SIGKILL).\n\
         --checkpoint-every-cycles N checkpoints in-flight simulations so\n\
         a retried attempt resumes mid-run instead of replaying (0 = off).\n\
         --chaos-store-* arm fault injection on the persistence path.\n\
         \n\
         Routes: POST /simulate, GET /healthz, GET /stats, POST /admin/drain."
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut cfg = ServeConfig::default();
    let mut chaos = ServiceChaos::off();
    chaos.slow_ms = 200;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, what: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {what}");
            usage()
        })
    };
    macro_rules! num {
        ($args:expr, $flag:expr) => {
            next($args, $flag).parse().unwrap_or_else(|_| usage())
        };
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = next(&mut args, "--addr"),
            "--workers" => cfg.workers = num!(&mut args, "--workers"),
            "--queue-cap" => cfg.admission.queue_cap = num!(&mut args, "--queue-cap"),
            "--tenant-quota" => cfg.admission.tenant_quota = num!(&mut args, "--tenant-quota"),
            "--max-queue-wait-ms" => {
                cfg.admission.max_queue_wait_ms = num!(&mut args, "--max-queue-wait-ms");
            }
            "--cache-entries" => cfg.cache_entries = num!(&mut args, "--cache-entries"),
            "--max-retries" => cfg.pool.max_retries = num!(&mut args, "--max-retries"),
            "--attempt-deadline-ms" => {
                cfg.pool.attempt_deadline_ms = num!(&mut args, "--attempt-deadline-ms");
            }
            // In-run SM workers per attempt; responses are bit-identical
            // at any value, so this never fragments the cache. Size it so
            // workers × sm-threads stays within the host's cores.
            "--sm-threads" => cfg.pool.sm_threads = num!(&mut args, "--sm-threads"),
            "--state-dir" => {
                cfg.state_dir = Some(std::path::PathBuf::from(next(&mut args, "--state-dir")));
            }
            "--checkpoint-every-cycles" => {
                cfg.pool.checkpoint_every_cycles = num!(&mut args, "--checkpoint-every-cycles");
            }
            "--chaos-seed" => chaos.seed = num!(&mut args, "--chaos-seed"),
            "--chaos-panic-ppm" => chaos.worker_panic_ppm = num!(&mut args, "--chaos-panic-ppm"),
            "--chaos-slow-ppm" => chaos.worker_slow_ppm = num!(&mut args, "--chaos-slow-ppm"),
            "--chaos-slow-ms" => chaos.slow_ms = num!(&mut args, "--chaos-slow-ms"),
            "--chaos-corrupt-ppm" => {
                chaos.cache_corrupt_ppm = num!(&mut args, "--chaos-corrupt-ppm");
            }
            "--chaos-store-torn-ppm" => {
                chaos.store_torn_ppm = num!(&mut args, "--chaos-store-torn-ppm");
            }
            "--chaos-store-short-ppm" => {
                chaos.store_short_ppm = num!(&mut args, "--chaos-store-short-ppm");
            }
            "--chaos-store-flip-ppm" => {
                chaos.store_flip_ppm = num!(&mut args, "--chaos-store-flip-ppm");
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cfg.chaos = chaos;
    if chaos.enabled() {
        install_quiet_panic_hook();
        eprintln!(
            "service chaos armed: seed {} panic {}ppm slow {}ppm/{}ms corrupt {}ppm",
            chaos.seed,
            chaos.worker_panic_ppm,
            chaos.worker_slow_ppm,
            chaos.slow_ms,
            chaos.cache_corrupt_ppm
        );
    }
    let (nworkers, ncache) = (cfg.workers, cfg.cache_entries);
    let service = Arc::new(Service::start(cfg));
    let server = match HttpServer::serve(&addr, Arc::clone(&service)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "bows-serve listening on {} ({} workers, {}-entry cache)",
        server.addr(),
        nworkers,
        ncache
    );
    // Serve until killed. A drain (POST /admin/drain) flips /healthz to
    // 503 so an orchestrator can stop routing, then terminate us.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
