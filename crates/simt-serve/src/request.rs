//! Simulation requests: JSON schema, validation, the content-address key,
//! and the (pure, deterministic) execution function.
//!
//! A request fully determines its result: the simulator is bit-exact for a
//! fixed (kernel, config, seed, engine), so [`SimRequest::cache_key`] can
//! content-address the rendered response body. Everything that can change
//! a single output byte must feed the key; the cache-soundness tests in
//! `tests/cache_key.rs` hold this to account.

use crate::json::{kernel_report_json, sim_error_json, Json};
use bows::{AdaptiveConfig, DdosConfig, DelayMode};
use simt_core::{BasePolicy, CancelToken, CheckpointCtl, Engine, Gpu, GpuConfig, LaunchSpec, SimError};
use simt_mem::ChaosConfig;
use std::sync::Mutex;

/// Shared slot holding a job's newest mid-run checkpoint:
/// `(fnv1a(snapshot), snapshot body)`. One slot lives for the whole
/// supervised life of a job, across attempts: an attempt that dies to a
/// deadline or a panic leaves its last checkpoint here, and the retry
/// resumes from it instead of replaying the simulation from cycle 0.
/// Replacement is atomic under the lock, so the slot never holds a
/// half-written snapshot — the failure mode that would need detecting.
pub type CheckpointSlot = Mutex<Option<(u64, Vec<u8>)>>;

/// Hash of the checkpoint currently in `slot` (0 = none). Folded into the
/// retry backoff jitter — and deliberately *never* into the cache key:
/// resumed and fresh runs produce byte-identical bodies, so a checkpoint
/// must not fragment the cache.
pub fn checkpoint_hash(slot: &CheckpointSlot) -> u64 {
    slot.lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map_or(0, |(h, _)| *h)
}

/// One kernel parameter slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamSpec {
    /// A scalar value passed as-is.
    Scalar(u32),
    /// A device buffer: allocate `words` words, fill them, pass the base.
    Buffer { words: u64, fill: u32 },
}

/// A validated simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Kernel assembly source.
    pub kernel: String,
    /// Grid size in CTAs.
    pub ctas: usize,
    /// Threads per CTA.
    pub tpc: usize,
    /// Parameter slots, left to right.
    pub params: Vec<ParamSpec>,
    /// GPU preset name (`tiny` | `gtx480` | `gtx1080ti`).
    pub gpu: String,
    /// Baseline scheduler.
    pub sched: BasePolicy,
    /// BOWS back-off: `None` = baseline, fixed cycles, or adaptive.
    pub bows: Option<DelayMode>,
    /// Run the DDOS detector (else the static `!sib` oracle).
    pub ddos: bool,
    /// Main-loop engine override.
    pub engine: Option<Engine>,
    /// Simulated-cycle budget override (`GpuConfig::max_cycles`).
    pub timeout_cycles: Option<u64>,
    /// Memory-chaos seed (simulated-hardware faults, not service chaos).
    pub chaos_seed: Option<u64>,
    /// Memory-chaos intensity 0..=3.
    pub chaos_level: Option<u8>,
    /// Post-run dumps: `(param slot, words)`.
    pub dumps: Vec<(usize, u64)>,
    /// Requesting tenant (quota accounting); `"anon"` by default.
    pub tenant: String,
    /// Priority 0 (highest) ..= 2 (lowest); default 1.
    pub priority: u8,
}

/// Caps that keep one request from monopolizing a worker. Validation
/// rejects anything larger with a 400-class error before admission.
pub const MAX_KERNEL_BYTES: usize = 64 * 1024;
pub const MAX_CTAS: usize = 4096;
pub const MAX_PARAMS: usize = 32;
pub const MAX_BUFFER_WORDS: u64 = 1 << 22;
pub const MAX_DUMP_WORDS: u64 = 4096;

impl SimRequest {
    /// Parse and validate a request body.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found; the HTTP
    /// layer maps it to 400.
    pub fn from_json(body: &str) -> Result<SimRequest, String> {
        let j = Json::parse(body)?;
        let kernel = j.get("kernel")?.as_str("kernel")?.to_string();
        if kernel.is_empty() {
            return Err("kernel: empty".into());
        }
        if kernel.len() > MAX_KERNEL_BYTES {
            return Err(format!("kernel: larger than {MAX_KERNEL_BYTES} bytes"));
        }
        let ctas = match j.opt("ctas")? {
            Some(v) => v.as_u64("ctas")? as usize,
            None => 1,
        };
        if ctas == 0 || ctas > MAX_CTAS {
            return Err(format!("ctas: must be in 1..={MAX_CTAS}"));
        }
        let tpc = match j.opt("tpc")? {
            Some(v) => v.as_u64("tpc")? as usize,
            None => 32,
        };
        if tpc == 0 || tpc > 1024 {
            return Err("tpc: must be in 1..=1024".into());
        }
        let mut params = Vec::new();
        if let Some(list) = j.opt("params")? {
            for (i, p) in list.as_array("params")?.iter().enumerate() {
                if params.len() >= MAX_PARAMS {
                    return Err(format!("params: more than {MAX_PARAMS}"));
                }
                match p {
                    Json::Obj(_) => {
                        let words = p.get("buf")?.as_u64(&format!("params[{i}].buf"))?;
                        if words == 0 || words > MAX_BUFFER_WORDS {
                            return Err(format!(
                                "params[{i}].buf: must be in 1..={MAX_BUFFER_WORDS}"
                            ));
                        }
                        let fill = match p.opt("fill")? {
                            Some(v) => v.as_u64(&format!("params[{i}].fill"))? as u32,
                            None => 0,
                        };
                        params.push(ParamSpec::Buffer { words, fill });
                    }
                    _ => {
                        let v = p.as_u64(&format!("params[{i}]"))?;
                        if v > u32::MAX as u64 {
                            return Err(format!("params[{i}]: exceeds u32"));
                        }
                        params.push(ParamSpec::Scalar(v as u32));
                    }
                }
            }
        }
        let gpu = match j.opt("gpu")? {
            Some(v) => v.as_str("gpu")?.to_string(),
            None => "tiny".to_string(),
        };
        if !matches!(gpu.as_str(), "tiny" | "gtx480" | "gtx1080ti") {
            return Err("gpu: expected tiny | gtx480 | gtx1080ti".into());
        }
        let sched = match j.opt("sched")? {
            Some(v) => match v.as_str("sched")? {
                "lrr" => BasePolicy::Lrr,
                "gto" => BasePolicy::Gto,
                "cawa" => BasePolicy::Cawa,
                _ => return Err("sched: expected lrr | gto | cawa".into()),
            },
            None => BasePolicy::Gto,
        };
        let bows = match j.opt("bows")? {
            None => None,
            Some(Json::Str(s)) if s == "adaptive" => {
                Some(DelayMode::Adaptive(AdaptiveConfig::default()))
            }
            Some(v) => Some(DelayMode::Fixed(v.as_u64("bows")?)),
        };
        let ddos = match j.opt("ddos")? {
            Some(v) => v.as_bool("ddos")?,
            None => true,
        };
        let engine = match j.opt("engine")? {
            None => None,
            Some(v) => Some(match v.as_str("engine")? {
                "cycle" => Engine::Cycle,
                "skip" => Engine::Skip,
                _ => return Err("engine: expected cycle | skip".into()),
            }),
        };
        let timeout_cycles = match j.opt("timeout_cycles")? {
            Some(v) => Some(v.as_u64("timeout_cycles")?),
            None => None,
        };
        let chaos_seed = match j.opt("chaos_seed")? {
            Some(v) => Some(v.as_u64("chaos_seed")?),
            None => None,
        };
        let chaos_level = match j.opt("chaos_level")? {
            Some(v) => {
                let l = v.as_u64("chaos_level")?;
                if l > 3 {
                    return Err("chaos_level: must be 0..=3".into());
                }
                Some(l as u8)
            }
            None => None,
        };
        let mut dumps = Vec::new();
        if let Some(list) = j.opt("dumps")? {
            for d in list.as_array("dumps")? {
                let pair = d.as_array("dumps[]")?;
                if pair.len() != 2 {
                    return Err("dumps[]: expected [slot, words]".into());
                }
                let slot = pair[0].as_u64("dumps[].slot")? as usize;
                let words = pair[1].as_u64("dumps[].words")?;
                if words > MAX_DUMP_WORDS {
                    return Err(format!("dumps[].words: more than {MAX_DUMP_WORDS}"));
                }
                if slot >= params.len() {
                    return Err(format!("dumps[]: slot {slot} has no parameter"));
                }
                dumps.push((slot, words));
            }
        }
        let tenant = match j.opt("tenant")? {
            Some(v) => v.as_str("tenant")?.to_string(),
            None => "anon".to_string(),
        };
        if tenant.is_empty() || tenant.len() > 64 {
            return Err("tenant: must be 1..=64 bytes".into());
        }
        let priority = match j.opt("priority")? {
            Some(v) => {
                let p = v.as_u64("priority")?;
                if p > 2 {
                    return Err("priority: must be 0..=2".into());
                }
                p as u8
            }
            None => 1,
        };
        Ok(SimRequest {
            kernel,
            ctas,
            tpc,
            params,
            gpu,
            sched,
            bows,
            ddos,
            engine,
            timeout_cycles,
            chaos_seed,
            chaos_level,
            dumps,
            tenant,
            priority,
        })
    }

    /// Canonical encoding of every result-affecting field — the identity
    /// the cache binds entries to. `tenant` and `priority` are deliberately
    /// excluded — they steer scheduling, not simulation — so identical work
    /// from different tenants shares one cache entry. Two requests have
    /// equal encodings iff they produce the same response body; the kernel
    /// is length-prefixed so no field can masquerade as another.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut c = String::with_capacity(self.kernel.len() + 128);
        let _ = write!(c, "k={}:{};ctas={};tpc={};p=[", self.kernel.len(), self.kernel, self.ctas, self.tpc);
        for p in &self.params {
            match *p {
                ParamSpec::Scalar(v) => {
                    let _ = write!(c, "s:{v},");
                }
                ParamSpec::Buffer { words, fill } => {
                    let _ = write!(c, "b:{words}:{fill},");
                }
            }
        }
        let _ = write!(c, "];gpu={};sched=", self.gpu);
        c.push_str(match self.sched {
            BasePolicy::Lrr => "lrr",
            BasePolicy::Gto => "gto",
            BasePolicy::Cawa => "cawa",
        });
        match self.bows {
            None => c.push_str(";bows=-"),
            Some(DelayMode::Fixed(cycles)) => {
                let _ = write!(c, ";bows=f:{cycles}");
            }
            Some(DelayMode::Adaptive(_)) => c.push_str(";bows=a"),
        }
        let _ = write!(c, ";ddos={}", self.ddos as u8);
        c.push_str(match self.engine {
            None => ";engine=-",
            Some(Engine::Cycle) => ";engine=cycle",
            Some(Engine::Skip) => ";engine=skip",
        });
        let _ = write!(
            c,
            ";tc={:?};cs={:?};cl={:?};dumps=[",
            self.timeout_cycles, self.chaos_seed, self.chaos_level
        );
        for &(slot, words) in &self.dumps {
            let _ = write!(c, "{slot}:{words},");
        }
        c.push(']');
        c
    }

    /// 64-bit content-address of [`SimRequest::canonical`] — the cache's
    /// *index*, not its identity. FNV is not collision-resistant, so the
    /// cache stores the canonical encoding beside each entry and verifies
    /// it on every hit; a crafted key collision degrades to a miss, never
    /// to serving another request's body.
    pub fn cache_key(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.canonical().as_bytes());
        h.finish()
    }

    /// The effective [`GpuConfig`] after preset + overrides.
    pub fn gpu_config(&self) -> GpuConfig {
        let mut cfg = match self.gpu.as_str() {
            "gtx480" => GpuConfig::gtx480(),
            "gtx1080ti" => GpuConfig::gtx1080ti(),
            _ => GpuConfig::test_tiny(),
        };
        if self.chaos_seed.is_some() || self.chaos_level.is_some() {
            let seed = self.chaos_seed.unwrap_or(1);
            let level = self.chaos_level.unwrap_or(1);
            cfg.mem.chaos = ChaosConfig::with_level(seed, level);
        }
        if let Some(t) = self.timeout_cycles {
            cfg.max_cycles = t;
        }
        if let Some(e) = self.engine {
            cfg.engine = e;
        }
        cfg
    }
}

/// How one execution of a request ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Simulation completed; the rendered success body.
    Ok(String),
    /// Simulation failed deterministically (deadlock, device fault, cycle
    /// limit, bad launch). Retrying is pointless; the rendered error body.
    SimError(String),
    /// The run's cancel token fired (deadline): retryable.
    Cancelled,
}

/// Execute a request to completion and render the response body.
///
/// This is the one function both the service workers and the load
/// generator's expected-result oracle call, so "the service returned the
/// right bytes" is checkable by construction. The optional `cancel` token
/// bounds wall time.
pub fn run_request(req: &SimRequest, cancel: Option<CancelToken>) -> RunOutcome {
    run_request_with(req, cancel, 0)
}

/// [`run_request`] with an explicit in-run SM worker count (`0` = the
/// config default: `BOWS_SM_THREADS`, else serial).
///
/// `sm_threads` is deliberately *not* part of [`SimRequest`] — simulation
/// results are bit-identical at every worker count (enforced by the
/// determinism suite), so it is host capacity policy, not request
/// identity, and must not fragment the response cache. The pool sets it
/// from [`crate::PoolConfig::sm_threads`]; the loadgen oracle runs
/// serial and still expects byte-equal bodies.
pub fn run_request_with(req: &SimRequest, cancel: Option<CancelToken>, sm_threads: usize) -> RunOutcome {
    run_request_resumable(req, cancel, sm_threads, 0, None)
}

/// [`run_request_with`] plus mid-run checkpointing into `slot` every
/// `checkpoint_every` cycles (0 = off), resuming from whatever checkpoint
/// the slot already holds. The supervised pool passes one slot across all
/// attempts of a job; a checkpoint the simulator rejects on resume
/// (impossible for a slot the same request filled, but this is the
/// persistence plane — assume damage) is discarded and the attempt
/// replays from cycle 0 rather than failing the job.
pub fn run_request_resumable(
    req: &SimRequest,
    cancel: Option<CancelToken>,
    sm_threads: usize,
    checkpoint_every: u64,
    slot: Option<&CheckpointSlot>,
) -> RunOutcome {
    let resume: Option<Vec<u8>> = slot.and_then(|s| {
        s.lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .map(|(_, b)| b.clone())
    });
    match attempt_once(req, cancel.clone(), sm_threads, checkpoint_every, slot, resume.as_deref()) {
        Ok(out) => out,
        Err(()) => {
            // The checkpoint was rejected. Forget it (structured
            // degradation: re-simulate, never fail the request on a
            // recovery artifact) and run from scratch.
            if let Some(s) = slot {
                *s.lock().unwrap_or_else(|p| p.into_inner()) = None;
            }
            attempt_once(req, cancel, sm_threads, checkpoint_every, slot, None)
                .unwrap_or(RunOutcome::Cancelled)
        }
    }
}

/// One execution attempt. `Err(())` means the resume snapshot was
/// rejected before any simulation happened.
fn attempt_once(
    req: &SimRequest,
    cancel: Option<CancelToken>,
    sm_threads: usize,
    checkpoint_every: u64,
    slot: Option<&CheckpointSlot>,
    resume: Option<&[u8]>,
) -> Result<RunOutcome, ()> {
    // The simulator polls the token only at forward-progress scans, which a
    // short kernel never reaches — so honor an already-fired deadline here
    // (e.g. an attempt delayed past its deadline before it could start).
    if let Some(c) = &cancel {
        if c.fired().is_some() {
            return Ok(RunOutcome::Cancelled);
        }
    }
    let kernel = match simt_isa::asm::assemble(&req.kernel) {
        Ok(k) => k,
        Err(e) => {
            let body = Json::Obj(vec![(
                "error".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::Str("asm_error".into())),
                    ("message".into(), Json::Str(e.to_string())),
                ]),
            )])
            .render();
            return Ok(RunOutcome::SimError(body));
        }
    };
    let mut cfg = req.gpu_config();
    cfg.sm_threads = sm_threads;
    let mut gpu = Gpu::new(cfg);
    if let Some(c) = cancel {
        gpu.set_cancel_token(c);
    }
    let mut params = Vec::new();
    let mut bases: Vec<Option<u64>> = Vec::new();
    for p in &req.params {
        match *p {
            ParamSpec::Scalar(v) => {
                params.push(v);
                bases.push(None);
            }
            ParamSpec::Buffer { words, fill } => {
                let base = gpu.mem_mut().gmem_mut().alloc(words);
                if fill != 0 {
                    for i in 0..words {
                        gpu.mem_mut().gmem_mut().write_u32(base + i * 4, fill);
                    }
                }
                params.push(base as u32);
                bases.push(Some(base));
            }
        }
    }
    let launch = LaunchSpec {
        grid_ctas: req.ctas,
        threads_per_cta: req.tpc,
        params,
    };
    let rotate = gpu.cfg.gto_rotate_period;
    let warps = gpu.cfg.warps_per_sm();
    let policy = bows::policy_factory(req.sched, req.bows, rotate);
    let mut sink = |_cycle: u64, body: &[u8]| {
        if let Some(s) = slot {
            *s.lock().unwrap_or_else(|p| p.into_inner()) =
                Some((simt_snap::fnv1a(body), body.to_vec()));
        }
    };
    let ctl = if checkpoint_every > 0 || resume.is_some() {
        Some(CheckpointCtl {
            every: checkpoint_every,
            sink: &mut sink,
            resume,
        })
    } else {
        None
    };
    let result = if req.ddos {
        let det = bows::ddos_factory(DdosConfig::default(), warps);
        gpu.run_with_checkpoints(&kernel, &launch, &policy, &det, ctl)
    } else {
        let det = |k: &simt_isa::Kernel| -> Box<dyn simt_core::SpinDetector> {
            Box::new(simt_core::StaticSibDetector::new(k.true_sibs.clone()))
        };
        gpu.run_with_checkpoints(&kernel, &launch, &policy, &det, ctl)
    };
    Ok(match result {
        Ok(report) => {
            let mut dumps = Vec::new();
            for &(slot, words) in &req.dumps {
                if let Some(Some(base)) = bases.get(slot) {
                    dumps.push((slot, gpu.mem().gmem().read_vec(*base, words)));
                }
            }
            RunOutcome::Ok(kernel_report_json(&report, &dumps).render())
        }
        Err(SimError::Snapshot { .. }) if resume.is_some() => return Err(()),
        Err(SimError::Cancelled { .. }) => RunOutcome::Cancelled,
        Err(e) => {
            let body = Json::Obj(vec![("error".into(), sim_error_json(&e))]).render();
            RunOutcome::SimError(body)
        }
    })
}

/// FNV-1a, 64-bit: the same checksum family the cache uses.
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    pub fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn str(&mut self, s: &str) {
        // Length-prefix so "ab"+"c" and "a"+"bc" hash differently.
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// Checksum of a response body, stored beside each cache entry.
pub fn body_checksum(body: &str) -> u64 {
    let mut h = Fnv::new();
    h.bytes(body.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub const VEC_KERNEL: &str = r#"
        .kernel inc
        .regs 8
        .params 1
            ld.param r1, [0]
            mov r2, %gtid
            shl r2, r2, 2
            add r1, r1, r2
            ld.global r3, [r1]
            add r3, r3, 1
            st.global [r1], r3
            exit
    "#;

    fn sample_body() -> String {
        format!(
            "{{\"kernel\":{},\"ctas\":1,\"tpc\":32,\
             \"params\":[{{\"buf\":32,\"fill\":5}}],\"dumps\":[[0,4]]}}",
            crate::json::json_string(VEC_KERNEL)
        )
    }

    #[test]
    fn parse_and_defaults() {
        let r = SimRequest::from_json(&sample_body()).unwrap();
        assert_eq!(r.ctas, 1);
        assert_eq!(r.sched, BasePolicy::Gto);
        assert!(r.ddos);
        assert_eq!(r.tenant, "anon");
        assert_eq!(r.priority, 1);
        assert_eq!(r.dumps, vec![(0, 4)]);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(SimRequest::from_json("not json").is_err());
        assert!(SimRequest::from_json("{}").is_err(), "kernel required");
        assert!(SimRequest::from_json("{\"kernel\":\"x\",\"ctas\":0}").is_err());
        assert!(SimRequest::from_json("{\"kernel\":\"x\",\"gpu\":\"h100\"}").is_err());
        assert!(
            SimRequest::from_json("{\"kernel\":\"x\",\"dumps\":[[3,4]]}").is_err(),
            "dump slot must reference a parameter"
        );
    }

    #[test]
    fn tenant_and_priority_do_not_change_the_key() {
        let a = SimRequest::from_json(&sample_body()).unwrap();
        let mut b = a.clone();
        b.tenant = "other".into();
        b.priority = 0;
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn result_knobs_change_the_key() {
        let a = SimRequest::from_json(&sample_body()).unwrap();
        for mutate in [
            |r: &mut SimRequest| r.ctas = 2,
            |r: &mut SimRequest| r.sched = BasePolicy::Lrr,
            |r: &mut SimRequest| r.engine = Some(Engine::Cycle),
            |r: &mut SimRequest| r.chaos_seed = Some(7),
            |r: &mut SimRequest| r.kernel.push(' '),
        ] {
            let mut b = a.clone();
            mutate(&mut b);
            assert_ne!(a.cache_key(), b.cache_key());
        }
    }

    #[test]
    fn run_request_succeeds_and_dumps() {
        let r = SimRequest::from_json(&sample_body()).unwrap();
        match run_request(&r, None) {
            RunOutcome::Ok(body) => {
                let j = Json::parse(&body).unwrap();
                let dumps = j.get("dumps").unwrap();
                let d0 = dumps.get("0").unwrap().as_array("d0").unwrap();
                assert_eq!(d0, &vec![Json::UInt(6); 4], "fill 5 incremented once");
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    /// A spin-lock kernel with enough contention to run for hundreds of
    /// cycles, so a small `checkpoint_every` produces real mid-run
    /// snapshots.
    const LOCK_KERNEL: &str = r#"
        .kernel locked_inc
        .regs 10
        .params 2
            ld.param r1, [0]      ; mutex
            ld.param r2, [4]      ; counter
            mov r9, 0             ; done = false
        SPIN:
            atom.global.cas r3, [r1], 0, 1 !acquire !sync
            setp.eq.s32 p1, r3, 0
        @!p1 bra TEST
            ld.global.volatile r4, [r2]
            add r4, r4, 1
            st.global [r2], r4
            membar
            atom.global.exch r5, [r1], 0 !release !sync
            mov r9, 1
        TEST:
            setp.eq.s32 p2, r9, 0 !sync
        @p2 bra SPIN !sib !sync
            exit
    "#;

    fn lock_body() -> String {
        format!(
            "{{\"kernel\":{},\"ctas\":2,\"tpc\":32,\"bows\":\"adaptive\",\
             \"params\":[{{\"buf\":1,\"fill\":0}},{{\"buf\":1,\"fill\":0}}],\
             \"dumps\":[[1,1]]}}",
            crate::json::json_string(LOCK_KERNEL)
        )
    }

    fn expect_ok(out: RunOutcome) -> String {
        match out {
            RunOutcome::Ok(body) => body,
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn resumed_run_returns_byte_identical_body() {
        let r = SimRequest::from_json(&lock_body()).unwrap();
        let fresh = expect_ok(run_request_with(&r, None, 0));

        // Fill the slot by running with checkpointing armed; the slot
        // keeps the newest snapshot the run produced.
        let slot: CheckpointSlot = Mutex::new(None);
        let ckpt = expect_ok(run_request_resumable(&r, None, 0, 64, Some(&slot)));
        assert_eq!(fresh, ckpt, "checkpointing must not perturb the run");
        assert!(
            checkpoint_hash(&slot) != 0,
            "a contended lock kernel must live past 64 cycles"
        );

        // Resume from that snapshot: same bytes out.
        let resumed = expect_ok(run_request_resumable(&r, None, 0, 64, Some(&slot)));
        assert_eq!(fresh, resumed, "resumed body must be byte-identical");
    }

    #[test]
    fn rejected_resume_snapshot_degrades_to_a_fresh_run() {
        // Poison the slot with a snapshot from a *different* request: the
        // fingerprint check rejects it, the slot is cleared, and the run
        // replays from cycle 0 — correct bytes, no error surfaced.
        let lock = SimRequest::from_json(&lock_body()).unwrap();
        let slot: CheckpointSlot = Mutex::new(None);
        expect_ok(run_request_resumable(&lock, None, 0, 64, Some(&slot)));
        assert!(checkpoint_hash(&slot) != 0);

        let vec = SimRequest::from_json(&sample_body()).unwrap();
        let fresh = expect_ok(run_request_with(&vec, None, 0));
        let recovered = expect_ok(run_request_resumable(&vec, None, 0, 0, Some(&slot)));
        assert_eq!(fresh, recovered, "degraded run must still be correct");
        assert_eq!(
            checkpoint_hash(&slot),
            0,
            "the rejected snapshot must be discarded"
        );
    }

    #[test]
    fn garbage_resume_snapshot_degrades_to_a_fresh_run() {
        // Structurally broken snapshot bytes (not just a mismatched
        // fingerprint) take the same degradation path: discard, replay.
        let vec = SimRequest::from_json(&sample_body()).unwrap();
        let slot: CheckpointSlot = Mutex::new(Some((1, vec![0xAB; 64])));
        let fresh = expect_ok(run_request_with(&vec, None, 0));
        let recovered = expect_ok(run_request_resumable(&vec, None, 0, 0, Some(&slot)));
        assert_eq!(fresh, recovered);
        assert_eq!(checkpoint_hash(&slot), 0);
    }

    #[test]
    fn asm_error_is_a_sim_error_body() {
        let r = SimRequest::from_json("{\"kernel\":\"bogus text\"}").unwrap();
        match run_request(&r, None) {
            RunOutcome::SimError(body) => {
                let j = Json::parse(&body).unwrap();
                let kind = j.get("error").unwrap().get("kind").unwrap().clone();
                assert_eq!(kind, Json::Str("asm_error".into()));
            }
            other => panic!("expected SimError, got {other:?}"),
        }
    }
}
