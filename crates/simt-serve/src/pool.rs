//! Supervised execution: per-attempt isolation, deadlines, reaping, and
//! retry with exponential backoff.
//!
//! Each attempt of a job runs on its own thread behind `catch_unwind`, so
//! a panicking simulation (a simulator bug, or the chaos injector) kills
//! the *attempt*, never the service. The supervising worker enforces a
//! wall deadline two ways:
//!
//! 1. cooperatively — the attempt's [`CancelToken`] is armed with the
//!    deadline, and the simulator polls it at forward-progress scans, so a
//!    live-but-slow run exits with `SimError::Cancelled`;
//! 2. forcibly — if the attempt doesn't respond within a grace period
//!    after the deadline (wedged outside the simulator's poll points), the
//!    supervisor *abandons* the thread: cancels its token, stops waiting,
//!    and moves on. The abandoned thread unwinds on its own when it next
//!    observes the token; its late result is discarded because its result
//!    channel has no receiver left. This is the "reap" counter.
//!
//! Panics, timeouts, and reaps are retried with exponential backoff plus
//! deterministic jitter, up to a retry budget. Deterministic simulation
//! failures (deadlock, device fault, cycle limit) are **not** retried —
//! re-running a bit-exact simulator reproduces them bit-exactly — and are
//! returned as structured errors instead.

use crate::chaos::{splitmix64, ServiceChaos};
use crate::request::{
    checkpoint_hash, run_request_resumable, CheckpointSlot, RunOutcome, SimRequest,
};
use simt_core::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Supervision knobs.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Retries after the first attempt (total attempts = `max_retries`+1).
    pub max_retries: u32,
    /// First retry's backoff, milliseconds; doubles per retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Per-attempt wall deadline, milliseconds.
    pub attempt_deadline_ms: u64,
    /// Extra wait past the deadline before abandoning the attempt thread.
    pub reap_grace_ms: u64,
    /// In-run SM worker threads per attempt (`0` = config default:
    /// `BOWS_SM_THREADS`, else serial). Results are bit-identical at any
    /// value, so this is capacity policy only — it never enters the
    /// request's cache key. Keep `pool workers × sm_threads` within the
    /// host's cores.
    pub sm_threads: usize,
    /// Mid-run checkpoint cadence in *simulated* cycles (0 = off). An
    /// attempt killed by its deadline or a panic leaves its newest
    /// checkpoint in the job's slot, and the retry resumes from it instead
    /// of replaying from cycle 0 — resumed and fresh runs are bit-identical
    /// (the determinism invariant), so this is purely a latency knob and
    /// never enters the cache key.
    pub checkpoint_every_cycles: u64,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            max_retries: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            attempt_deadline_ms: 10_000,
            reap_grace_ms: 500,
            sm_threads: 0,
            checkpoint_every_cycles: 32_768,
        }
    }
}

/// Failure-path counters, shared across workers.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Attempts that panicked (caught).
    pub panics: AtomicU64,
    /// Attempts that exited cooperatively on a fired deadline.
    pub timeouts: AtomicU64,
    /// Attempts abandoned past the grace period (forcible reap).
    pub reaped: AtomicU64,
    /// Retry sleeps taken.
    pub retries: AtomicU64,
    /// Retry attempts that resumed from a mid-run checkpoint.
    pub resumed: AtomicU64,
}

/// Terminal result of a supervised job.
#[derive(Debug)]
pub enum JobResult {
    /// Success body.
    Ok(String),
    /// Deterministic simulation failure: structured error body, no retry.
    SimError(String),
    /// Deadline exhausted on every attempt.
    TimedOut,
    /// Panicked on every attempt.
    Crashed,
}

/// Marker prefix on chaos-injected panics so binaries can install a quiet
/// panic hook that hides expected noise but keeps real panics loud.
pub const CHAOS_PANIC_PREFIX: &str = "chaos: ";

/// Install a process-wide panic hook that silences panics whose payload
/// starts with [`CHAOS_PANIC_PREFIX`] (they are part of a chaos drill) and
/// defers to the default hook for everything else.
pub fn install_quiet_panic_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with(CHAOS_PANIC_PREFIX));
        if !injected {
            default(info);
        }
    }));
}

/// Run one job to a terminal result under the supervision policy.
///
/// `job_id` keys the chaos decision stream and the backoff jitter, so a
/// fixed (chaos seed, job id) replays the same fault schedule.
pub fn execute_supervised(
    req: &SimRequest,
    job_id: u64,
    cfg: &PoolConfig,
    chaos: &ServiceChaos,
    counters: &PoolCounters,
) -> JobResult {
    let mut last_failure_was_panic = false;
    // One checkpoint slot for the whole job: a dying attempt's last
    // snapshot survives here (the slot is outside the attempt thread and
    // outside `catch_unwind`), and the next attempt picks it up.
    let slot: Arc<CheckpointSlot> = Arc::new(Mutex::new(None));
    for attempt in 0..=cfg.max_retries {
        if attempt > 0 {
            counters.retries.fetch_add(1, Ordering::Relaxed);
            // The checkpoint hash feeds the jitter (retry *accounting*),
            // never the cache key: a resumed job de-correlates its sleep
            // from fresh retries of the same id without fragmenting the
            // response cache.
            let ckpt = checkpoint_hash(&slot);
            if ckpt != 0 {
                counters.resumed.fetch_add(1, Ordering::Relaxed);
            }
            std::thread::sleep(Duration::from_millis(backoff_ms(cfg, job_id, attempt, ckpt)));
        }
        let deadline = Duration::from_millis(cfg.attempt_deadline_ms);
        let token = CancelToken::with_deadline(deadline);
        let (tx, rx) = mpsc::channel();
        let attempt_token = token.clone();
        let attempt_req = req.clone();
        let attempt_chaos = *chaos;
        let sm_threads = cfg.sm_threads;
        let every = cfg.checkpoint_every_cycles;
        let attempt_slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if attempt_chaos.slow_attempt(job_id, attempt) {
                    std::thread::sleep(Duration::from_millis(attempt_chaos.slow_ms));
                }
                if attempt_chaos.panic_attempt(job_id, attempt) {
                    panic!("{CHAOS_PANIC_PREFIX}injected worker panic (job {job_id})");
                }
                run_request_resumable(
                    &attempt_req,
                    Some(attempt_token),
                    sm_threads,
                    every,
                    Some(&attempt_slot),
                )
            }));
            // A dropped receiver (reaped attempt) makes this send fail;
            // the late result is deliberately discarded.
            let _ = tx.send(outcome);
        });
        let wait = deadline + Duration::from_millis(cfg.reap_grace_ms);
        match rx.recv_timeout(wait) {
            Ok(Ok(RunOutcome::Ok(body))) => return JobResult::Ok(body),
            Ok(Ok(RunOutcome::SimError(body))) => return JobResult::SimError(body),
            Ok(Ok(RunOutcome::Cancelled)) => {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
                last_failure_was_panic = false;
            }
            Ok(Err(_panic)) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                last_failure_was_panic = true;
            }
            Err(_) => {
                // Unresponsive past deadline + grace: cancel and abandon.
                token.cancel();
                counters.reaped.fetch_add(1, Ordering::Relaxed);
                last_failure_was_panic = false;
            }
        }
    }
    if last_failure_was_panic {
        JobResult::Crashed
    } else {
        JobResult::TimedOut
    }
}

/// Exponential backoff with deterministic jitter: `min(cap, base·2^(a-1))`
/// plus up to `base` of jitter derived from `(job, attempt, checkpoint)`.
/// `ckpt_hash` is the hash of the checkpoint the retry resumes from (0 =
/// cold retry) — part of retry accounting only, never request identity.
fn backoff_ms(cfg: &PoolConfig, job_id: u64, attempt: u32, ckpt_hash: u64) -> u64 {
    let exp = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << (attempt - 1).min(16))
        .min(cfg.backoff_cap_ms);
    let jitter = splitmix64(job_id ^ ((attempt as u64) << 32) ^ ckpt_hash)
        % cfg.backoff_base_ms.max(1);
    exp + jitter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request() -> SimRequest {
        SimRequest::from_json(
            r#"{"kernel":".kernel t\n.regs 4\n    mov r1, 1\n    exit\n","tpc":32}"#,
        )
        .unwrap()
    }

    fn pool_cfg() -> PoolConfig {
        PoolConfig {
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            attempt_deadline_ms: 5_000,
            reap_grace_ms: 200,
            sm_threads: 0,
            checkpoint_every_cycles: 0,
        }
    }

    /// Find a job id whose chaos schedule fails attempt 0 but not 1.
    fn job_failing_only_first(chaos: &ServiceChaos) -> u64 {
        (0..10_000)
            .find(|&j| chaos.panic_attempt(j, 0) && !chaos.panic_attempt(j, 1))
            .expect("some job fails only its first attempt")
    }

    #[test]
    fn clean_job_succeeds_first_try() {
        let counters = PoolCounters::default();
        let r = execute_supervised(
            &tiny_request(),
            1,
            &pool_cfg(),
            &ServiceChaos::off(),
            &counters,
        );
        assert!(matches!(r, JobResult::Ok(_)));
        assert_eq!(counters.retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn panicked_attempt_is_retried_to_success() {
        install_quiet_panic_hook();
        let chaos = ServiceChaos {
            seed: 3,
            worker_panic_ppm: 300_000,
            worker_slow_ppm: 0,
            slow_ms: 0,
            cache_corrupt_ppm: 0,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        };
        let job = job_failing_only_first(&chaos);
        let counters = PoolCounters::default();
        let r = execute_supervised(&tiny_request(), job, &pool_cfg(), &chaos, &counters);
        assert!(matches!(r, JobResult::Ok(_)), "got {r:?}");
        assert_eq!(counters.panics.load(Ordering::Relaxed), 1);
        assert_eq!(counters.retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn always_panicking_job_crashes_structurally() {
        install_quiet_panic_hook();
        let chaos = ServiceChaos {
            seed: 3,
            worker_panic_ppm: 1_000_000,
            worker_slow_ppm: 0,
            slow_ms: 0,
            cache_corrupt_ppm: 0,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        };
        let counters = PoolCounters::default();
        let r = execute_supervised(&tiny_request(), 9, &pool_cfg(), &chaos, &counters);
        assert!(matches!(r, JobResult::Crashed), "got {r:?}");
        assert_eq!(counters.panics.load(Ordering::Relaxed), 3, "all attempts panicked");
    }

    #[test]
    fn slow_attempt_times_out_and_recovers() {
        // Slowness (100ms) past the attempt deadline (20ms) but inside the
        // reap grace: the attempt wakes, sees its fired token, and exits
        // cooperatively; the retry is not slowed and succeeds.
        let chaos = ServiceChaos {
            seed: 11,
            worker_panic_ppm: 0,
            worker_slow_ppm: 300_000,
            slow_ms: 100,
            cache_corrupt_ppm: 0,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        };
        let job = (0..10_000)
            .find(|&j| chaos.slow_attempt(j, 0) && !chaos.slow_attempt(j, 1))
            .unwrap();
        let cfg = PoolConfig {
            attempt_deadline_ms: 20,
            reap_grace_ms: 5_000,
            ..pool_cfg()
        };
        let counters = PoolCounters::default();
        let r = execute_supervised(&tiny_request(), job, &cfg, &chaos, &counters);
        assert!(matches!(r, JobResult::Ok(_)), "got {r:?}");
        assert_eq!(counters.timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(counters.reaped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn wedged_attempt_is_reaped() {
        // Slowness (300ms) past deadline (10ms) + grace (10ms): the
        // supervisor abandons the thread and retries.
        let chaos = ServiceChaos {
            seed: 11,
            worker_panic_ppm: 0,
            worker_slow_ppm: 300_000,
            slow_ms: 300,
            cache_corrupt_ppm: 0,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        };
        let job = (0..10_000)
            .find(|&j| chaos.slow_attempt(j, 0) && !chaos.slow_attempt(j, 1))
            .unwrap();
        let cfg = PoolConfig {
            attempt_deadline_ms: 10,
            reap_grace_ms: 10,
            ..pool_cfg()
        };
        let counters = PoolCounters::default();
        let r = execute_supervised(&tiny_request(), job, &cfg, &chaos, &counters);
        assert!(matches!(r, JobResult::Ok(_)), "got {r:?}");
        assert_eq!(counters.reaped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn deterministic_sim_error_is_not_retried() {
        // A kernel that always deadlocks: one structured error, no retries.
        let req = SimRequest::from_json(
            r#"{"kernel":".kernel stuck\n.regs 8\n.params 1\n    ld.param r1, [0]\ntop:\n    ld.global.volatile r2, [r1]\n    setp.eq.s32 p1, r2, 0\n@p1 bra top\n    exit\n","tpc":32,"params":[{"buf":1}],"timeout_cycles":50000}"#,
        )
        .unwrap();
        let counters = PoolCounters::default();
        let r = execute_supervised(&req, 5, &pool_cfg(), &ServiceChaos::off(), &counters);
        match r {
            JobResult::SimError(body) => {
                assert!(body.contains("\"kind\""), "structured: {body}");
            }
            other => panic!("expected SimError, got {other:?}"),
        }
        assert_eq!(counters.retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = PoolConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 80,
            ..pool_cfg()
        };
        let b1 = backoff_ms(&cfg, 1, 1, 0);
        let b4 = backoff_ms(&cfg, 1, 4, 0);
        assert!((10..20).contains(&b1), "base + jitter, got {b1}");
        assert!((80..90).contains(&b4), "capped + jitter, got {b4}");
        assert_eq!(backoff_ms(&cfg, 1, 2, 0), backoff_ms(&cfg, 1, 2, 0), "deterministic");
    }
}
