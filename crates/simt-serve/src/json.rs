//! Hand-rolled JSON: a small value type, a strict parser, a renderer, and
//! the serializers for the simulator's report/error structures.
//!
//! The workspace builds offline, so there is no serde; this mirrors the
//! parser in `crates/bench/src/report.rs` but keeps integers exact:
//! numbers without a fraction or exponent parse into [`Json::UInt`] /
//! [`Json::Int`] and render back digit-for-digit. That matters here —
//! response bodies are content-addressed and compared byte-for-byte by the
//! cache-soundness tests and the load generator, so rendering must be a
//! pure function of the simulation result.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer (u64-exact).
    UInt(u64),
    /// Negative integer (i64-exact).
    Int(i64),
    /// Any number written with a fraction or exponent.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Deepest container nesting the parser accepts. The parser is
/// recursive-descent, so without this bound a body of ~1 MiB of `[`
/// characters would overflow the handler thread's stack and abort the
/// process — a malformed request must never cost more than a 400.
pub const MAX_PARSE_DEPTH: usize = 64;

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no NaN/Inf; null is the least-wrong encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&json_string(s)),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up a key in an object (error when absent).
    pub fn get<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.opt(key)?
            .ok_or_else(|| format!("missing key `{key}`"))
    }

    /// Look up a key in an object (`None` when absent or null).
    pub fn opt<'a>(&'a self, key: &str) -> Result<Option<&'a Json>, String> {
        match self {
            Json::Obj(o) => Ok(o
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .filter(|v| !matches!(v, Json::Null))),
            _ => Err(format!("`{key}`: not an object")),
        }
    }

    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }

    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::UInt(n) => Ok(*n),
            Json::Int(n) if *n >= 0 => Ok(*n as u64),
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as u64),
            _ => Err(format!("{what}: expected non-negative integer")),
        }
    }

    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("{what}: expected bool")),
        }
    }

    pub fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }
}

/// Escape a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_PARSE_DEPTH {
        return Err(format!("nesting deeper than {MAX_PARSE_DEPTH}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos, depth + 1)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(n).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            c => {
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let mut end = *pos;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if !s.contains(['.', 'e', 'E']) {
        if let Ok(n) = s.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
        if let Ok(n) = s.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

// ---------------------------------------------------------------------------
// Serializers for the simulator's structures (shared by the service, the
// load generator, and `bows-run --timeout-wall`).
// ---------------------------------------------------------------------------

use simt_core::{HangReport, KernelReport, SimError, SimStats, WarpSnapshot};
use simt_mem::MemStats;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// [`SimStats`] as a JSON object (raw counters plus the derived ratios the
/// paper's figures use).
pub fn sim_stats_json(s: &SimStats) -> Json {
    obj(vec![
        ("cycles", Json::UInt(s.cycles)),
        ("issued_inst", Json::UInt(s.issued_inst)),
        ("thread_inst", Json::UInt(s.thread_inst)),
        ("sync_thread_inst", Json::UInt(s.sync_thread_inst)),
        ("sib_inst", Json::UInt(s.sib_inst)),
        ("barriers", Json::UInt(s.barriers)),
        ("atomic_inst", Json::UInt(s.atomic_inst)),
        ("load_inst", Json::UInt(s.load_inst)),
        ("store_inst", Json::UInt(s.store_inst)),
        ("ctas_completed", Json::UInt(s.ctas_completed)),
        ("simd_efficiency", Json::Num(s.simd_efficiency())),
        ("sync_inst_fraction", Json::Num(s.sync_inst_fraction())),
        ("backed_off_fraction", Json::Num(s.backed_off_fraction())),
    ])
}

/// [`MemStats`] as a JSON object.
pub fn mem_stats_json(m: &MemStats) -> Json {
    obj(vec![
        ("l1_accesses", Json::UInt(m.l1_accesses)),
        ("l1_hits", Json::UInt(m.l1_hits)),
        ("l2_accesses", Json::UInt(m.l2_accesses)),
        ("l2_hits", Json::UInt(m.l2_hits)),
        ("dram_reads", Json::UInt(m.dram_reads)),
        ("dram_writes", Json::UInt(m.dram_writes)),
        ("atomic_transactions", Json::UInt(m.atomic_transactions)),
        ("atomic_lane_ops", Json::UInt(m.atomic_lane_ops)),
        ("total_transactions", Json::UInt(m.total_transactions)),
        ("sync_transactions", Json::UInt(m.sync_transactions)),
        ("lock_success", Json::UInt(m.lock_success)),
        ("lock_intra_fail", Json::UInt(m.lock_intra_fail)),
        ("lock_inter_fail", Json::UInt(m.lock_inter_fail)),
    ])
}

fn warp_snapshot_json(w: &WarpSnapshot) -> Json {
    obj(vec![
        ("sm", Json::UInt(w.sm as u64)),
        ("warp", Json::UInt(w.warp as u64)),
        ("pc", Json::UInt(w.pc as u64)),
        ("stack_depth", Json::UInt(w.stack_depth as u64)),
        ("active_lanes", Json::UInt(w.active_lanes as u64)),
        ("outstanding_mem", Json::UInt(w.outstanding_mem as u64)),
        ("at_barrier", Json::Bool(w.at_barrier)),
        ("waiting_membar", Json::Bool(w.waiting_membar)),
        ("backed_off", Json::Bool(w.backed_off)),
        ("spin_iters", Json::UInt(w.spin_iters)),
        ("idle_cycles", Json::UInt(w.idle_cycles)),
        ("pc_stuck_cycles", Json::UInt(w.pc_stuck_cycles)),
    ])
}

/// [`HangReport`] as a JSON object (class, cycle, and every live warp).
pub fn hang_report_json(r: &HangReport) -> Json {
    obj(vec![
        ("class", Json::Str(r.class.to_string())),
        ("cycle", Json::UInt(r.cycle)),
        ("scheduler", Json::Str(r.scheduler.clone())),
        ("mem_in_flight", Json::UInt(r.mem_in_flight as u64)),
        ("lock_success", Json::UInt(r.lock_success)),
        ("lock_fails", Json::UInt(r.lock_fails)),
        (
            "warps",
            Json::Arr(r.warps.iter().map(warp_snapshot_json).collect()),
        ),
    ])
}

/// [`SimError`] as a structured JSON object: a machine-readable `kind`, the
/// human-readable message, and the hang diagnosis when one exists.
pub fn sim_error_json(e: &SimError) -> Json {
    let kind = match e {
        SimError::Deadlock { .. } => "deadlock",
        SimError::CycleLimit { .. } => "cycle_limit",
        SimError::LaunchTooLarge { .. } => "launch_too_large",
        SimError::InternalInvariant { .. } => "internal_invariant",
        SimError::DeviceFault { .. } => "device_fault",
        SimError::Cancelled { .. } => "cancelled",
        SimError::InvalidConfig { .. } => "invalid_config",
        _ => "sim_error",
    };
    let mut fields = vec![
        ("kind", Json::Str(kind.to_string())),
        ("message", Json::Str(e.to_string())),
    ];
    if let Some(report) = e.hang_report() {
        fields.push(("hang", hang_report_json(report)));
    }
    obj(fields)
}

/// A lint [`Witness`](simt_analyze::Witness) as a tagged JSON object: the
/// machine-readable evidence behind a diagnostic (the racing instruction
/// pair and its locksets, the leaked lock and a path to the exit, the
/// lock cycle, or the spin/acquire structure of a SIMT deadlock).
pub fn witness_json(w: &simt_analyze::Witness) -> Json {
    use simt_analyze::Witness;
    match w {
        Witness::Race {
            a_pc,
            b_pc,
            location,
            lockset_a,
            lockset_b,
            phase_a,
            phase_b,
        } => obj(vec![
            ("type", Json::Str("race".into())),
            ("a_pc", Json::UInt(*a_pc as u64)),
            ("b_pc", Json::UInt(*b_pc as u64)),
            ("location", Json::Str(location.clone())),
            (
                "lockset_a",
                Json::Arr(lockset_a.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
            (
                "lockset_b",
                Json::Arr(lockset_b.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
            ("phase_a", Json::UInt(*phase_a as u64)),
            ("phase_b", Json::UInt(*phase_b as u64)),
        ]),
        Witness::HeldAtExit {
            lock,
            acquire_pc,
            exit_pc,
            path,
        } => obj(vec![
            ("type", Json::Str("held-at-exit".into())),
            ("lock", Json::Str(lock.clone())),
            ("acquire_pc", Json::UInt(*acquire_pc as u64)),
            ("exit_pc", Json::UInt(*exit_pc as u64)),
            (
                "path",
                Json::Arr(path.iter().map(|&pc| Json::UInt(pc as u64)).collect()),
            ),
        ]),
        Witness::LockCycle { cycle } => obj(vec![
            ("type", Json::Str("lock-cycle".into())),
            (
                "cycle",
                Json::Arr(
                    cycle
                        .iter()
                        .map(|(lock, pc)| {
                            obj(vec![
                                ("lock", Json::Str(lock.clone())),
                                ("acquire_pc", Json::UInt(*pc as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Witness::SpinHold {
            loop_branch_pc,
            acquire_pc,
            release_pc,
        } => obj(vec![
            ("type", Json::Str("spin-hold".into())),
            ("loop_branch_pc", Json::UInt(*loop_branch_pc as u64)),
            ("acquire_pc", Json::UInt(*acquire_pc as u64)),
            (
                "release_pc",
                match release_pc {
                    Some(pc) => Json::UInt(*pc as u64),
                    None => Json::Null,
                },
            ),
        ]),
    }
}

/// One lint [`Diagnostic`](simt_analyze::Diagnostic) as a JSON object.
/// `line` is the kernel source line of the flagged instruction (0 when
/// unknown). This is the one wire format for diagnostics: `bows-run
/// --lint --format json`, the service's pre-admission 422 body, and CI all
/// consume it.
pub fn diagnostic_json(d: &simt_analyze::Diagnostic, line: u32) -> Json {
    let mut fields = vec![
        ("severity", Json::Str(d.severity.to_string())),
        ("lint", Json::Str(d.kind.name().to_string())),
        ("pc", Json::UInt(d.pc as u64)),
        ("block", Json::UInt(d.block as u64)),
        ("line", Json::UInt(u64::from(line))),
        ("message", Json::Str(d.message.clone())),
    ];
    if let Some(w) = &d.witness {
        fields.push(("witness", witness_json(w)));
    }
    obj(fields)
}

/// All diagnostics of an analysis, with source lines resolved from the
/// instruction stream. Order is the analyzer's deterministic
/// (severity, pc, lint) order, so the rendered array is byte-stable.
pub fn diagnostics_json(insts: &[simt_isa::Inst], diags: &[simt_analyze::Diagnostic]) -> Json {
    Json::Arr(
        diags
            .iter()
            .map(|d| diagnostic_json(d, insts.get(d.pc).map_or(0, |i| i.line)))
            .collect(),
    )
}

/// A successful [`KernelReport`] as a JSON object. `dumps` carries the
/// requested post-run buffer dumps keyed by parameter slot.
pub fn kernel_report_json(r: &KernelReport, dumps: &[(usize, Vec<u32>)]) -> Json {
    obj(vec![
        ("cycles", Json::UInt(r.cycles)),
        ("scheduler", Json::Str(r.scheduler.clone())),
        ("detector", Json::Str(r.detector.clone())),
        ("time_ms", Json::Num(r.time_ms)),
        ("sim", sim_stats_json(&r.sim)),
        ("mem", mem_stats_json(&r.mem)),
        (
            "confirmed_sibs",
            Json::Arr(
                r.confirmed_sibs
                    .iter()
                    .map(|&(pc, cy)| Json::Arr(vec![Json::UInt(pc as u64), Json::UInt(cy)]))
                    .collect(),
            ),
        ),
        (
            "dumps",
            Json::Obj(
                dumps
                    .iter()
                    .map(|(slot, words)| {
                        (
                            slot.to_string(),
                            Json::Arr(words.iter().map(|&w| Json::UInt(w as u64)).collect()),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_exactly() {
        let big = u64::MAX;
        let j = Json::parse(&format!("{{\"a\":{big},\"b\":-7,\"c\":1.5}}")).unwrap();
        assert_eq!(j.get("a").unwrap(), &Json::UInt(big));
        assert_eq!(j.get("b").unwrap(), &Json::Int(-7));
        assert_eq!(j.get("c").unwrap(), &Json::Num(1.5));
        assert_eq!(j.render(), format!("{{\"a\":{big},\"b\":-7,\"c\":1.5}}"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd".into())),
            ("arr".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("n".into(), Json::UInt(42)),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Well past any legitimate request, far under the thread stack.
        let bombs = [
            "[".repeat(500_000),
            "{\"a\":".repeat(500_000),
            format!("{}1{}", "[".repeat(MAX_PARSE_DEPTH + 1), "]".repeat(MAX_PARSE_DEPTH + 1)),
        ];
        for bomb in &bombs {
            let err = Json::parse(bomb).unwrap_err();
            assert!(err.contains("nesting"), "got: {err}");
        }
        // Nesting at the bound still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn opt_skips_null() {
        let j = Json::parse("{\"a\":null,\"b\":1}").unwrap();
        assert_eq!(j.opt("a").unwrap(), None);
        assert_eq!(j.opt("b").unwrap(), Some(&Json::UInt(1)));
        assert_eq!(j.opt("c").unwrap(), None);
    }

    #[test]
    fn sim_error_json_has_kind_and_hang() {
        let e = SimError::LaunchTooLarge {
            reason: "too big".into(),
        };
        let j = sim_error_json(&e);
        assert_eq!(j.get("kind").unwrap().as_str("kind").unwrap(), "launch_too_large");
        assert!(j.opt("hang").unwrap().is_none());
    }
}
