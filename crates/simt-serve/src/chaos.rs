//! Service-level chaos: seeded fault injection for the serving plane.
//!
//! The simulator already has a *memory* chaos plane (`simt_mem::chaos`)
//! that perturbs the simulated hardware. This one attacks the service
//! around it — the part a paper never stresses but an artifact server
//! lives or dies by:
//!
//! * **worker panics** — an attempt aborts as if the simulator crashed,
//! * **worker slowness** — an attempt stalls past its deadline,
//! * **cache corruption** — a stored response body is bit-flipped.
//!
//! Decisions are a pure function of `(seed, job id, attempt)` via
//! splitmix64, so a chaos run is reproducible regardless of thread
//! interleaving, and a retry of the same job sees fresh (but still
//! deterministic) coin flips — which is what lets the retry path actually
//! recover.

/// splitmix64: the same mixer the memory chaos plane and the experiment
/// harness use for seed derivation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Chaos plan for the serving plane. All rates are parts-per-million per
/// *attempt* (or per insert, for cache corruption and the persistence
/// faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceChaos {
    /// Seed of the decision stream (same seed ⇒ same faults).
    pub seed: u64,
    /// Probability an attempt panics mid-simulation.
    pub worker_panic_ppm: u32,
    /// Probability an attempt stalls for `slow_ms` before simulating.
    pub worker_slow_ppm: u32,
    /// Stall duration for a slow attempt, milliseconds.
    pub slow_ms: u64,
    /// Probability a freshly inserted cache entry is corrupted.
    pub cache_corrupt_ppm: u32,
    /// Probability a durable-store append is torn mid-record (only the
    /// first half of the record reaches the log, as if the process died
    /// between `write` and `fsync`).
    pub store_torn_ppm: u32,
    /// Probability a durable-store append loses its final byte (a short
    /// write the file system acknowledged anyway).
    pub store_short_ppm: u32,
    /// Probability one bit of a durable-store record flips on its way to
    /// the log (silent media corruption).
    pub store_flip_ppm: u32,
}

/// One persistence-path fault, chosen deterministically per record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Write the record intact.
    None,
    /// Write only the first half of the record.
    Torn,
    /// Drop the record's last byte.
    Short,
    /// Flip one payload bit (the record checksum no longer matches).
    BitFlip,
}

impl ServiceChaos {
    /// No faults.
    pub fn off() -> ServiceChaos {
        ServiceChaos {
            seed: 0,
            worker_panic_ppm: 0,
            worker_slow_ppm: 0,
            slow_ms: 0,
            cache_corrupt_ppm: 0,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        }
    }

    /// True when any fault rate is nonzero.
    pub fn enabled(&self) -> bool {
        self.worker_panic_ppm > 0
            || self.worker_slow_ppm > 0
            || self.cache_corrupt_ppm > 0
            || self.store_torn_ppm > 0
            || self.store_short_ppm > 0
            || self.store_flip_ppm > 0
    }

    fn roll(&self, salt: u64, job: u64, attempt: u32, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        let x = splitmix64(
            self.seed
                ^ salt
                ^ job.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ ((attempt as u64) << 48),
        );
        (x % 1_000_000) < ppm as u64
    }

    /// Should this attempt panic?
    pub fn panic_attempt(&self, job: u64, attempt: u32) -> bool {
        self.roll(0x0070_616e_6963, job, attempt, self.worker_panic_ppm)
    }

    /// Should this attempt stall past its deadline?
    pub fn slow_attempt(&self, job: u64, attempt: u32) -> bool {
        self.roll(0x736c_6f77, job, attempt, self.worker_slow_ppm)
    }

    /// Should this cache insert be corrupted?
    pub fn corrupt_insert(&self, job: u64) -> bool {
        self.roll(0x636f_7272, job, 0, self.cache_corrupt_ppm)
    }

    /// Which persistence fault (if any) hits this job's durable-store
    /// append. At most one fires; torn wins over short wins over bit-flip
    /// so overlapping rates stay deterministic.
    pub fn store_fault(&self, job: u64) -> StoreFault {
        if self.roll(0x746f_726e, job, 0, self.store_torn_ppm) {
            StoreFault::Torn
        } else if self.roll(0x7368_7274, job, 0, self.store_short_ppm) {
            StoreFault::Short
        } else if self.roll(0x666c_6970, job, 0, self.store_flip_ppm) {
            StoreFault::BitFlip
        } else {
            StoreFault::None
        }
    }
}

impl Default for ServiceChaos {
    fn default() -> ServiceChaos {
        ServiceChaos::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_fires() {
        let c = ServiceChaos::off();
        assert!(!c.enabled());
        for job in 0..100 {
            assert!(!c.panic_attempt(job, 0));
            assert!(!c.slow_attempt(job, 0));
            assert!(!c.corrupt_insert(job));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_dependent() {
        let c = ServiceChaos {
            seed: 42,
            worker_panic_ppm: 500_000,
            worker_slow_ppm: 500_000,
            slow_ms: 1,
            cache_corrupt_ppm: 500_000,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        };
        let d = c; // Copy
        let mut differs_by_attempt = false;
        for job in 0..64 {
            for attempt in 0..4 {
                assert_eq!(c.panic_attempt(job, attempt), d.panic_attempt(job, attempt));
            }
            if c.panic_attempt(job, 0) != c.panic_attempt(job, 1) {
                differs_by_attempt = true;
            }
        }
        assert!(differs_by_attempt, "retries must see fresh coin flips");
    }

    #[test]
    fn rate_is_roughly_honored() {
        let c = ServiceChaos {
            seed: 7,
            worker_panic_ppm: 250_000, // 25%
            worker_slow_ppm: 0,
            slow_ms: 0,
            cache_corrupt_ppm: 0,
            store_torn_ppm: 0,
            store_short_ppm: 0,
            store_flip_ppm: 0,
        };
        let fired = (0..10_000).filter(|&j| c.panic_attempt(j, 0)).count();
        assert!((1_500..3_500).contains(&fired), "got {fired} / 10000");
    }

    #[test]
    fn store_faults_are_deterministic_and_exclusive() {
        let c = ServiceChaos {
            store_torn_ppm: 400_000,
            store_short_ppm: 400_000,
            store_flip_ppm: 400_000,
            ..ServiceChaos::off()
        };
        let mut seen = [false; 4];
        for job in 0..1_000 {
            let f = c.store_fault(job);
            assert_eq!(f, c.store_fault(job), "same job, same fault");
            seen[match f {
                StoreFault::None => 0,
                StoreFault::Torn => 1,
                StoreFault::Short => 2,
                StoreFault::BitFlip => 3,
            }] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faults occur at these rates");
        assert_eq!(ServiceChaos::off().store_fault(7), StoreFault::None);
    }
}
